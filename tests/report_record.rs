//! Pins for the record codec (`harness::report`) against the live campaign
//! path, and the `CampaignReport::merged` / `ReportRecord::merged` edge
//! cases: empty input, a single shard, overlapping indices, and
//! merged-equals-unsharded across 1/2/8-way shard splits of the checked-in
//! `specs/e16-small.json`.

use mobile_congest::harness::campaign::{cell_json, summary_json, CampaignReport};
use mobile_congest::harness::report::{CellRecord, ReportRecord};
use mobile_congest::harness::{Campaign, CampaignSpec};

fn checked_in_campaign() -> Campaign {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/e16-small.json");
    let text = std::fs::read_to_string(path).expect("specs/e16-small.json is checked in");
    let spec = CampaignSpec::from_json(&text).unwrap();
    Campaign::from_spec(&spec).unwrap().threads(2)
}

#[test]
fn merging_no_reports_yields_an_empty_report() {
    let merged = CampaignReport::merged(Vec::new());
    assert!(merged.cells.is_empty());
    assert!(merged.summaries().is_empty());
    let merged = ReportRecord::merged(Vec::new());
    assert!(merged.cells.is_empty());
    assert_eq!(merged.to_jsonl(), "");
}

#[test]
fn merging_a_single_shard_is_the_identity() {
    let campaign = checked_in_campaign();
    let report = campaign.run_cells(&[0, 1, 2, 3]);
    let jsonl = report.to_jsonl();
    let fingerprint = report.fingerprint();
    let merged = CampaignReport::merged(vec![report]);
    assert_eq!(merged.to_jsonl(), jsonl);
    assert_eq!(merged.fingerprint(), fingerprint);
}

#[test]
fn merging_overlapping_shards_dedups_by_cell_index() {
    let campaign = checked_in_campaign();
    // Two "shards" that both ran cell 2: the merge must keep exactly one
    // copy and come out identical to running the union directly.
    let a = campaign.run_cells(&[0, 1, 2]);
    let b = campaign.run_cells(&[2, 3]);
    let merged = CampaignReport::merged(vec![a, b]);
    assert_eq!(
        merged.cells.iter().map(|c| c.index).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    let union = campaign.run_cells(&[0, 1, 2, 3]);
    assert_eq!(merged.to_jsonl(), union.to_jsonl());
    assert_eq!(merged.fingerprint(), union.fingerprint());
}

#[test]
fn merged_shard_splits_reproduce_the_unsharded_run() {
    let campaign = checked_in_campaign();
    let full = campaign.run();
    for of in [1usize, 2, 8] {
        let shards: Vec<CampaignReport> = (0..of)
            .map(|i| {
                let indices: Vec<usize> = campaign
                    .cell_indices()
                    .into_iter()
                    .filter(|index| index % of == i)
                    .collect();
                campaign.run_cells(&indices)
            })
            .collect();
        let merged = CampaignReport::merged(shards);
        assert_eq!(merged.fingerprint(), full.fingerprint(), "of={of}");
        assert_eq!(merged.to_jsonl(), full.to_jsonl(), "of={of}");
    }
}

#[test]
fn record_cell_lines_match_the_live_trajectory_encoder() {
    // `CellRecord::cell_line` (what the server's trajectory endpoint emits)
    // must stay byte-identical to `cell_json` (what the `campaign` CLI
    // writes), for every outcome in the grid — ok, skipped and failed alike.
    let campaign = checked_in_campaign();
    let report = campaign.run();
    for cell in &report.cells {
        assert_eq!(
            CellRecord::of(cell).cell_line(),
            cell_json(cell),
            "cell {} diverged",
            cell.index
        );
    }
}

#[test]
fn record_summaries_match_the_live_report_summaries() {
    // The record path (stored cells, no profile data) and the live path
    // must produce the same summary bytes on an untraced run.
    let campaign = checked_in_campaign();
    let report = campaign.run();
    let record = ReportRecord::of(&report);
    let mut live = String::new();
    for summary in report.summaries() {
        live.push_str(&summary_json(&summary));
        live.push('\n');
    }
    assert_eq!(record.summary_jsonl(), live);
}
