//! Contract tests for the unified `Scenario` execution API: build-time
//! validation of role/compiler pairings, byte-for-byte parity of the
//! `Uncompiled`/`FaultFree` compilers with the low-level entry points, and
//! the graph × adversary × compiler matrix sweep.

use mobile_congest::graphs::generators;
use mobile_congest::payloads::{ConvergecastSum, FloodBroadcast, LeaderElection};
use mobile_congest::scenario::{
    matrix, CliqueAdapter, Compiler, CompilerKind, CompilerNotes, CongestionSensitiveAdapter,
    CycleCoverAdapter, ExpanderAdapter, FaultFree, RewindAdapter, Scenario, ScenarioError,
    StaticToMobileAdapter, TreePackingAdapter, Uncompiled,
};
use mobile_congest::sim::adversary::{
    AdversaryRole, CorruptionBudget, CorruptionMode, GreedyHeaviest, RandomMobile, SweepMobile,
};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::{run_fault_free, run_on_network};

#[test]
fn builder_rejects_eavesdropper_with_resilient_compilers() {
    let g = generators::complete(10);
    for (name, compiler) in [
        (
            "clique",
            Box::new(CliqueAdapter::new(1, 3)) as Box<dyn Compiler>,
        ),
        ("tree-packing", Box::new(TreePackingAdapter::new(1, 3))),
        ("cycle-cover", Box::new(CycleCoverAdapter::new(1))),
        ("rewind", Box::new(RewindAdapter::new(1, 3))),
    ] {
        let gg = g.clone();
        let err = Scenario::on(g.clone())
            .payload(move || LeaderElection::new(gg.clone()))
            .adversary(
                AdversaryRole::Eavesdropper,
                RandomMobile::new(1, 5),
                CorruptionBudget::Mobile { f: 1 },
            )
            .compiled_with_boxed(compiler)
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::RoleMismatch {
                    role: AdversaryRole::Eavesdropper,
                    ..
                }
            ),
            "{name}: expected RoleMismatch, got {err:?}"
        );
    }
}

#[test]
fn builder_rejects_byzantine_with_secure_compilers() {
    let g = generators::complete(10);
    for compiler in [
        Box::new(StaticToMobileAdapter::new(4, 2, 1)) as Box<dyn Compiler>,
        Box::new(CongestionSensitiveAdapter::new(1, 2, 1)),
    ] {
        let kind = compiler.kind();
        assert_eq!(kind, CompilerKind::Secure);
        let gg = g.clone();
        let err = Scenario::on(g.clone())
            .payload(move || LeaderElection::new(gg.clone()))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 5),
                CorruptionBudget::Mobile { f: 1 },
            )
            .compiled_with_boxed(compiler)
            .run()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::RoleMismatch { .. }));
    }
}

#[test]
fn builder_rejects_structurally_impossible_graphs() {
    // Clique compiler off the clique.
    let gg = generators::cycle(8);
    let err = Scenario::on(gg.clone())
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 5),
            CorruptionBudget::Mobile { f: 1 },
        )
        .compiled_with(CliqueAdapter::new(1, 3))
        .run()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::UnsupportedGraph { .. }));

    // Cycle-cover compiler on a graph below (2f+1)-edge-connectivity.
    let gg = generators::cycle(8);
    let err = Scenario::on(gg.clone())
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 5),
            CorruptionBudget::Mobile { f: 1 },
        )
        .compiled_with(CycleCoverAdapter::new(1))
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::InsufficientConnectivity {
            compiler: CycleCoverAdapter::new(1).name(),
            needed: 3,
            found: 2,
        }
    );
}

#[test]
fn missing_payload_is_rejected_before_any_round_runs() {
    let err = Scenario::on(generators::complete(6))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 1),
            CorruptionBudget::Mobile { f: 1 },
        )
        .run()
        .unwrap_err();
    assert_eq!(err, ScenarioError::MissingPayload);
}

/// Exhaustive pairing contract: for *every* compiler × adversary-role
/// combination, `ScenarioBuilder::build` accepts iff
/// `CompilerKind::supports(role)` says so, on a graph (K12) that passes every
/// compiler's structural validation — so the only reject reason in play is
/// the role, and it is always the typed `RoleMismatch`.
#[test]
fn every_compiler_kind_role_pairing_matches_builder_behavior() {
    let g = generators::complete(12);
    type MakeCompiler = Box<dyn Fn() -> Box<dyn Compiler>>;
    let all_compilers: Vec<MakeCompiler> = vec![
        Box::new(|| Box::new(Uncompiled)),
        Box::new(|| Box::new(FaultFree)),
        Box::new(|| Box::new(CliqueAdapter::new(1, 3))),
        Box::new(|| Box::new(TreePackingAdapter::new(1, 3))),
        Box::new(|| Box::new(CycleCoverAdapter::new(1))),
        Box::new(|| Box::new(ExpanderAdapter::new(1, 2, 6, 3))),
        Box::new(|| Box::new(RewindAdapter::new(1, 3))),
        Box::new(|| Box::new(StaticToMobileAdapter::new(4, 2, 3))),
        Box::new(|| Box::new(CongestionSensitiveAdapter::new(1, 2, 3))),
    ];
    // Every CompilerKind is represented, so the table below really is the
    // full supports() matrix.
    for kind in [
        CompilerKind::Baseline,
        CompilerKind::Reference,
        CompilerKind::Resilient,
        CompilerKind::RateResilient,
        CompilerKind::Secure,
    ] {
        assert!(
            all_compilers.iter().any(|make| make().kind() == kind),
            "no compiler of kind {kind:?} in the exhaustive pairing test"
        );
    }
    for make in &all_compilers {
        for role in [AdversaryRole::Byzantine, AdversaryRole::Eavesdropper] {
            let compiler = make();
            let name = compiler.name();
            let kind = compiler.kind();
            let gg = g.clone();
            let built = Scenario::on(g.clone())
                .payload(move || LeaderElection::new(gg.clone()))
                .adversary(
                    role,
                    RandomMobile::new(1, 5),
                    CorruptionBudget::Mobile { f: 1 },
                )
                .compiled_with_boxed(compiler)
                .build();
            if kind.supports(role) {
                assert!(
                    built.is_ok(),
                    "{name} ({kind:?}) should accept a {role:?} adversary"
                );
            } else {
                assert!(
                    matches!(
                        built.as_ref().err(),
                        Some(ScenarioError::RoleMismatch { .. })
                    ),
                    "{name} ({kind:?}) should reject a {role:?} adversary with RoleMismatch"
                );
            }
        }
    }
}

/// Typed `CompilerNotes` reach the report from a direct scenario run: the
/// resilient compiler reports its correction verdict, the secrecy compiler
/// its key-exchange phase split.
#[test]
fn compiler_notes_reach_the_run_report() {
    let g = generators::complete(12);
    let gg = g.clone();
    let resilient = Scenario::on(g.clone())
        .payload(move || FloodBroadcast::new(gg.clone(), 0, 99))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 7),
            CorruptionBudget::Mobile { f: 1 },
        )
        .seed(7)
        .compiled_with(CliqueAdapter::new(1, 3))
        .run()
        .unwrap();
    assert_eq!(resilient.notes.fully_corrected(), Some(true));
    assert!(matches!(
        resilient.notes,
        CompilerNotes::Resilient {
            fully_corrected: true,
            ..
        }
    ));
    assert!(resilient.table_row().contains("notes=corrected:yes"));

    let gg = g.clone();
    let secure = Scenario::on(g)
        .payload(move || FloodBroadcast::new(gg.clone(), 0, 99))
        .adversary(
            AdversaryRole::Eavesdropper,
            RandomMobile::new(1, 7),
            CorruptionBudget::Mobile { f: 1 },
        )
        .seed(7)
        .compiled_with(StaticToMobileAdapter::new(4, 2, 3))
        .run()
        .unwrap();
    let key_rounds = secure.notes.key_rounds().expect("secure notes present");
    assert!(key_rounds > 0);
    match secure.notes {
        CompilerNotes::Secure {
            key_rounds: kr,
            simulation_rounds,
        } => {
            assert_eq!(kr, key_rounds);
            assert_eq!(simulation_rounds, secure.payload_rounds);
            assert_eq!(secure.network_rounds, kr + simulation_rounds);
        }
        ref other => panic!("expected secure notes, got {other:?}"),
    }

    // Baselines stay silent and the table shows a placeholder.
    let uncompiled_header = mobile_congest::scenario::RunReport::table_header();
    assert!(uncompiled_header.contains("notes"));
}

/// `Uncompiled` through the pipeline must reproduce `run_on_network` on an
/// identically configured network byte for byte — same outputs, same round
/// and corruption counters.
#[test]
fn uncompiled_scenario_reproduces_run_on_network_byte_for_byte() {
    let g = generators::complete(10);
    let f = 2;
    let seed = 11;

    let mut reference_net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(RandomMobile::new(f, seed).with_mode(CorruptionMode::FlipLowBit)),
        CorruptionBudget::Mobile { f },
        seed,
    );
    let reference = run_on_network(
        &mut FloodBroadcast::new(g.clone(), 0, 777),
        &mut reference_net,
    );

    let gg = g.clone();
    let report = Scenario::on(g.clone())
        .payload(move || FloodBroadcast::new(gg.clone(), 0, 777))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, seed).with_mode(CorruptionMode::FlipLowBit),
            CorruptionBudget::Mobile { f },
        )
        .seed(seed)
        .compiled_with(Uncompiled)
        .run()
        .unwrap();

    assert_eq!(report.outputs, reference);
    assert_eq!(report.network_rounds, reference_net.round());
    assert_eq!(report.metrics, *reference_net.metrics());
}

/// `FaultFree` through the pipeline must reproduce `run_fault_free` byte for
/// byte and consume zero network rounds.
#[test]
fn fault_free_scenario_reproduces_run_fault_free_byte_for_byte() {
    let g = generators::grid(3, 4);
    let inputs: Vec<u64> = (0..12).map(|v| 100 + v).collect();
    let reference = run_fault_free(&mut ConvergecastSum::new(g.clone(), 0, inputs.clone()));

    let gg = g.clone();
    let report = Scenario::on(g.clone())
        .payload(move || ConvergecastSum::new(gg.clone(), 0, inputs.clone()))
        .compiled_with(FaultFree)
        .run()
        .unwrap();

    assert_eq!(report.outputs, reference);
    assert_eq!(report.fault_free, Some(reference));
    assert_eq!(report.network_rounds, 0);
    assert_eq!(report.agrees_with_fault_free(), Some(true));
}

/// The acceptance-grade sweep: 3 graph families × 4 adversary strategies ×
/// 6 compilers through `scenario::matrix` in one call.  Structurally
/// impossible cells must be skipped with typed errors; every executed
/// protected cell must agree with the fault-free reference.
#[test]
fn matrix_sweep_graphs_by_adversaries_by_compilers() {
    let graphs = vec![
        matrix::GraphSpec::new("K12", generators::complete(12)),
        matrix::GraphSpec::new("circ(18,4)", generators::circulant(18, 4)),
        matrix::GraphSpec::new("circ(10,2)", generators::circulant(10, 2)),
    ];
    let adversaries = vec![
        matrix::AdversarySpec::new(
            "random-mobile",
            AdversaryRole::Byzantine,
            CorruptionBudget::Mobile { f: 1 },
            |seed| Box::new(RandomMobile::new(1, seed)),
        ),
        matrix::AdversarySpec::new(
            "sweep-mobile",
            AdversaryRole::Byzantine,
            CorruptionBudget::Mobile { f: 1 },
            |_| Box::new(SweepMobile::new(1)),
        ),
        matrix::AdversarySpec::new(
            "greedy-heaviest",
            AdversaryRole::Byzantine,
            CorruptionBudget::Mobile { f: 1 },
            |_| Box::new(GreedyHeaviest::new(1).with_mode(CorruptionMode::FlipLowBit)),
        ),
        matrix::AdversarySpec::new(
            "eavesdropper",
            AdversaryRole::Eavesdropper,
            CorruptionBudget::Mobile { f: 2 },
            |seed| Box::new(RandomMobile::new(2, seed)),
        ),
    ];
    let compilers = vec![
        matrix::CompilerSpec::of(FaultFree),
        matrix::CompilerSpec::of(Uncompiled),
        matrix::CompilerSpec::of(CliqueAdapter::new(1, 5)),
        matrix::CompilerSpec::of(TreePackingAdapter::new(1, 5)),
        matrix::CompilerSpec::of(CycleCoverAdapter::new(1)),
        matrix::CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
    ];

    let report = matrix::sweep(
        &graphs,
        &adversaries,
        &compilers,
        |g| Box::new(FloodBroadcast::new(g.clone(), 0, 4242)),
        2024,
    );

    assert_eq!(report.cells.len(), 3 * 4 * 6, "full grid must be covered");

    // Structural skips: resilient compilers under the eavesdropper, secure
    // compiler under the three byzantine strategies, clique compiler off the
    // clique, and packings that do not fit the sparse circulant.
    assert!(report.skipped_count() > 0, "expected typed skips");
    for cell in &report.cells {
        if cell.skipped() {
            assert!(
                matches!(
                    cell.outcome,
                    Err(ScenarioError::RoleMismatch { .. })
                        | Err(ScenarioError::UnsupportedGraph { .. })
                        | Err(ScenarioError::InsufficientConnectivity { .. })
                ),
                "unexpected skip reason in {}/{}/{}",
                cell.graph,
                cell.adversary,
                cell.compiler
            );
        }
    }

    // Representative structural skips exist.
    assert!(report.cells.iter().any(|c| c.compiler.starts_with("clique")
        && c.graph != "K12"
        && matches!(c.outcome, Err(ScenarioError::UnsupportedGraph { .. }))));
    assert!(report.cells.iter().any(|c| c.adversary == "eavesdropper"
        && matches!(c.outcome, Err(ScenarioError::RoleMismatch { .. }))));

    // Every executed protected cell agrees with the fault-free reference.
    for cell in report.executed() {
        let outcome = cell.outcome.as_ref().unwrap_or_else(|e| {
            panic!(
                "{}/{}/{} failed: {e}",
                cell.graph, cell.adversary, cell.compiler
            )
        });
        if cell.compiler != "uncompiled" {
            assert_eq!(
                outcome.agrees_with_fault_free(),
                Some(true),
                "{}/{}/{} diverged",
                cell.graph,
                cell.adversary,
                cell.compiler
            );
        }
    }
    assert!(report.all_protected_cells_agree());

    // The formatted table mentions every graph family.
    let table = report.to_table();
    for gspec in &graphs {
        assert!(table.contains(&gspec.name));
    }
}

/// The flat-buffer round engine produces **byte-identical** `RunReport`
/// fingerprints to the seed-era reference engine on the `Uncompiled` and
/// `FaultFree` paths: same outputs, same metrics, same corruption history,
/// same eavesdropper view.  The rewrite changed the cost of a round, not its
/// semantics.
#[test]
fn flat_engine_matches_the_seed_reference_engine_on_uncompiled_and_fault_free() {
    use mobile_congest::sim::reference::{run_on_reference_network, ReferenceNetwork};

    for (role, seed) in [
        (AdversaryRole::Byzantine, 41u64),
        (AdversaryRole::Eavesdropper, 42),
    ] {
        for g in [
            generators::complete(10),
            generators::torus(3, 4),
            generators::ring_of_cliques(3, 4),
        ] {
            // Uncompiled through the Scenario pipeline (flat engine).
            let gg = g.clone();
            let report = Scenario::on(g.clone())
                .payload(move || FloodBroadcast::new(gg.clone(), 0, 777))
                .adversary(
                    role,
                    RandomMobile::new(2, seed).with_mode(CorruptionMode::FlipLowBit),
                    CorruptionBudget::Mobile { f: 2 },
                )
                .seed(seed)
                .compiled_with(Uncompiled)
                .run()
                .unwrap();

            // The same cell through the retained seed engine.
            let mut ref_net = ReferenceNetwork::new(
                g.clone(),
                role,
                Box::new(RandomMobile::new(2, seed).with_mode(CorruptionMode::FlipLowBit)),
                CorruptionBudget::Mobile { f: 2 },
                seed,
            );
            let ref_out =
                run_on_reference_network(&mut FloodBroadcast::new(g.clone(), 0, 777), &mut ref_net);

            // Byte-identical fingerprints across every report facet the
            // engine touches.
            let flat_fp = format!(
                "{:?}|{:?}|{:?}|{:?}",
                report.outputs,
                report.metrics,
                report.view.canonical(),
                report.metrics.max_edge_congestion(),
            );
            let ref_fp = format!(
                "{:?}|{:?}|{:?}|{:?}",
                ref_out,
                ref_net.metrics,
                ref_net.view_log.canonical(),
                ref_net.metrics.max_edge_congestion(),
            );
            assert_eq!(flat_fp, ref_fp, "engine divergence under {role:?}");
            assert_eq!(report.network_rounds, ref_net.round());

            // FaultFree ignores the network entirely; both engines must agree
            // with it on a clean network.
            let gg = g.clone();
            let clean = Scenario::on(g.clone())
                .payload(move || FloodBroadcast::new(gg.clone(), 0, 777))
                .compiled_with(FaultFree)
                .run()
                .unwrap();
            assert_eq!(
                clean.outputs,
                run_fault_free(&mut FloodBroadcast::new(g, 0, 777))
            );
            if role == AdversaryRole::Eavesdropper {
                // Eavesdroppers never alter traffic, so even the uncompiled
                // outputs match the fault-free reference.
                assert_eq!(report.agrees_with_fault_free(), Some(true));
            }
        }
    }
}
