//! Cross-crate integration tests: every compiler × several payloads × several
//! graph families × several adversary strategies, plus the security coupling
//! harness and negative controls (baselines that must fail).

use mobile_congest::compilers::rate::RewindCompiler;
use mobile_congest::compilers::resilient::{
    CliqueCompiler, CycleCoverCompiler, MobileByzantineCompiler,
};
use mobile_congest::compilers::secure::{
    mobile_secure_unicast, CongestionSensitiveCompiler, StaticToMobileCompiler,
};
use mobile_congest::graphs::generators;
use mobile_congest::graphs::tree_packing::{greedy_low_depth_packing, star_packing};
use mobile_congest::graphs::Graph;
use mobile_congest::payloads::{
    BfsTreeAlgorithm, ConvergecastSum, FloodBroadcast, LeaderElection, RandomizedColoring,
    TokenDissemination,
};
use mobile_congest::sim::adversary::{
    AdversaryRole, BurstAdversary, CorruptionBudget, CorruptionMode, GreedyHeaviest, RandomMobile,
    SweepMobile,
};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::{run_fault_free, run_on_network, CongestAlgorithm};

fn byz_net(
    g: Graph,
    f: usize,
    seed: u64,
    strategy: Box<dyn mobile_congest::sim::AdversaryStrategy>,
) -> Network {
    Network::new(
        g,
        AdversaryRole::Byzantine,
        strategy,
        CorruptionBudget::Mobile { f },
        seed,
    )
}

#[test]
fn clique_compiler_across_payloads_and_adversaries() {
    let n = 16;
    let g = generators::complete(n);
    let f = 2;
    let strategies: Vec<(&str, Box<dyn Fn(u64) -> Box<dyn mobile_congest::sim::AdversaryStrategy>>)> = vec![
        ("random", Box::new(|s| Box::new(RandomMobile::new(2, s)))),
        ("sweep", Box::new(|_| Box::new(SweepMobile::new(1)))),
        (
            "greedy",
            Box::new(|_| Box::new(GreedyHeaviest::new(2).with_mode(CorruptionMode::FlipLowBit))),
        ),
    ];
    for (name, make) in &strategies {
        // Broadcast payload.
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 3, 777));
        let compiler = CliqueCompiler::new(&g, f, 42);
        let mut net = byz_net(g.clone(), f, 7, make(7));
        let (out, rep) = compiler.run(&mut FloodBroadcast::new(g.clone(), 3, 777), &mut net);
        assert_eq!(out, expected, "broadcast failed under {name}");
        assert!(rep.fully_corrected, "residual mismatches under {name}");

        // Leader election payload.
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let mut net = byz_net(g.clone(), f, 9, make(9));
        let (out, _) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected, "leader election failed under {name}");
    }
}

#[test]
fn clique_compiler_protects_aggregation_and_coloring() {
    let g = generators::complete(14);
    let f = 1;
    let compiler = CliqueCompiler::new(&g, f, 5);

    let inputs: Vec<u64> = (0..14).map(|v| v * 11 + 3).collect();
    let expected = run_fault_free(&mut ConvergecastSum::new(g.clone(), 0, inputs.clone()));
    let mut net = byz_net(g.clone(), f, 3, Box::new(RandomMobile::new(f, 3)));
    let (out, _) = compiler.run(&mut ConvergecastSum::new(g.clone(), 0, inputs), &mut net);
    assert_eq!(out, expected);

    // Randomized colouring: the compiled output must be a proper colouring.
    let mut net = byz_net(g.clone(), f, 4, Box::new(RandomMobile::new(f, 4)));
    let reference = RandomizedColoring::new(g.clone(), 20, 99);
    let (out, _) = compiler.run(&mut RandomizedColoring::new(g.clone(), 20, 99), &mut net);
    assert!(reference.is_proper(&out), "compiled colouring is improper");
    assert!(RandomizedColoring::decided_fraction(&out) > 0.9);
}

#[test]
fn general_graph_compiler_on_circulants() {
    // Graphs must offer enough edge connectivity for a packing of k = Ω(f·η)
    // trees (the hypercube's connectivity 4 is below the envelope for f = 1
    // with this crate's scheduler constants — see EXPERIMENTS.md).
    for (g, k) in [
        (generators::circulant(18, 4), 9usize),
        (generators::circulant(16, 3), 8),
    ] {
        let f = 1;
        let packing = greedy_low_depth_packing(&g, 0, k, 2);
        let compiler = MobileByzantineCompiler::new(packing, f, 13);
        let expected = run_fault_free(&mut BfsTreeAlgorithm::new(g.clone(), 0));
        let mut net = byz_net(g.clone(), f, 8, Box::new(RandomMobile::new(f, 8)));
        let (out, rep) = compiler.run(&mut BfsTreeAlgorithm::new(g.clone(), 0), &mut net);
        // BFS parents may legitimately differ; depths must match.
        for v in g.nodes() {
            assert_eq!(out[v][1], expected[v][1], "depth mismatch at node {v}");
        }
        assert!(rep.fully_corrected);
    }
}

#[test]
fn cycle_cover_compiler_small_f() {
    let g = generators::circulant(10, 2);
    let compiler = CycleCoverCompiler::new(&g, 1).expect("4-edge-connected");
    let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
    let mut net = byz_net(
        g.clone(),
        1,
        6,
        Box::new(RandomMobile::new(1, 6).with_mode(CorruptionMode::Constant(2))),
    );
    let (out, report) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
    assert_eq!(out, expected);
    assert!(report.dilation >= 1);
}

#[test]
fn rewind_compiler_under_burst_and_uncompiled_failure_control() {
    let g = generators::complete(12);
    let expected = run_fault_free(&mut LeaderElection::new(g.clone()));

    // Negative control: an uncompiled run under a constant-value burst adversary
    // with an unconstrained per-round budget is corrupted with overwhelming
    // probability (every round, half the edges lie).
    let mut bad_net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(GreedyHeaviest::new(30).with_mode(CorruptionMode::Constant(1))),
        CorruptionBudget::Mobile { f: 30 },
        1,
    );
    let uncompiled = run_on_network(&mut LeaderElection::new(g.clone()), &mut bad_net);
    assert_ne!(uncompiled, expected, "negative control unexpectedly survived");

    // The rewind compiler under a bursty round-error-rate adversary succeeds.
    let compiler = RewindCompiler::new(star_packing(&g, 0), 1, 17);
    let mut net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(BurstAdversary::new(30, 5, 10, 3)),
        CorruptionBudget::RoundErrorRate { total: 120 },
        3,
    );
    let (out, report) = compiler.run(|| LeaderElection::new(g.clone()), &mut net);
    assert!(report.completed);
    assert_eq!(out, expected);
}

#[test]
fn secure_compilers_preserve_outputs_and_hide_inputs() {
    let g = generators::grid(3, 4);
    let readings: Vec<u64> = (0..12).map(|v| 1000 + v).collect();
    let expected = run_fault_free(&mut ConvergecastSum::new(g.clone(), 0, readings.clone()));

    // Theorem 1.2 compiler.
    let compiler = StaticToMobileCompiler::new(5, 2, 77);
    let mut net = Network::new(
        g.clone(),
        AdversaryRole::Eavesdropper,
        Box::new(RandomMobile::new(2, 5)),
        CorruptionBudget::Mobile { f: 2 },
        5,
    );
    let (out, _) = compiler.run(&mut ConvergecastSum::new(g.clone(), 0, readings.clone()), &mut net);
    assert_eq!(out, expected);
    // No plaintext reading may appear verbatim in the adversary's view during
    // the simulation phase (the pads are 64-bit, collision probability ~2^-64).
    for entry in &net.view_log().entries {
        for side in [&entry.forward, &entry.backward] {
            if let Some(p) = side {
                for w in p {
                    assert!(!readings.contains(w), "reading leaked in the clear");
                }
            }
        }
    }

    // Theorem 1.3 compiler on the clique (high connectivity) with token payload.
    let kg = generators::complete(10);
    let tokens: Vec<u64> = (0..10).map(|v| 3_000 + v).collect();
    let expected = run_fault_free(&mut TokenDissemination::new(kg.clone(), tokens.clone(), 10));
    let cs = CongestionSensitiveCompiler::new(1, 10, 23);
    let mut net = Network::new(
        kg.clone(),
        AdversaryRole::Eavesdropper,
        Box::new(RandomMobile::new(1, 9)),
        CorruptionBudget::Mobile { f: 1 },
        9,
    );
    let (out, _) = cs.run(&mut TokenDissemination::new(kg.clone(), tokens, 10), &mut net, 0);
    assert_eq!(out, expected);
}

/// Perfect security, operationally: couple the adversary schedule and node
/// randomness across two executions that differ *only* in the secret; the
/// adversary's views must be identical whenever it never observes an edge
/// during the key-establishment phase (pads hide the payload completely).
#[test]
fn coupled_views_are_input_independent_for_unicast() {
    let g = generators::cycle(8);
    // Observe a fixed edge only after the single pad-exchange round.
    let schedule: Vec<Vec<usize>> = std::iter::once(vec![])
        .chain(std::iter::repeat(vec![2usize]).take(20))
        .collect();
    let run = |secret: u64| {
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(mobile_congest::sim::adversary::ScheduledEdges::new(schedule.clone())),
            CorruptionBudget::Mobile { f: 1 },
            1,
        );
        let rep = mobile_secure_unicast(&mut net, 0, 4, secret, 99);
        assert_eq!(rep.recovered[0], Some(secret));
        net.view_log().canonical()
    };
    let view_a = run(0x1111_1111);
    let view_b = run(0x9999_9999);
    assert_eq!(
        view_a, view_b,
        "the eavesdropper's view must not depend on the secret"
    );
}

#[test]
fn uncompiled_baseline_is_broken_by_a_single_mobile_edge_eventually() {
    // A 1-mobile adversary that substitutes plausible values corrupts an
    // uncompiled flooding broadcast on a cycle for at least some corruption
    // schedule; this is the "resilience is impossible without redundancy"
    // control for sparse graphs.
    let g = generators::cycle(8);
    let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 777));
    let mut broken_any = false;
    for seed in 0..5 {
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(1, seed).with_mode(CorruptionMode::Constant(123))),
            CorruptionBudget::Mobile { f: 1 },
            seed,
        );
        let out = run_on_network(&mut FloodBroadcast::new(g.clone(), 0, 777), &mut net);
        if out != expected {
            broken_any = true;
        }
    }
    assert!(broken_any, "the unprotected baseline should break for some schedule");
}

#[test]
fn compiled_runs_cost_more_rounds_but_bounded_overhead() {
    let g = generators::complete(16);
    let f = 2;
    let compiler = CliqueCompiler::new(&g, f, 3);
    let payload_rounds = LeaderElection::new(g.clone()).rounds();
    let mut net = byz_net(g.clone(), f, 11, Box::new(RandomMobile::new(f, 11)));
    let (_, rep) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
    assert_eq!(rep.payload_rounds, payload_rounds);
    assert!(rep.network_rounds > payload_rounds);
    // Overhead is polylogarithmic-ish in simulation terms: well below the naive
    // "repeat everything n times" blow-up.
    assert!(
        rep.network_rounds < 5000 * payload_rounds,
        "overhead unexpectedly large: {}",
        rep.network_rounds
    );
}
