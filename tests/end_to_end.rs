//! Cross-crate integration tests, all driven through the unified `Scenario`
//! pipeline: every compiler × several payloads × several graph families ×
//! several adversary strategies, plus the security coupling harness and
//! negative controls (baselines that must fail).

use mobile_congest::compilers::secure::mobile_secure_unicast;
use mobile_congest::graphs::generators;
use mobile_congest::payloads::{
    BfsTreeAlgorithm, ConvergecastSum, FloodBroadcast, LeaderElection, RandomizedColoring,
    TokenDissemination,
};
use mobile_congest::scenario::{
    CliqueAdapter, CongestionSensitiveAdapter, CycleCoverAdapter, RewindAdapter, Scenario,
    StaticToMobileAdapter, TreePackingAdapter, Uncompiled,
};
use mobile_congest::sim::adversary::{
    AdversaryRole, AdversaryStrategy, BurstAdversary, CorruptionBudget, CorruptionMode,
    GreedyHeaviest, RandomMobile, ScheduledEdges, SweepMobile,
};

type StrategyFactory = Box<dyn Fn(u64) -> Box<dyn AdversaryStrategy>>;

#[test]
fn clique_compiler_across_payloads_and_adversaries() {
    let n = 16;
    let g = generators::complete(n);
    let f = 2;
    let strategies: Vec<(&str, StrategyFactory)> = vec![
        ("random", Box::new(|s| Box::new(RandomMobile::new(2, s)))),
        ("sweep", Box::new(|_| Box::new(SweepMobile::new(1)))),
        (
            "greedy",
            Box::new(|_| Box::new(GreedyHeaviest::new(2).with_mode(CorruptionMode::FlipLowBit))),
        ),
    ];
    for (name, make) in &strategies {
        // Broadcast payload.
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(gg.clone(), 3, 777))
            .adversary_boxed(
                AdversaryRole::Byzantine,
                make(7),
                CorruptionBudget::Mobile { f },
            )
            .seed(7)
            .compiled_with(CliqueAdapter::new(f, 42))
            .run()
            .unwrap();
        assert_eq!(
            report.agrees_with_fault_free(),
            Some(true),
            "broadcast failed under {name}"
        );

        // Leader election payload.
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || LeaderElection::new(gg.clone()))
            .adversary_boxed(
                AdversaryRole::Byzantine,
                make(9),
                CorruptionBudget::Mobile { f },
            )
            .seed(9)
            .compiled_with(CliqueAdapter::new(f, 42))
            .run()
            .unwrap();
        assert_eq!(
            report.agrees_with_fault_free(),
            Some(true),
            "leader election failed under {name}"
        );
    }
}

#[test]
fn clique_compiler_protects_aggregation_and_coloring() {
    let g = generators::complete(14);
    let f = 1;

    let inputs: Vec<u64> = (0..14).map(|v| v * 11 + 3).collect();
    let gg = g.clone();
    let report = Scenario::on(g.clone())
        .payload(move || ConvergecastSum::new(gg.clone(), 0, inputs.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, 3),
            CorruptionBudget::Mobile { f },
        )
        .seed(3)
        .compiled_with(CliqueAdapter::new(f, 5))
        .run()
        .unwrap();
    assert_eq!(report.agrees_with_fault_free(), Some(true));

    // Randomized colouring: the compiled output must be a proper colouring.
    let gg = g.clone();
    let report = Scenario::on(g.clone())
        .payload(move || RandomizedColoring::new(gg.clone(), 20, 99))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, 4),
            CorruptionBudget::Mobile { f },
        )
        .seed(4)
        .compiled_with(CliqueAdapter::new(f, 5))
        .check_against_fault_free(false)
        .run()
        .unwrap();
    let reference = RandomizedColoring::new(g.clone(), 20, 99);
    assert!(
        reference.is_proper(&report.outputs),
        "compiled colouring is improper"
    );
    assert!(RandomizedColoring::decided_fraction(&report.outputs) > 0.9);
}

#[test]
fn general_graph_compiler_on_circulants() {
    // Graphs must offer enough edge connectivity for a packing of k = Ω(f·η)
    // trees (the hypercube's connectivity 4 is below the envelope for f = 1
    // with this crate's scheduler constants — see EXPERIMENTS.md).
    for (g, k) in [
        (generators::circulant(18, 4), 9usize),
        (generators::circulant(16, 3), 8),
    ] {
        let f = 1;
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || BfsTreeAlgorithm::new(gg.clone(), 0))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(f, 8),
                CorruptionBudget::Mobile { f },
            )
            .seed(8)
            .compiled_with(TreePackingAdapter::new(f, 13).with_trees(k))
            .run()
            .unwrap();
        // BFS parents may legitimately differ; depths must match.
        let expected = report.fault_free.as_ref().unwrap();
        for v in g.nodes() {
            assert_eq!(
                report.outputs[v][1], expected[v][1],
                "depth mismatch at node {v}"
            );
        }
    }
}

#[test]
fn cycle_cover_compiler_small_f() {
    let g = generators::circulant(10, 2);
    let gg = g.clone();
    let report = Scenario::on(g)
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 6).with_mode(CorruptionMode::Constant(2)),
            CorruptionBudget::Mobile { f: 1 },
        )
        .seed(6)
        .compiled_with(CycleCoverAdapter::new(1))
        .run()
        .unwrap();
    assert_eq!(report.agrees_with_fault_free(), Some(true));
    assert!(report.network_rounds > report.payload_rounds);
}

#[test]
fn rewind_compiler_under_burst_and_uncompiled_failure_control() {
    let g = generators::complete(12);

    // Negative control: an uncompiled run under a constant-value burst
    // adversary with an unconstrained per-round budget is corrupted with
    // overwhelming probability (every round, half the edges lie).
    let gg = g.clone();
    let baseline = Scenario::on(g.clone())
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            GreedyHeaviest::new(30).with_mode(CorruptionMode::Constant(1)),
            CorruptionBudget::Mobile { f: 30 },
        )
        .seed(1)
        .compiled_with(Uncompiled)
        .run()
        .unwrap();
    assert_eq!(
        baseline.agrees_with_fault_free(),
        Some(false),
        "negative control unexpectedly survived"
    );

    // The rewind compiler under a bursty round-error-rate adversary succeeds.
    let gg = g.clone();
    let report = Scenario::on(g.clone())
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            BurstAdversary::new(30, 5, 10, 3),
            CorruptionBudget::RoundErrorRate { total: 120 },
        )
        .seed(3)
        .compiled_with(RewindAdapter::new(1, 17))
        .run()
        .unwrap();
    assert_eq!(report.agrees_with_fault_free(), Some(true));
}

#[test]
fn secure_compilers_preserve_outputs_and_hide_inputs() {
    let g = generators::grid(3, 4);
    let readings: Vec<u64> = (0..12).map(|v| 1000 + v).collect();

    // Theorem 1.2 compiler.
    let gg = g.clone();
    let rr = readings.clone();
    let report = Scenario::on(g.clone())
        .payload(move || ConvergecastSum::new(gg.clone(), 0, rr.clone()))
        .adversary(
            AdversaryRole::Eavesdropper,
            RandomMobile::new(2, 5),
            CorruptionBudget::Mobile { f: 2 },
        )
        .seed(5)
        .compiled_with(StaticToMobileAdapter::new(5, 2, 77))
        .run()
        .unwrap();
    assert_eq!(report.agrees_with_fault_free(), Some(true));
    // No plaintext reading may appear verbatim in the adversary's view during
    // the simulation phase (the pads are 64-bit, collision probability ~2^-64).
    assert!(
        !report.view_contains_any(&readings),
        "reading leaked in the clear"
    );

    // Theorem 1.3 compiler on the clique (high connectivity) with token payload.
    let kg = generators::complete(10);
    let tokens: Vec<u64> = (0..10).map(|v| 3_000 + v).collect();
    let kgg = kg.clone();
    let report = Scenario::on(kg)
        .payload(move || TokenDissemination::new(kgg.clone(), tokens.clone(), 10))
        .adversary(
            AdversaryRole::Eavesdropper,
            RandomMobile::new(1, 9),
            CorruptionBudget::Mobile { f: 1 },
        )
        .seed(9)
        .compiled_with(CongestionSensitiveAdapter::new(1, 10, 23))
        .run()
        .unwrap();
    assert_eq!(report.agrees_with_fault_free(), Some(true));
}

/// Perfect security, operationally: couple the adversary schedule and node
/// randomness across two executions that differ *only* in the secret; the
/// adversary's views must be identical whenever it never observes an edge
/// during the key-establishment phase (pads hide the payload completely).
#[test]
fn coupled_views_are_input_independent_for_unicast() {
    let g = generators::cycle(8);
    // Observe a fixed edge only after the single pad-exchange round.
    let schedule: Vec<Vec<usize>> = std::iter::once(vec![])
        .chain(std::iter::repeat_n(vec![2usize], 20))
        .collect();
    let run = |secret: u64| {
        let mut net = Scenario::on(g.clone())
            .adversary(
                AdversaryRole::Eavesdropper,
                ScheduledEdges::new(schedule.clone()),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(1)
            .network()
            .unwrap();
        let rep = mobile_secure_unicast(&mut net, 0, 4, secret, 99);
        assert_eq!(rep.recovered[0], Some(secret));
        net.view_log().canonical()
    };
    let view_a = run(0x1111_1111);
    let view_b = run(0x9999_9999);
    assert_eq!(
        view_a, view_b,
        "the eavesdropper's view must not depend on the secret"
    );
}

#[test]
fn uncompiled_baseline_is_broken_by_a_single_mobile_edge_eventually() {
    // A 1-mobile adversary that substitutes plausible values corrupts an
    // uncompiled flooding broadcast on a cycle for at least some corruption
    // schedule; this is the "resilience is impossible without redundancy"
    // control for sparse graphs.
    let g = generators::cycle(8);
    let mut broken_any = false;
    for seed in 0..5 {
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(gg.clone(), 0, 777))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, seed).with_mode(CorruptionMode::Constant(123)),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(seed)
            .compiled_with(Uncompiled)
            .run()
            .unwrap();
        if report.agrees_with_fault_free() == Some(false) {
            broken_any = true;
        }
    }
    assert!(
        broken_any,
        "the unprotected baseline should break for some schedule"
    );
}

#[test]
fn compiled_runs_cost_more_rounds_but_bounded_overhead() {
    let g = generators::complete(16);
    let f = 2;
    let gg = g.clone();
    let report = Scenario::on(g.clone())
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, 11),
            CorruptionBudget::Mobile { f },
        )
        .seed(11)
        .compiled_with(CliqueAdapter::new(f, 3))
        .run()
        .unwrap();
    assert_eq!(report.agrees_with_fault_free(), Some(true));
    assert!(report.network_rounds > report.payload_rounds);
    // Overhead is polylogarithmic-ish in simulation terms: well below the naive
    // "repeat everything n times" blow-up.
    assert!(
        report.network_rounds < 5000 * report.payload_rounds,
        "overhead unexpectedly large: {}",
        report.network_rounds
    );
}
