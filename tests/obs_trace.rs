//! Trace determinism (`crates/obs` through the whole stack): traced event
//! streams are byte-identical at any campaign thread count and any async
//! host count, same-seed reruns reproduce them exactly, and every span that
//! opens closes.
//!
//! Wall-clock durations are out-of-band by design — these tests compare
//! event streams, digests and span counts, never nanoseconds.

use mobile_congest::graphs::generators;
use mobile_congest::harness::campaign::CampaignReport;
use mobile_congest::harness::Campaign;
use mobile_congest::obs;
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::scenario::matrix::{AdversarySpec, CompilerSpec, GraphSpec};
use mobile_congest::scenario::{
    AsyncExecutor, BoxedAlgorithm, CliqueAdapter, LatencyModel, RewindAdapter, Scenario,
    ScheduleDef, StaticToMobileAdapter, TreePackingAdapter, Uncompiled,
};
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};

fn flood_payload(g: &mobile_congest::graphs::Graph) -> BoxedAlgorithm {
    Box::new(FloodBroadcast::new(g.clone(), 0, 4242))
}

/// A small traced campaign crossing all span-emitting compiler families.
fn traced_campaign(threads: usize) -> CampaignReport {
    Campaign::new(99)
        .graphs(vec![
            GraphSpec::new("K8", generators::complete(8)),
            GraphSpec::new("circ(10,2)", generators::circulant(10, 2)),
        ])
        .adversaries(vec![
            AdversarySpec::new(
                "random-mobile",
                AdversaryRole::Byzantine,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            ),
            AdversarySpec::new(
                "eavesdropper",
                AdversaryRole::Eavesdropper,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            ),
        ])
        .compilers(vec![
            CompilerSpec::of(Uncompiled),
            CompilerSpec::of(CliqueAdapter::new(1, 5)),
            CompilerSpec::of(TreePackingAdapter::new(1, 5)),
            CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
            CompilerSpec::of(RewindAdapter::new(1, 5)),
        ])
        .payload(flood_payload)
        .repetitions(2)
        .threads(threads)
        .trace(obs::TraceSpec::ring())
        .run()
}

/// The concatenated per-cell event streams — the bytes `--trace-dir` writes.
fn event_bytes(report: &CampaignReport) -> String {
    let mut out = String::new();
    for cell in &report.cells {
        if let Ok(r) = &cell.outcome {
            out.push_str(&format!("# cell {}\n", cell.index));
            let mut buf = Vec::new();
            r.trace.write_jsonl(&mut buf).unwrap();
            out.push_str(&String::from_utf8(buf).unwrap());
        }
    }
    out
}

#[test]
fn traced_campaign_is_byte_identical_across_thread_counts() {
    let single = traced_campaign(1);
    let double = traced_campaign(2);
    let eight = traced_campaign(8);
    // The fingerprint covers each cell's trace via its digest + stats.
    assert_eq!(single.fingerprint(), double.fingerprint());
    assert_eq!(single.fingerprint(), eight.fingerprint());
    // And the raw streams agree byte-for-byte, not just by digest.
    let bytes = event_bytes(&single);
    assert!(!bytes.is_empty());
    assert_eq!(bytes, event_bytes(&double));
    assert_eq!(bytes, event_bytes(&eight));
}

#[test]
fn same_seed_rerun_reproduces_the_trace_exactly() {
    let a = traced_campaign(4);
    let b = traced_campaign(4);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(event_bytes(&a), event_bytes(&b));
}

#[test]
fn every_opened_span_is_closed_in_every_cell() {
    let report = traced_campaign(2);
    let mut executed = 0;
    for cell in &report.cells {
        let Ok(r) = &cell.outcome else { continue };
        executed += 1;
        assert_eq!(
            r.trace.stats.unclosed, 0,
            "cell {} ({}) left spans open",
            cell.index, cell.compiler
        );
        assert_eq!(
            r.trace.stats.mismatched, 0,
            "cell {} ({}) closed spans out of order",
            cell.index, cell.compiler
        );
        // Bracketing also holds inside the retained stream itself.
        let opens = r
            .trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::SpanOpen(_)))
            .count();
        let closes = r
            .trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::SpanClose(_)))
            .count();
        assert_eq!(opens, closes, "cell {} stream unbalanced", cell.index);
    }
    assert!(executed > 0, "the grid must execute some cells");
}

#[test]
fn traced_profile_counts_are_deterministic_but_wall_time_is_out_of_band() {
    let a = traced_campaign(1);
    let b = traced_campaign(8);
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        let (Ok(ra), Ok(rb)) = (&ca.outcome, &cb.outcome) else {
            continue;
        };
        // Span *counts* agree exactly; wall nanos are not compared (and the
        // Debug form the fingerprint uses never prints them).
        for phase in obs::Phase::ALL {
            assert_eq!(
                ra.trace.profile.count(phase),
                rb.trace.profile.count(phase),
                "cell {} phase {}",
                ca.index,
                phase.name()
            );
        }
        assert_eq!(
            format!("{:?}", ra.trace.profile),
            format!("{:?}", rb.trace.profile)
        );
        assert!(!format!("{:?}", ra.trace.profile).contains("ns"));
    }
}

/// Async executor traces: byte-identical at 1, 2 and 8 host threads, with
/// slot events on the virtual tick clock.
#[test]
fn async_trace_is_byte_identical_across_host_counts() {
    let g = generators::circulant(10, 2);
    let schedule = ScheduleDef::synchronous()
        .with_latency(LatencyModel::Uniform { min: 0, max: 3 })
        .with_reorder_window(2);
    let run_with = |hosts: usize| {
        let payload_graph = g.clone();
        Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(payload_graph.clone(), 0, 7))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 3),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(3)
            .trace(obs::TraceSpec::ring())
            .compiled_with(AsyncExecutor::new(schedule.clone()).with_hosts(hosts))
            .run()
            .unwrap()
    };
    let one = run_with(1);
    let two = run_with(2);
    let eight = run_with(8);
    let jsonl = |r: &mobile_congest::scenario::RunReport| {
        let mut buf = Vec::new();
        r.trace.write_jsonl(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    };
    let reference = jsonl(&one);
    assert!(
        reference.contains("slot_delivered") && reference.contains("slot_delayed"),
        "the jittery schedule must emit slot events"
    );
    assert_eq!(reference, jsonl(&two), "2 hosts diverged");
    assert_eq!(reference, jsonl(&eight), "8 hosts diverged");
    assert_eq!(one.trace.stats.unclosed, 0);
}

/// Crash windows emit paired crash/recover events even though idle ticks are
/// skipped by the scheduler.
#[test]
fn async_crash_windows_emit_crash_and_recover_events() {
    let g = generators::grid(3, 3);
    let payload_graph = g.clone();
    let report = Scenario::on(g)
        .payload(move || FloodBroadcast::new(payload_graph.clone(), 0, 5))
        .trace(obs::TraceSpec::ring())
        .compiled_with(AsyncExecutor::new(ScheduleDef::synchronous().with_crash(
            mobile_congest::scenario::CrashWindow {
                node: 4,
                from: 1,
                until: 5,
            },
        )))
        .run()
        .unwrap();
    let crashes = report
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, obs::EventKind::NodeCrash { node: 4 }))
        .count();
    let recovers = report
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, obs::EventKind::NodeRecover { node: 4 }))
        .count();
    assert_eq!(crashes, 1);
    assert_eq!(recovers, 1);
    assert_eq!(report.trace.stats.unclosed, 0);
}

/// The tracing default is off, and an untraced report carries an empty
/// profile and no events — the zero-overhead configuration.
#[test]
fn untraced_runs_carry_no_events_and_empty_profiles() {
    let g = generators::complete(8);
    let payload_graph = g.clone();
    let report = Scenario::on(g)
        .payload(move || FloodBroadcast::new(payload_graph.clone(), 0, 1))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 2),
            CorruptionBudget::Mobile { f: 1 },
        )
        .seed(2)
        .compiled_with(CliqueAdapter::new(1, 5))
        .run()
        .unwrap();
    assert!(report.trace.events.is_empty());
    assert!(report.trace.profile.is_empty());
    assert_eq!(report.trace.stats.offered, 0);
    assert!(report.profile().is_empty());
}
