//! Integration tests for the deterministic parallel campaign engine
//! (`mobile_congest::harness`): thread-count determinism, the full
//! 3 × 4 × 6 × 4 acceptance grid, and typed `CompilerNotes` assertions
//! through the whole stack.

use mobile_congest::graphs::generators;
use mobile_congest::harness::Campaign;
use mobile_congest::payloads::{FloodBroadcast, LeaderElection};
use mobile_congest::scenario::matrix::{AdversarySpec, CompilerSpec, GraphSpec};
use mobile_congest::scenario::{
    BoxedAlgorithm, CliqueAdapter, CompilerNotes, CycleCoverAdapter, FaultFree, RewindAdapter,
    StaticToMobileAdapter, TreePackingAdapter, Uncompiled,
};
use mobile_congest::sim::adversary::{
    AdversaryRole, BurstAdversary, CorruptionBudget, CorruptionMode, GreedyHeaviest, RandomMobile,
    SweepMobile,
};

fn graphs() -> Vec<GraphSpec> {
    vec![
        GraphSpec::new("K12", generators::complete(12)),
        GraphSpec::new("circ(18,4)", generators::circulant(18, 4)),
        GraphSpec::new("circ(10,2)", generators::circulant(10, 2)),
    ]
}

fn adversaries() -> Vec<AdversarySpec> {
    vec![
        AdversarySpec::new(
            "random-mobile",
            AdversaryRole::Byzantine,
            CorruptionBudget::Mobile { f: 1 },
            |seed| Box::new(RandomMobile::new(1, seed)),
        ),
        AdversarySpec::new(
            "sweep-mobile",
            AdversaryRole::Byzantine,
            CorruptionBudget::Mobile { f: 1 },
            |_| Box::new(SweepMobile::new(1)),
        ),
        AdversarySpec::new(
            "greedy-heaviest",
            AdversaryRole::Byzantine,
            CorruptionBudget::Mobile { f: 1 },
            |_| Box::new(GreedyHeaviest::new(1).with_mode(CorruptionMode::FlipLowBit)),
        ),
        AdversarySpec::new(
            "eavesdropper",
            AdversaryRole::Eavesdropper,
            CorruptionBudget::Mobile { f: 2 },
            |seed| Box::new(RandomMobile::new(2, seed)),
        ),
    ]
}

fn compilers() -> Vec<CompilerSpec> {
    vec![
        CompilerSpec::of(FaultFree),
        CompilerSpec::of(Uncompiled),
        CompilerSpec::of(CliqueAdapter::new(1, 5)),
        CompilerSpec::of(TreePackingAdapter::new(1, 5)),
        CompilerSpec::of(CycleCoverAdapter::new(1)),
        CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
    ]
}

fn flood_payload(g: &mobile_congest::graphs::Graph) -> BoxedAlgorithm {
    Box::new(FloodBroadcast::new(g.clone(), 0, 4242))
}

/// Same campaign seed, 1 vs 2 vs 8 worker threads: the serialized reports
/// (cell order and contents, including outputs, metrics, view logs and typed
/// notes) must be byte-identical.
#[test]
fn campaign_results_are_byte_identical_across_thread_counts() {
    let run_with = |threads: usize| {
        Campaign::new(2024)
            .graphs(vec![
                GraphSpec::new("K10", generators::complete(10)),
                GraphSpec::new("circ(10,2)", generators::circulant(10, 2)),
            ])
            .adversaries(vec![
                AdversarySpec::new(
                    "random-mobile",
                    AdversaryRole::Byzantine,
                    CorruptionBudget::Mobile { f: 1 },
                    |seed| Box::new(RandomMobile::new(1, seed)),
                ),
                AdversarySpec::new(
                    "eavesdropper",
                    AdversaryRole::Eavesdropper,
                    CorruptionBudget::Mobile { f: 1 },
                    |seed| Box::new(RandomMobile::new(1, seed)),
                ),
            ])
            .compilers(vec![
                CompilerSpec::of(Uncompiled),
                CompilerSpec::of(CliqueAdapter::new(1, 5)),
                CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
            ])
            .payload(flood_payload)
            .repetitions(3)
            .threads(threads)
            .run()
    };

    let single = run_with(1);
    let double = run_with(2);
    let eight = run_with(8);

    assert_eq!(single.cells.len(), 2 * 2 * 3 * 3);
    assert_eq!(single.fingerprint(), double.fingerprint());
    assert_eq!(single.fingerprint(), eight.fingerprint());
    assert_eq!(single.to_jsonl(), double.to_jsonl());
    assert_eq!(single.to_jsonl(), eight.to_jsonl());
}

/// The acceptance-grade campaign: the 3 × 4 × 6 matrix with 4 repetitions
/// per cell, through the parallel engine, with per-compiler notes aggregated
/// into summaries and exported as JSONL.
#[test]
fn full_grid_campaign_with_repetitions_through_the_parallel_engine() {
    let report = Campaign::new(77)
        .graphs(graphs())
        .adversaries(adversaries())
        .compilers(compilers())
        .payload(flood_payload)
        .repetitions(4)
        .run();

    assert_eq!(report.cells.len(), 3 * 4 * 6 * 4, "full grid × repetitions");
    assert!(report.skipped_count() > 0, "expected typed skips");
    assert!(report.all_protected_cells_agree());

    // Repetitions of one grid cell differ only in their derived seed.
    let seeds: Vec<u64> = report
        .cells
        .iter()
        .filter(|c| {
            c.graph == "K12" && c.adversary == "random-mobile" && c.compiler.starts_with("clique")
        })
        .map(|c| c.seed)
        .collect();
    assert_eq!(seeds.len(), 4);
    assert!(
        seeds.windows(2).all(|w| w[0] != w[1]),
        "per-repetition seeds must differ"
    );

    // The resilient compiler's typed notes survive aggregation: every
    // repetition on the clique under every byzantine adversary ended fully
    // corrected.
    let summaries = report.summaries();
    let clique = summaries
        .iter()
        .find(|s| {
            s.graph == "K12" && s.adversary == "random-mobile" && s.compiler.starts_with("clique")
        })
        .expect("clique group present");
    assert_eq!(clique.executed, 4);
    assert_eq!(clique.disagreements, 0);
    let corrected = clique
        .stat("fully_corrected")
        .expect("resilient notes aggregated");
    assert_eq!(corrected.count, 4);
    assert_eq!(corrected.mean, 1.0, "every repetition fully corrected");
    assert!(clique.stat("mismatches_after").is_some());

    // The secrecy compiler's notes likewise: key rounds are aggregated and
    // positive on every executed eavesdropper cell.
    let secure = summaries
        .iter()
        .find(|s| s.adversary == "eavesdropper" && s.compiler.starts_with("static-to-mobile"))
        .expect("static-to-mobile group present");
    assert!(secure.executed > 0);
    assert!(
        secure
            .stat("key_rounds")
            .expect("secure notes aggregated")
            .min
            > 0.0
    );

    // The JSONL trajectory carries one line per cell plus one per group, and
    // records the typed notes.
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), report.cells.len() + summaries.len());
    assert!(jsonl.contains("\"notes\":{\"type\":\"resilient\",\"fully_corrected\":1"));
    assert!(jsonl.contains("\"kind\":\"summary\""));
    assert!(jsonl.contains("\"status\":\"skipped\""));
    // Dispersion made it into both exports: the summary JSONL carries
    // stddev/p10/p90 and the table has the `net sd` column.
    assert!(jsonl.contains("\"stddev\":"));
    assert!(jsonl.contains("\"p10\":"));
    assert!(jsonl.contains("\"p90\":"));
    assert!(report.to_table_with(&summaries).contains("net sd"));
    let net = clique.stat("network_rounds").unwrap();
    assert!(net.stddev >= 0.0);
    assert!(net.p10 <= net.p50 && net.p50 <= net.p90 && net.p90 <= net.p99);
}

/// The expanded topology × adversary zoo runs through the full campaign grid
/// with thread-count determinism preserved, A/B-ing the two tree packings on
/// identical cells: every new generator (torus, seeded expander,
/// Watts–Strogatz small world, ring of cliques) and every new adversary
/// (adaptive-heaviest, eclipse) produces executed cells, and the whole
/// report is byte-identical at 1 and 4 workers.
#[test]
fn zoo_campaign_covers_new_generators_and_adversaries_deterministically() {
    use mobile_congest::graphs::PackingVersion;
    use mobile_congest::scenario::matrix::{adversary_zoo, graph_zoo};

    let run_with = |threads: usize| {
        Campaign::new(31337)
            .graphs(graph_zoo(7))
            .adversaries(adversary_zoo(1))
            .compilers(vec![
                CompilerSpec::of(Uncompiled),
                CompilerSpec::of(
                    TreePackingAdapter::new(1, 5).with_packing(PackingVersion::V1Greedy),
                ),
                CompilerSpec::of(TreePackingAdapter::new(1, 5)), // v2 default
                CompilerSpec::of(CycleCoverAdapter::new(1)),
                CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
            ])
            .payload(flood_payload)
            .repetitions(2)
            .threads(threads)
            .run()
    };
    let single = run_with(1);
    let parallel = run_with(4);
    assert_eq!(single.cells.len(), 8 * 7 * 5 * 2, "full zoo grid");
    assert_eq!(
        single.fingerprint(),
        parallel.fingerprint(),
        "zoo grid must be thread-count deterministic"
    );
    // The PR-3 frontier, kept pinned as the v1 baseline: the *greedy* tree
    // packing leaves an edge carrying one tree more than the graph requires,
    // and targeted heaviest-edge attacks fail every instance scheduled over
    // that edge at once (random attacks it handles).  Anything else
    // diverging — in particular any v2 cell — is a regression.
    let rogue: Vec<(String, String, String)> = single
        .executed()
        .filter_map(|c| match &c.outcome {
            Ok(r)
                if r.compiler_kind != mobile_congest::scenario::CompilerKind::Baseline
                    && r.agrees_with_fault_free() == Some(false) =>
            {
                Some((c.graph.clone(), c.adversary.clone(), c.compiler.clone()))
            }
            _ => None,
        })
        .collect();
    assert!(
        !rogue.is_empty(),
        "the v1 small-world/tree-packing frontier disappeared — update this test and ROADMAP.md"
    );
    assert!(
        rogue.iter().all(|(g, a, c)| {
            g == "small-world(24,6)" && a.contains("heaviest") && c.ends_with("v1)")
        }),
        "unexpected protected-cell divergences: {rogue:?}"
    );

    // Tree-packing v2 closes the frontier: the very cells where v1 diverges
    // are fully corrected, and across the whole grid no cell that passed
    // `validate_packing_feasible` fails to correct under v2 — validation
    // *predicts* correction strength.
    let v2_cells: Vec<_> = single
        .executed()
        .filter(|c| c.compiler.ends_with("v2)"))
        .collect();
    assert!(!v2_cells.is_empty(), "v2 cells must execute");
    for cell in &v2_cells {
        let report = cell
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("v2 cell {}/{} failed: {e}", cell.graph, cell.adversary));
        assert_eq!(
            report.agrees_with_fault_free(),
            Some(true),
            "v2 diverged on {}/{}",
            cell.graph,
            cell.adversary
        );
        assert_eq!(
            report.notes.fully_corrected(),
            Some(true),
            "v2 left residual mismatches on {}/{}",
            cell.graph,
            cell.adversary
        );
    }
    // The frontier cells specifically: v1 diverges there, v2 corrects, and
    // the quality notes show why — v2 reaches the graph's load floor while
    // v1 sits above it.
    for adversary in ["adaptive-heaviest", "greedy-heaviest"] {
        let frontier = |c: &&mobile_congest::harness::campaign::CampaignCell| {
            c.graph == "small-world(24,6)" && c.adversary == adversary
        };
        assert!(
            rogue
                .iter()
                .any(|(g, a, _)| g == "small-world(24,6)" && a == adversary),
            "v1 baseline divergence under {adversary} disappeared"
        );
        let v2 = v2_cells
            .iter()
            .find(|c| frontier(c))
            .expect("frontier v2 cell executed");
        let report = v2.outcome.as_ref().unwrap();
        let (good, trees, max_load) = report
            .notes
            .packing_quality()
            .expect("resilient notes carry packing quality");
        assert_eq!(good, trees, "every v2 tree is good on the frontier graph");
        assert_eq!(max_load, 3, "v2 reaches the small-world load floor");
    }

    // Every new generator and every new adversary must actually execute
    // cells (not be skipped out of the grid entirely).
    for name in [
        "torus4x5",
        "expander(24,8)",
        "small-world(24,6)",
        "ring-of-cliques(4,5)",
    ] {
        assert!(
            single
                .executed()
                .any(|c| c.graph == name && c.outcome.is_ok()),
            "no executed cell for generator {name}"
        );
    }
    for name in ["adaptive-heaviest", "eclipse(v=0)"] {
        assert!(
            single
                .executed()
                .any(|c| c.adversary == name && c.outcome.is_ok()),
            "no executed cell for adversary {name}"
        );
    }
    // The uncompiled baseline is demonstrably breakable by the new
    // adversaries somewhere in the grid (that's what makes them adversaries).
    assert!(
        single.cells.iter().any(|c| {
            (c.adversary == "adaptive-heaviest" || c.adversary == "eclipse(v=0)")
                && c.compiler == "uncompiled"
                && matches!(&c.outcome, Ok(r) if r.agrees_with_fault_free() == Some(false))
        }),
        "new adversaries should corrupt at least one uncompiled cell"
    );
}

/// The rate compiler's rewind counter flows through the typed notes channel:
/// a bursty adversary forces rewinds, and the campaign can assert on them.
#[test]
fn rewind_notes_are_assertable_through_the_campaign() {
    let report = Campaign::new(9)
        .graphs(vec![GraphSpec::new("K14", generators::complete(14))])
        .adversaries(vec![AdversarySpec::new(
            "burst",
            AdversaryRole::Byzantine,
            CorruptionBudget::RoundErrorRate { total: 200 },
            |_| Box::new(BurstAdversary::new(40, 4, 12, 9)),
        )])
        .compilers(vec![CompilerSpec::of(RewindAdapter::new(1, 3))])
        .payload(|g| Box::new(LeaderElection::new(g.clone())) as BoxedAlgorithm)
        .repetitions(2)
        .threads(2)
        .run();

    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        let run = cell.outcome.as_ref().expect("rewind cell completed");
        assert_eq!(run.agrees_with_fault_free(), Some(true));
        match run.notes {
            CompilerNotes::Rewind {
                rewinds,
                committed_rounds,
                completed,
                ..
            } => {
                assert!(completed);
                assert_eq!(committed_rounds, run.payload_rounds);
                assert!(rewinds >= 1, "the burst must force at least one rewind");
                assert_eq!(run.notes.rewinds(), Some(rewinds));
            }
            ref other => panic!("expected rewind notes, got {other:?}"),
        }
    }
    let summaries = report.summaries();
    assert!(
        summaries[0]
            .stat("rewinds")
            .expect("rewind notes aggregated")
            .min
            >= 1.0
    );
}
