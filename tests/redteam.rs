//! Adversary-synthesis acceptance tests: the checked-in red-team spec is
//! golden (canonical bytes, pinned to its in-code twin), the search breaks
//! the tree-packing v1 frontier within budget and shrinks the failure to a
//! minimal replayable counterexample, v2 resists the same grid where v1
//! falls, and trajectories are byte-identical across thread counts and
//! shard/resume accumulation.

use mobile_congest::graphs::{GraphDef, PackingVersion};
use mobile_congest::harness::spec::{adversary_from_json, adversary_to_json, PayloadDef};
use mobile_congest::harness::{json, Campaign, CampaignSpec};
use mobile_congest::redteam::{
    counterexample_spec, parse_trajectory, trajectory, unit_line, BudgetSpec, RedTeam, RedTeamSpec,
    SearchSpec, SearchStrategy, TargetSpec,
};
use mobile_congest::scenario::matrix::AdversaryDef;
use mobile_congest::scenario::CompilerDef;
use mobile_congest::sim::adversary::CorruptionMode;

fn frontier_text() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/redteam-v1-frontier.json"
    );
    std::fs::read_to_string(path).expect("specs/redteam-v1-frontier.json is checked in")
}

/// The PR-3/PR-5 frontier cell as a red-team target: sparse small world ×
/// tree-packing v1.  `f: 1` at the compiler, so a budget-2 synthesized
/// schedule is outside what v1 promises to correct — the search's job is to
/// find a concrete witness and the shrinker's job is to cut it down.
fn frontier_target(packing: PackingVersion) -> TargetSpec {
    TargetSpec {
        graph: GraphDef::watts_strogatz(24, 6, 0.2, 23062),
        compiler: CompilerDef::TreePacking {
            f: 1,
            trees: None,
            seed: 5,
            packing,
        },
        payload: PayloadDef::FloodBroadcast {
            source: 0,
            value: 4242,
        },
        seed: 2024,
        mode: CorruptionMode::FlipLowBit,
    }
}

/// The in-code twin of `specs/redteam-v1-frontier.json`.
fn frontier_spec() -> RedTeamSpec {
    RedTeamSpec {
        search: SearchSpec {
            seed: 2024,
            chains: 6,
            steps: 40,
            strategy: SearchStrategy::Evolve,
        },
        budget: BudgetSpec { f: 2, rounds: 4 },
        targets: vec![frontier_target(PackingVersion::V1Greedy)],
    }
}

#[test]
fn checked_in_frontier_spec_is_golden() {
    let text = frontier_text();
    let spec = RedTeamSpec::from_json(&text).expect("checked-in red-team spec parses");
    // parse(format(spec)) == spec, the file IS the canonical form, and the
    // file pins the in-code twin the other tests run against.
    assert_eq!(RedTeamSpec::from_json(&spec.to_json()).unwrap(), spec);
    assert_eq!(
        spec.to_json(),
        text,
        "specs/redteam-v1-frontier.json must stay in canonical to_json form"
    );
    assert_eq!(spec, frontier_spec());
}

/// The headline acceptance: against tree-packing v1 on the frontier small
/// world, the search finds a failing schedule well inside the eval budget,
/// and the shrinker reduces it to at most 3 edges per round and at most half
/// the synthesized cycle length — and the exported one-cell campaign spec
/// replays the failure deterministically.
#[test]
fn search_breaks_v1_frontier_and_shrinks_to_a_replayable_minimum() {
    let spec = frontier_spec();
    let team = RedTeam::from_spec(&spec).unwrap().threads(2);
    // Unit 0 = target 0 × chain 0; every unit is a pure function of the spec
    // and its index, so one unit is a faithful sample of the campaign.
    let outcome = &team.run_units(&[0])[0];
    assert!(
        outcome.found_at.is_some(),
        "search chain 0 no longer breaks tree-packing v1 on the frontier cell"
    );
    assert!(
        outcome.search_evals <= 500,
        "search took {} evals, budget is 500",
        outcome.search_evals
    );
    let ce = outcome.counterexample.as_ref().unwrap();
    assert!(ce.fitness.is_failure());
    assert!(
        ce.adversary.max_edges_per_round() <= 3,
        "shrunk schedule still uses {} edges in one round",
        ce.adversary.max_edges_per_round()
    );
    assert!(
        ce.adversary.rounds() <= spec.budget.rounds / 2,
        "shrunk schedule still cycles over {} rounds (budget was {})",
        ce.adversary.rounds(),
        spec.budget.rounds
    );

    // The exported spec replays the failure through the ordinary campaign
    // pipeline: same seed derivation, same verdict.
    let ce_spec = counterexample_spec(&spec.targets[0], &ce.graph, &ce.adversary);
    assert_eq!(
        CampaignSpec::from_json(&ce_spec.to_json()).unwrap(),
        ce_spec,
        "counterexample spec must round-trip through JSON"
    );
    let replay = Campaign::from_spec(&ce_spec).unwrap().threads(1).run();
    let run = replay.cells[0].outcome.as_ref().expect("replay cell runs");
    assert_eq!(
        run.agrees_with_fault_free(),
        Some(false),
        "replaying the minimized counterexample must reproduce the failure"
    );

    // And the whole unit is deterministic: a re-run serializes byte-identically.
    let again = &team.run_units(&[0])[0];
    assert_eq!(unit_line(&spec, outcome), unit_line(&spec, again));
}

/// The regression pin the synthesis loop exists for: on the single-round
/// `f = 1` grid — one corrupted edge, repeated every round — the search
/// breaks tree-packing v1 but finds **nothing** against v2 with the same
/// seeds, budget and effort.  If v2 ever regresses into this grid, or a
/// future packing change un-breaks v1's baseline, this test moves first.
#[test]
fn single_round_grid_separates_packing_v1_from_v2() {
    let search = SearchSpec {
        seed: 2024,
        chains: 2,
        steps: 40,
        strategy: SearchStrategy::Evolve,
    };
    let budget = BudgetSpec { f: 1, rounds: 1 };

    let v1 = RedTeamSpec {
        search: search.clone(),
        budget: budget.clone(),
        targets: vec![frontier_target(PackingVersion::V1Greedy)],
    };
    let v1_outcomes = RedTeam::from_spec(&v1).unwrap().threads(2).run();
    assert!(
        v1_outcomes.iter().all(|o| o.counterexample.is_some()),
        "every chain used to break v1 on the single-round grid"
    );
    for outcome in &v1_outcomes {
        let ce = outcome.counterexample.as_ref().unwrap();
        assert_eq!(ce.adversary.rounds(), 1);
        assert_eq!(ce.adversary.total_edges(), 1, "one corrupted edge suffices");
    }

    let v2 = RedTeamSpec {
        search,
        budget,
        targets: vec![frontier_target(PackingVersion::V2Augmented)],
    };
    let v2_outcomes = RedTeam::from_spec(&v2).unwrap().threads(2).run();
    for outcome in &v2_outcomes {
        assert!(
            outcome.found_at.is_none() && outcome.counterexample.is_none(),
            "tree-packing v2 regressed: chain {} found a single-edge cyclic failure",
            outcome.chain
        );
    }
}

#[test]
fn checked_in_minimal_counterexample_is_golden_and_replays_to_disagreement() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/redteam-minimal-example.json"
    );
    let text =
        std::fs::read_to_string(path).expect("specs/redteam-minimal-example.json is checked in");
    let spec = CampaignSpec::from_json(&text).expect("minimal example parses");
    assert_eq!(
        spec.to_json(),
        text,
        "specs/redteam-minimal-example.json must stay in canonical to_json form"
    );
    let report = Campaign::from_spec(&spec).unwrap().threads(1).run();
    assert_eq!(report.cells.len(), 1);
    let run = report.cells[0].outcome.as_ref().expect("the cell runs");
    assert_eq!(
        run.agrees_with_fault_free(),
        Some(false),
        "the checked-in single-edge counterexample must still break v1"
    );
}

#[test]
fn synthesized_adversary_json_round_trips_and_defaults_mode() {
    let def = AdversaryDef::Synthesized {
        schedule: vec![vec![2, 5], vec![], vec![7]],
        mode: CorruptionMode::Drop,
    };
    let encoded = adversary_to_json(&def);
    let parsed = adversary_from_json(&json::parse(&encoded).unwrap()).unwrap();
    assert_eq!(parsed, def);

    // An omitted mode defaults to flip-low-bit, the minimal hard-to-detect
    // corruption the search aims for.
    let omitted = json::parse(r#"{"kind":"synthesized","schedule":[[1,2]]}"#).unwrap();
    assert_eq!(
        adversary_from_json(&omitted).unwrap(),
        AdversaryDef::Synthesized {
            schedule: vec![vec![1, 2]],
            mode: CorruptionMode::FlipLowBit,
        }
    );
}

/// A cheap all-chains spec for the determinism tests: the uncompiled
/// baseline on a small complete graph, which every chain breaks instantly.
fn tiny_spec() -> RedTeamSpec {
    RedTeamSpec {
        search: SearchSpec {
            seed: 11,
            chains: 4,
            steps: 2,
            strategy: SearchStrategy::Evolve,
        },
        budget: BudgetSpec { f: 1, rounds: 2 },
        targets: vec![TargetSpec {
            graph: GraphDef::complete(6),
            compiler: CompilerDef::Uncompiled,
            payload: PayloadDef::FloodBroadcast {
                source: 0,
                value: 99,
            },
            seed: 3,
            mode: CorruptionMode::FlipLowBit,
        }],
    }
}

fn trajectory_at(spec: &RedTeamSpec, threads: usize) -> String {
    let team = RedTeam::from_spec(spec).unwrap().threads(threads);
    let lines: Vec<(usize, String)> = team
        .run()
        .iter()
        .map(|o| (o.unit, unit_line(spec, o)))
        .collect();
    trajectory(spec, &lines)
}

#[test]
fn trajectories_are_byte_identical_across_threads_and_shard_resume() {
    let spec = tiny_spec();
    let reference = trajectory_at(&spec, 1);

    // Same bytes at any thread count.
    for threads in [2, 8] {
        assert_eq!(
            trajectory_at(&spec, threads),
            reference,
            "trajectory diverged at {threads} threads"
        );
    }

    // Two shards, accumulated the way `--resume` does (parse the kept file,
    // append the new shard's lines, reassemble), equal the one-shot run.
    let mut kept: Vec<(usize, String)> = Vec::new();
    for index in 0..2 {
        let team = RedTeam::from_spec(&spec)
            .unwrap()
            .threads(2)
            .shard(index, 2);
        let fresh: Vec<(usize, String)> = team
            .run()
            .iter()
            .map(|o| (o.unit, unit_line(&spec, o)))
            .collect();
        // Round-trip through the file format, as the CLI does between runs.
        let file = trajectory(&spec, &[kept, fresh].concat());
        kept = parse_trajectory(&file, &spec.fingerprint()).unwrap();
    }
    assert_eq!(trajectory(&spec, &kept), reference);
}
