//! Integration tests for the campaign server (`mobile_congest::campaignd`):
//! the determinism contract (a server-run campaign is byte-identical to the
//! one-shot CLI run), crash recovery with zero re-execution, cancel/resume,
//! the typed API errors, and the cross-job query endpoint.
//!
//! Every test starts a real server on `127.0.0.1:0` and talks to it over
//! real sockets through the typed [`Client`] — the same path `campaignctl`
//! and CI use.

use mobile_congest::campaignd::api_types::QueryParams;
use mobile_congest::campaignd::client::Client;
use mobile_congest::campaignd::server::{shard_batches, start, Config, Handle};
use mobile_congest::campaignd::store::{FsStore, Store};
use mobile_congest::campaignd::JobState;
use mobile_congest::harness::report::{trajectory_header, CellRecord, ReportRecord};
use mobile_congest::harness::{Campaign, CampaignSpec};
use std::path::PathBuf;

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/e16-small.json");
    std::fs::read_to_string(path).expect("specs/e16-small.json is checked in")
}

/// A fresh per-test data dir under the system temp root.
fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Start a server with `workers` worker threads on an ephemeral port and
/// hand back its handle plus a client bound to it.
fn server_on(data_dir: &PathBuf, workers: usize) -> (Handle, Client) {
    let mut config = Config::new(data_dir);
    config.workers = workers;
    config.quiet = true;
    let handle = start(config).expect("server starts");
    let client = Client::new(handle.addr().to_string());
    (handle, client)
}

#[test]
fn server_run_is_byte_identical_to_the_one_shot_run_and_query_sees_it() {
    let text = spec_text();
    let spec = CampaignSpec::from_json(&text).unwrap();
    let expected = ReportRecord::of(&Campaign::from_spec(&spec).unwrap().threads(1).run());

    let data_dir = temp_data_dir("determinism");
    let (_handle, client) = server_on(&data_dir, 1);
    let submitted = client.submit(&text).unwrap();
    assert_eq!(submitted.fingerprint, spec.fingerprint());
    assert_eq!(submitted.cells_total, spec.cell_count());

    let done = client.watch(&submitted.fingerprint, 25, |_| {}).unwrap();
    assert_eq!(done.state, JobState::Done);
    assert_eq!(done.cells_done, spec.cell_count());

    // The determinism contract: the server's merged record report is
    // byte-identical — same fingerprint, same summary and trajectory bytes
    // — to the one-shot in-process run.
    assert_eq!(
        done.report_fingerprint.as_deref(),
        Some(expected.fingerprint()).as_deref()
    );
    assert_eq!(
        client.summary(&done.fingerprint).unwrap(),
        expected.summary_jsonl()
    );
    let mut trajectory = trajectory_header(&spec);
    trajectory.push('\n');
    trajectory.push_str(&expected.cell_lines());
    assert_eq!(client.trajectory(&done.fingerprint).unwrap(), trajectory);

    // The status counters mirror the record's outcome tallies.
    let (executed, skipped, failed, disagreements) = expected.outcome_counts();
    assert_eq!(
        (done.executed, done.skipped, done.failed, done.disagreements),
        (executed, skipped, failed, disagreements)
    );

    // The query endpoint sees the finished job and honours its filters.
    let mut params = QueryParams::new("overhead", "p50");
    params.compiler = Some("uncompiled".to_string());
    let response = client.query(&params).unwrap();
    assert!(!response.rows.is_empty(), "query returned no rows");
    assert!(response.rows.iter().all(|r| r.compiler == "uncompiled"));
    assert!(response
        .rows
        .iter()
        .all(|r| r.job == done.fingerprint && r.value.is_finite()));

    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn killed_server_resumes_without_reexecuting_completed_cells() {
    let text = spec_text();
    let spec = CampaignSpec::from_json(&text).unwrap();
    let fingerprint = spec.fingerprint();
    let campaign = Campaign::from_spec(&spec).unwrap().threads(1);
    let total = campaign.cell_count();

    // What a crashed server would have left behind: the spec, a `running`
    // state, the even cells fully persisted, and a torn trailing line (a
    // partial write of cell 1 interrupted mid-append).
    let evens: Vec<usize> = (0..total).step_by(2).collect();
    let done_lines: Vec<String> = campaign
        .run_cells(&evens)
        .cells
        .iter()
        .map(|cell| CellRecord::of(cell).to_json())
        .collect();
    let data_dir = temp_data_dir("recovery");
    let store = FsStore::open(&data_dir).unwrap();
    store.put_spec(&fingerprint, &spec.to_json()).unwrap();
    store.set_state(&fingerprint, JobState::Running).unwrap();
    store.append_cells(&fingerprint, &done_lines).unwrap();
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(data_dir.join("jobs").join(&fingerprint).join("cells.log"))
            .unwrap();
        write!(log, "{{\"kind\":\"cell-record\",\"index\":1,\"gra").unwrap();
    }
    drop(store);

    // Restart: recovery must requeue exactly the odd cells (the torn cell
    // never persisted, so it re-runs) and never touch the persisted evens.
    let (handle, client) = server_on(&data_dir, 1);
    let done = client.watch(&fingerprint, 25, |_| {}).unwrap();
    assert_eq!(done.state, JobState::Done);
    assert_eq!(done.cells_done, total);
    assert_eq!(
        handle.executed(),
        total - evens.len(),
        "a recovered server must execute exactly the missing cells"
    );

    // And the resumed result is still byte-identical to the one-shot run.
    let expected = ReportRecord::of(&campaign.run());
    assert_eq!(done.report_fingerprint, Some(expected.fingerprint()));
    assert_eq!(
        client.summary(&fingerprint).unwrap(),
        expected.summary_jsonl()
    );

    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn cancel_parks_a_job_and_resubmitting_resumes_it() {
    let text = spec_text();
    // No workers: submissions queue durably but nothing executes, so the
    // cancel/resubmit transitions are fully deterministic.
    let data_dir = temp_data_dir("cancel");
    let (handle, client) = server_on(&data_dir, 0);

    let submitted = client.submit(&text).unwrap();
    assert_eq!(submitted.state, JobState::Queued);
    assert_eq!(submitted.cells_done, 0);

    let cancelled = client.cancel(&submitted.fingerprint).unwrap();
    assert_eq!(cancelled.state, JobState::Cancelled);
    // Cancel is idempotent and the job stays listed.
    assert_eq!(
        client.cancel(&submitted.fingerprint).unwrap().state,
        JobState::Cancelled
    );
    let list = client.jobs().unwrap();
    assert_eq!(list.jobs.len(), 1);
    assert_eq!(list.jobs[0].state, JobState::Cancelled);

    // Resubmitting the same spec resumes the cancelled job in place.
    let resumed = client.submit(&text).unwrap();
    assert_eq!(resumed.fingerprint, submitted.fingerprint);
    assert_eq!(resumed.state, JobState::Queued);
    assert_eq!(handle.executed(), 0, "no workers were started");

    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn api_errors_are_typed_and_named() {
    let data_dir = temp_data_dir("errors");
    let (_handle, client) = server_on(&data_dir, 0);

    // Unknown job: a 404 whose message names the fingerprint.
    let err = client.status("deadbeefdeadbeef").unwrap_err();
    assert!(err.contains("404"), "got: {err}");
    assert!(err.contains("deadbeefdeadbeef"), "got: {err}");

    // A malformed spec is refused with a 400 before anything is stored.
    let (status, body) = client.request("POST", "/jobs", Some("{not json")).unwrap();
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("invalid spec"), "body: {body}");
    assert!(client.jobs().unwrap().jobs.is_empty());

    // Unknown routes and wrong methods both land on the typed 404.
    let (status, _) = client.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, body) = client.request("PUT", "/jobs", None).unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("no route"), "body: {body}");

    // Health check works without any jobs.
    let (status, body) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\":true"));

    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn server_batches_are_exactly_the_cli_shard_partition() {
    let spec = CampaignSpec::from_json(&spec_text()).unwrap();
    let pending = Campaign::from_spec(&spec).unwrap().cell_indices();
    for of in [1usize, 3, 7] {
        let batches = shard_batches(&pending, of);
        let expected: Vec<Vec<usize>> = (0..of)
            .map(|i| {
                Campaign::from_spec(&spec)
                    .unwrap()
                    .shard(i, of)
                    .cell_indices()
            })
            .filter(|s| !s.is_empty())
            .collect();
        assert_eq!(batches, expected, "of={of}");
    }
}
