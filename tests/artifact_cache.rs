//! Acceptance tests for the campaign compile-artifact cache: cells sharing a
//! `(GraphDef, CompilerDef)` pair hit the cache across seeds and
//! adversaries, distinct defs (down to the packing version) miss, and
//! campaign reports are byte-identical with the cache on or off at any
//! thread count.

use mobile_congest::harness::{ArtifactCache, Campaign, CampaignSpec};
use proptest::prelude::*;

fn e16_small_spec() -> CampaignSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/e16-small.json");
    let text = std::fs::read_to_string(path).expect("specs/e16-small.json is checked in");
    CampaignSpec::from_json(&text).expect("checked-in spec parses")
}

fn spec_of(json: &str) -> CampaignSpec {
    CampaignSpec::from_json(json).expect("inline test spec parses")
}

#[test]
fn cells_sharing_a_graph_compiler_pair_hit_the_cache() {
    // 3 graphs × 3 adversaries × 3 compilers × 2 repetitions: each of the
    // 9 (graph, compiler) pairs is looked up 6 times (3 adversaries × 2
    // seed repetitions), so exactly one miss per pair and hits for the rest
    // — including the pairs whose `prepare` fails (the clique compiler off
    // the complete graph), which cache their typed error.
    let spec = e16_small_spec();
    let campaign = Campaign::from_spec(&spec).unwrap().threads(4);
    let report = campaign.run();
    assert_eq!(report.cells.len(), 54);

    let cache = campaign
        .artifact_cache_handle()
        .expect("spec-built campaigns default to a cache");
    assert_eq!(cache.misses(), 9, "one prepare per (graph, compiler) pair");
    assert_eq!(cache.hits(), 54 - 9);
    assert_eq!(cache.len(), 9);
    assert!(cache.hit_rate() > 0.8);
}

#[test]
fn distinct_packing_versions_are_distinct_cache_entries() {
    // Same graph, same f/seed — only the packing version differs. The def
    // JSON keys must keep the two apart: v1 and v2 artifacts hold different
    // tree packings.
    let spec = spec_of(
        r#"{
  "kind": "campaign-spec",
  "seed": 11,
  "repetitions": 2,
  "grid": {
    "graphs": [{"family":"watts-strogatz","n":24,"k":6,"beta":0.2,"seed":23062}],
    "adversaries": [{"kind":"random-mobile","f":1}],
    "compilers": [
      {"id":"tree-packing","f":1,"seed":5,"packing":"v1"},
      {"id":"tree-packing","f":1,"seed":5,"packing":"v2"}
    ],
    "payload": {"kind":"flood-broadcast","source":0,"value":7}
  }
}"#,
    );
    let campaign = Campaign::from_spec(&spec).unwrap().threads(2);
    let report = campaign.run();
    assert_eq!(report.cells.len(), 4);
    assert!(report.cells.iter().all(|c| c.outcome.is_ok()));

    let cache = campaign.artifact_cache_handle().unwrap();
    assert_eq!(
        cache.misses(),
        2,
        "v1 and v2 must prepare separately, never share an entry"
    );
    assert_eq!(cache.hits(), 2);
}

#[test]
fn shared_cache_carries_across_campaign_runs() {
    // The campaignd usage: one cache attached to several spec-built
    // campaigns (daemon batches) — the second run's preparations are all
    // hits.
    let spec = e16_small_spec();
    let shared = std::sync::Arc::new(ArtifactCache::new());
    let first = Campaign::from_spec(&spec)
        .unwrap()
        .artifact_cache(std::sync::Arc::clone(&shared))
        .threads(2);
    let second = Campaign::from_spec(&spec)
        .unwrap()
        .artifact_cache(std::sync::Arc::clone(&shared))
        .threads(2);
    let a = first.run();
    let misses_after_first = shared.misses();
    let b = second.run();
    assert_eq!(misses_after_first, 9);
    assert_eq!(shared.misses(), 9, "second campaign prepares nothing");
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn traced_campaigns_bypass_the_cache() {
    // `prepare` emits packing spans into the cell event stream; a cache hit
    // would elide them from all but the first cell, so traced runs must not
    // consult the cache at all — and their fingerprints must still match
    // between a defaulted and an explicitly disabled cache.
    let spec = e16_small_spec();
    let campaign = Campaign::from_spec(&spec)
        .unwrap()
        .threads(2)
        .trace(mobile_congest::obs::TraceSpec::ring());
    let traced = campaign.run();
    let cache = campaign.artifact_cache_handle().unwrap();
    assert_eq!(cache.hits() + cache.misses(), 0, "no lookups while tracing");

    let untouched = Campaign::from_spec(&spec)
        .unwrap()
        .threads(2)
        .without_artifact_cache()
        .trace(mobile_congest::obs::TraceSpec::ring())
        .run();
    assert_eq!(traced.fingerprint(), untouched.fingerprint());
}

/// The determinism contract of the tentpole, checked for one campaign seed:
/// the report fingerprint is byte-identical with the cache on or off, at 1,
/// 2 and 8 worker threads.
fn assert_cache_is_transparent(seed: u64) {
    let mut spec = e16_small_spec();
    spec.seed = seed;
    let reference = Campaign::from_spec(&spec)
        .unwrap()
        .without_artifact_cache()
        .threads(1)
        .run();
    for threads in [1usize, 2, 8] {
        let cached = Campaign::from_spec(&spec).unwrap().threads(threads).run();
        assert_eq!(
            cached.fingerprint(),
            reference.fingerprint(),
            "cached run diverged at {threads} threads (campaign seed {seed})"
        );
        let uncached = Campaign::from_spec(&spec)
            .unwrap()
            .without_artifact_cache()
            .threads(threads)
            .run();
        assert_eq!(
            uncached.fingerprint(),
            reference.fingerprint(),
            "uncached run diverged at {threads} threads (campaign seed {seed})"
        );
    }
}

proptest! {
    // Each case runs seven full campaigns, so keep the case count modest;
    // the seeds vary the whole per-cell RNG story (adversary choices, key
    // schedules, corruption draws).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_and_uncached_reports_are_byte_identical(seed in any::<u32>()) {
        assert_cache_is_transparent(seed as u64);
    }
}
