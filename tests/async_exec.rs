//! Acceptance tests for the asynchronous execution runtime at the umbrella
//! level: the parity contract (the async executor on the zero-delay in-order
//! schedule reproduces the lockstep engine byte-for-byte across the whole
//! topology × adversary zoo grid) and the determinism property (the report is
//! a pure function of the schedule and the seed — host thread count and
//! repetition never change a byte).

use mobile_congest::graphs::Graph;
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::scenario::matrix::{self, run_cell, CompilerSpec};
use mobile_congest::scenario::{
    AsyncExecutor, BoxedAlgorithm, CrashWindow, LatencyModel, ScheduleDef, Uncompiled,
};
use proptest::prelude::*;

fn payload(g: &Graph) -> BoxedAlgorithm {
    Box::new(FloodBroadcast::new(g.clone(), 0, 77))
}

/// One stable per-cell seed per zoo coordinate; any mixing works, it only
/// has to be the same for the lockstep and the async run.
fn zoo_seed(gi: usize, ai: usize) -> u64 {
    0x5EED ^ ((gi as u64) << 16) ^ ai as u64
}

/// The tentpole's acceptance criterion: on `ScheduleDef::synchronous()` the
/// async executor and the lockstep round engine produce identical outputs,
/// identical metrics (including the corruption counters fed by the
/// adversary's per-round history) and identical eavesdropper views, for
/// every topology in the zoo under every adversary in the zoo.
#[test]
fn synchronous_async_matches_lockstep_across_the_zoo_grid() {
    let graphs = matrix::graph_zoo(42);
    let adversaries = matrix::adversary_zoo(1);
    let mut compared = 0usize;
    for (gi, gspec) in graphs.iter().enumerate() {
        for (ai, aspec) in adversaries.iter().enumerate() {
            let seed = zoo_seed(gi, ai);
            let lockstep = run_cell(gspec, aspec, &CompilerSpec::of(Uncompiled), &payload, seed)
                .expect("uncompiled zoo cells always validate");
            let asynchronous = run_cell(
                gspec,
                aspec,
                &CompilerSpec::of(AsyncExecutor::new(ScheduleDef::synchronous())),
                &payload,
                seed,
            )
            .expect("the synchronous schedule validates everywhere");

            let at = format!("{} x {}", gspec.name, aspec.name);
            assert_eq!(asynchronous.outputs, lockstep.outputs, "outputs at {at}");
            assert_eq!(
                format!("{:?}", asynchronous.metrics),
                format!("{:?}", lockstep.metrics),
                "metrics at {at}"
            );
            assert_eq!(
                format!("{:?}", asynchronous.view),
                format!("{:?}", lockstep.view),
                "eavesdropper view at {at}"
            );
            assert_eq!(asynchronous.network_rounds, lockstep.network_rounds);
            compared += 1;
        }
    }
    assert_eq!(compared, 8 * 7, "the zoo grid shrank — extend this test");
}

// Determinism property: for arbitrary seeds and schedule parameters the
// whole report (outputs, diagnostics, metrics, corruption counters) is
// byte-identical at 1, 2 and 8 worker threads — and a repeated run at the
// reference thread count reproduces it again.  (The vendored proptest macro
// does not accept doc comments on the test item, hence the plain comment.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn async_report_is_identical_at_1_2_and_8_hosts_and_across_reruns(
        seed in any::<u64>(),
        ticks in 0u64..3,
        reorder in 0u64..3,
        crash in any::<bool>(),
    ) {
        let g = mobile_congest::graphs::generators::grid(3, 3);
        let gspec = matrix::GraphSpec::new("grid3x3", g);
        let aspec = matrix::AdversaryDef::RandomMobile { f: 1 }.to_spec();
        let mut schedule = ScheduleDef::synchronous()
            .with_latency(LatencyModel::Fixed { ticks })
            .with_reorder_window(reorder);
        if crash {
            schedule = schedule.with_crash(CrashWindow { node: 2, from: 1, until: 4 });
        }

        let run = |hosts: usize| {
            let report = run_cell(
                &gspec,
                &aspec,
                &CompilerSpec::of(AsyncExecutor::new(schedule.clone()).with_hosts(hosts)),
                &payload,
                seed,
            )
            .expect("fixed-latency schedules validate on grid3x3");
            format!("{report:?}")
        };

        let reference = run(1);
        prop_assert_eq!(&run(2), &reference, "2 hosts diverged from 1");
        prop_assert_eq!(&run(8), &reference, "8 hosts diverged from 1");
        prop_assert_eq!(&run(1), &reference, "a same-seed rerun diverged");
    }
}
