//! Scenario-as-data acceptance tests: the checked-in spec round-trips
//! through the hand-rolled JSON layer, a spec-built campaign is
//! byte-identical to the equivalent hand-built one at any thread count, and
//! the union of all shards equals the unsharded run.

use mobile_congest::graphs::generators;
use mobile_congest::harness::{Campaign, CampaignReport, CampaignSpec};
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::scenario::matrix::{AdversarySpec, CompilerSpec, GraphSpec};
use mobile_congest::scenario::{BoxedAlgorithm, CliqueAdapter, StaticToMobileAdapter, Uncompiled};
use mobile_congest::sim::adversary::{
    AdversaryRole, CorruptionBudget, CorruptionMode, GreedyHeaviest, RandomMobile,
};

fn checked_in_spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/e16-small.json");
    std::fs::read_to_string(path).expect("specs/e16-small.json is checked in")
}

/// The hand-built twin of `specs/e16-small.json`: the same grid constructed
/// through the pre-spec API (direct generators, adapter values, zoo-style
/// adversary closures).
fn hand_built() -> Campaign {
    Campaign::new(2024)
        .graphs(vec![
            GraphSpec::new("K8", generators::complete(8)),
            GraphSpec::new("circ(10,2)", generators::circulant(10, 2)),
            GraphSpec::new("torus3x4", generators::torus(3, 4)),
        ])
        .adversaries(vec![
            AdversarySpec::new(
                "random-mobile",
                AdversaryRole::Byzantine,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            ),
            AdversarySpec::new(
                "greedy-heaviest",
                AdversaryRole::Byzantine,
                CorruptionBudget::Mobile { f: 1 },
                |_| Box::new(GreedyHeaviest::new(1).with_mode(CorruptionMode::FlipLowBit)),
            ),
            AdversarySpec::new(
                "eavesdropper",
                AdversaryRole::Eavesdropper,
                CorruptionBudget::Mobile { f: 2 },
                |seed| Box::new(RandomMobile::new(2, seed)),
            ),
        ])
        .compilers(vec![
            CompilerSpec::of(Uncompiled),
            CompilerSpec::of(CliqueAdapter::new(1, 5)),
            CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
        ])
        .payload(|g| Box::new(FloodBroadcast::new(g.clone(), 0, 4242)) as BoxedAlgorithm)
        .repetitions(2)
}

#[test]
fn checked_in_spec_is_golden() {
    let text = checked_in_spec_text();
    let spec = CampaignSpec::from_json(&text).expect("checked-in spec parses");
    // parse(format(spec)) == spec …
    assert_eq!(CampaignSpec::from_json(&spec.to_json()).unwrap(), spec);
    // … and the checked-in file IS the canonical format, byte for byte, so
    // the fingerprint of the file and of the parsed spec can never drift.
    assert_eq!(
        spec.to_json(),
        text,
        "specs/e16-small.json must stay in canonical to_json form"
    );
    assert_eq!(spec.cell_count(), 3 * 3 * 3 * 2);
}

#[test]
fn spec_built_campaign_matches_hand_built_at_any_thread_count() {
    let spec = CampaignSpec::from_json(&checked_in_spec_text()).unwrap();
    let reference = hand_built().threads(1).run();

    for threads in [1, 8] {
        let from_spec = Campaign::from_spec(&spec)
            .expect("checked-in spec resolves")
            .threads(threads)
            .run();
        assert_eq!(
            from_spec.fingerprint(),
            reference.fingerprint(),
            "spec path diverged from the hand-built campaign at {threads} threads"
        );
        assert_eq!(from_spec.to_jsonl(), reference.to_jsonl());
    }

    // The grid actually exercises all three outcomes.
    assert!(reference.skipped_count() > 0, "expected typed skips");
    assert!(reference.executed().count() > 0);
    assert!(reference.all_protected_cells_agree());
}

/// The CI quality gate's spec, pinned as a test: `specs/frontier-small-world.json`
/// A/Bs tree-packing v1 vs v2 on the PR-3 frontier cell (sparse small world ×
/// targeted heaviest-edge adversaries).  v1's failure stays pinned as the
/// baseline; v2 must fully correct every cell.  The CI pipeline runs the same
/// spec through the campaign CLI and greps the trajectory, so this test is
/// the local twin of the quality-gate step.
#[test]
fn frontier_spec_pins_v1_failure_and_v2_full_correction() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/frontier-small-world.json"
    );
    let text = std::fs::read_to_string(path).expect("specs/frontier-small-world.json checked in");
    let spec = CampaignSpec::from_json(&text).expect("frontier spec parses");
    assert_eq!(
        spec.to_json(),
        text,
        "specs/frontier-small-world.json must stay in canonical to_json form"
    );

    let report = Campaign::from_spec(&spec).unwrap().threads(2).run();
    assert_eq!(report.cells.len(), 2 * 2 * 3);
    assert_eq!(report.skipped_count(), 0, "every frontier cell validates");

    let mut v1_divergences = 0usize;
    for cell in &report.cells {
        let run = cell.outcome.as_ref().expect("frontier cells execute");
        if cell.compiler.ends_with("v1)") {
            if run.agrees_with_fault_free() == Some(false) {
                v1_divergences += 1;
            }
        } else {
            assert!(
                cell.compiler.ends_with("v2)"),
                "unexpected {}",
                cell.compiler
            );
            assert_eq!(
                run.agrees_with_fault_free(),
                Some(true),
                "v2 must survive {} (seed {})",
                cell.adversary,
                cell.seed
            );
            assert_eq!(run.notes.fully_corrected(), Some(true));
        }
    }
    assert!(
        v1_divergences > 0,
        "the v1 frontier baseline disappeared — update the spec and ROADMAP.md"
    );

    // The summary groups the CI gate greps: v2 groups report zero
    // disagreements and a fully_corrected mean of 1.
    for s in report.summaries() {
        if s.compiler.ends_with("v2)") {
            assert_eq!(s.disagreements, 0);
            assert_eq!(s.stat("fully_corrected").unwrap().mean, 1.0);
            assert_eq!(s.stat("packing_max_load").unwrap().max, 3.0);
        }
    }
}

/// The async CI gate's spec, pinned as a test: `specs/async-partial-sync.json`
/// runs the flood-broadcast payload through the asynchronous execution
/// runtime under delay, reorder and crash-recovery schedules on a small grid
/// and a circulant ring.  The CI pipeline runs the same spec through the
/// campaign CLI and greps the trajectory, so this test is the local twin of
/// the quality-gate step: every async cell completes (no node starves under
/// any schedule), and crash-recovery cells under the eavesdropper still
/// reach full agreement with the fault-free reference.
#[test]
fn async_spec_pins_completion_and_crash_recovery() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/async-partial-sync.json");
    let text = std::fs::read_to_string(path).expect("specs/async-partial-sync.json checked in");
    let spec = CampaignSpec::from_json(&text).expect("async spec parses");
    assert_eq!(
        spec.to_json(),
        text,
        "specs/async-partial-sync.json must stay in canonical to_json form"
    );
    assert_eq!(spec.cell_count(), 2 * 2 * 5 * 2);

    let report = Campaign::from_spec(&spec).unwrap().threads(2).run();
    assert_eq!(report.skipped_count(), 0, "every async cell validates");

    let mut crash_recoveries = 0usize;
    for cell in &report.cells {
        let run = cell.outcome.as_ref().expect("async cells execute");
        if cell.compiler.starts_with("async") {
            // The synchronizer must drive every node to termination under
            // every schedule — asynchrony delays rounds, it never starves
            // them.
            assert_eq!(
                run.notes.metrics().iter().find(|(k, _)| *k == "completed"),
                Some(&("completed", 1.0)),
                "{} on {} did not complete",
                cell.compiler,
                cell.graph
            );
        }
        if cell.adversary == "eavesdropper" {
            // An eavesdropper never rewrites payloads, so even the crashed
            // cells must fully recover and agree once the queue drains.
            assert_eq!(
                run.agrees_with_fault_free(),
                Some(true),
                "{} on {} diverged under a read-only adversary",
                cell.compiler,
                cell.graph
            );
            if cell.compiler.contains("crash") {
                crash_recoveries += 1;
            }
        }
    }
    assert!(
        crash_recoveries > 0,
        "the crash-recovery gate cells disappeared — update the spec and CI"
    );
}

#[test]
fn shard_union_equals_the_unsharded_run() {
    let spec = CampaignSpec::from_json(&checked_in_spec_text()).unwrap();
    let full = Campaign::from_spec(&spec).unwrap().threads(2).run();

    const SHARDS: usize = 3;
    let shard_reports: Vec<CampaignReport> = (0..SHARDS)
        .map(|i| {
            Campaign::from_spec(&spec)
                .unwrap()
                .threads(2)
                .shard(i, SHARDS)
                .run()
        })
        .collect();
    // Shards are disjoint and collectively exhaustive …
    let per_shard: Vec<usize> = shard_reports.iter().map(|r| r.cells.len()).collect();
    assert_eq!(per_shard.iter().sum::<usize>(), full.cells.len());
    assert!(per_shard.iter().all(|&n| n > 0), "every shard runs cells");
    // Summaries of a non-contiguous subset must group by grid cell, never
    // glue a repetition onto the preceding (different) cell's group.
    for report in &shard_reports {
        let summaries = report.summaries();
        let mut keys: Vec<usize> = report
            .cells
            .iter()
            .map(|c| c.index - c.repetition)
            .collect();
        keys.dedup();
        assert_eq!(summaries.len(), keys.len(), "one summary per grid cell");
        let (mut si, mut current) = (0usize, None);
        for cell in &report.cells {
            let key = cell.index - cell.repetition;
            if current != Some(key) {
                if current.is_some() {
                    si += 1;
                }
                current = Some(key);
            }
            let s = &summaries[si];
            assert_eq!(
                (s.graph.as_str(), s.adversary.as_str(), s.compiler.as_str()),
                (
                    cell.graph.as_str(),
                    cell.adversary.as_str(),
                    cell.compiler.as_str()
                ),
                "summary group mixed cells from different grid coordinates"
            );
        }
    }

    // … and merging them reproduces the unsharded run byte for byte.
    let merged = CampaignReport::merged(shard_reports);
    assert_eq!(merged.fingerprint(), full.fingerprint());
    assert_eq!(merged.to_jsonl(), full.to_jsonl());
}

#[test]
fn run_cells_reproduces_exactly_the_requested_subset() {
    let spec = CampaignSpec::from_json(&checked_in_spec_text()).unwrap();
    let campaign = Campaign::from_spec(&spec).unwrap().threads(2);
    let full = campaign.run();

    // An arbitrary subset (every fourth cell): same cells, same bytes.
    let subset: Vec<usize> = (0..spec.cell_count()).step_by(4).collect();
    let partial = campaign.run_cells(&subset);
    assert_eq!(partial.cells.len(), subset.len());
    for cell in &partial.cells {
        let twin = &full.cells[cell.index];
        assert_eq!(format!("{cell:?}"), format!("{twin:?}"));
    }
    // Out-of-range indices are ignored, not run.
    let clipped = campaign.run_cells(&[0, spec.cell_count() + 100]);
    assert_eq!(clipped.cells.len(), 1);
}
