//! Experiment harness: regenerates the quantitative claims of the paper
//! (EXPERIMENTS.md maps every table printed here to a theorem/lemma).
//!
//! The paper has no empirical tables of its own — every "figure" here is the
//! measurable shape of a theorem: round overheads, tolerated fault counts,
//! correctness of compiled vs. uncompiled runs, mismatch decay, packing
//! quality.  Every compiled execution is configured through the unified
//! `Scenario` pipeline; low-level primitives (unicast, broadcast, scheduler,
//! correction procedures) draw their validated `Network` from
//! `Scenario::…::network()`.  Run with `cargo bench` (the harness is plain
//! `main`, no criterion statistics are needed for discrete round counts).

use mobile_congest::compilers::resilient::{l0_threshold_correction, sparse_majority_correction};
use mobile_congest::compilers::secure::{
    mobile_secure_broadcast, mobile_secure_multicast, mobile_secure_unicast, UnicastInstance,
};
use mobile_congest::graphs::connectivity::{edge_connectivity, estimate_dtp, sweep_conductance};
use mobile_congest::graphs::generators;
use mobile_congest::graphs::tree_packing::{greedy_low_depth_packing, star_packing};
use mobile_congest::graphs::Graph;
use mobile_congest::harness::Campaign;
use mobile_congest::icoding::RsScheduler;
use mobile_congest::payloads::{FloodBroadcast, LeaderElection, TokenDissemination};
use mobile_congest::scenario::{
    BoxedAlgorithm, CliqueAdapter, Compiler, CongestionSensitiveAdapter, CycleCoverAdapter,
    ExpanderAdapter, RewindAdapter, RunReport, Scenario, StaticToMobileAdapter, TreePackingAdapter,
    Uncompiled,
};
use mobile_congest::sim::adversary::{
    AdversaryRole, BurstAdversary, CorruptionBudget, CorruptionMode, GreedyHeaviest, RandomMobile,
};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::traffic::Traffic;
use mobile_congest::sketch::{L0Sampler, SketchRandomness, SparseRecovery};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One compiled byzantine run through the pipeline.
fn byz_scenario<C, P, A>(g: &Graph, f: usize, seed: u64, compiler: C, payload: P) -> RunReport
where
    C: Compiler + 'static,
    P: Fn(&Graph) -> A + 'static,
    A: mobile_congest::sim::CongestAlgorithm + Send + 'static,
{
    let pg = g.clone();
    Scenario::on(g.clone())
        .payload(move || payload(&pg))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, seed),
            CorruptionBudget::Mobile { f },
        )
        .seed(seed)
        .compiled_with(compiler)
        .run()
        .expect("byzantine scenario failed validation")
}

/// One compiled eavesdropper run through the pipeline.
fn eaves_scenario<C, P, A>(g: &Graph, f: usize, seed: u64, compiler: C, payload: P) -> RunReport
where
    C: Compiler + 'static,
    P: Fn(&Graph) -> A + 'static,
    A: mobile_congest::sim::CongestAlgorithm + Send + 'static,
{
    let pg = g.clone();
    Scenario::on(g.clone())
        .payload(move || payload(&pg))
        .adversary(
            AdversaryRole::Eavesdropper,
            RandomMobile::new(f, seed),
            CorruptionBudget::Mobile { f },
        )
        .seed(seed)
        .compiled_with(compiler)
        .run()
        .expect("eavesdropper scenario failed validation")
}

/// A validated network for the low-level primitives (unicast, broadcast,
/// scheduler, correction), replacing hand-wired `Network::new`.
fn primitive_net(g: &Graph, role: AdversaryRole, f: usize, seed: u64) -> Network {
    Scenario::on(g.clone())
        .adversary(
            role,
            RandomMobile::new(f, seed),
            CorruptionBudget::Mobile { f },
        )
        .seed(seed)
        .network()
        .expect("network configuration failed validation")
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// E1 — Theorem 2.1: bit extraction yields exactly n−t hidden keys.
fn e1_bit_extraction() {
    header("E1", "Vandermonde bit extraction (Thm 2.1)");
    println!("{:>6} {:>6} {:>10} {:>12}", "n", "t", "keys", "micros");
    for &(n, t) in &[(16usize, 4usize), (64, 16), (128, 64), (256, 32)] {
        let ex = mobile_congest::codes::BitExtractor::<mobile_congest::codes::Gf2_16>::new(n, t)
            .unwrap();
        let pads: Vec<_> = (0..n as u64)
            .map(mobile_congest::codes::Gf2_16::from_u64)
            .collect();
        let t0 = Instant::now();
        let keys = ex.extract(&pads).unwrap();
        println!(
            "{:>6} {:>6} {:>10} {:>12}",
            n,
            t,
            keys.len(),
            t0.elapsed().as_micros()
        );
        assert_eq!(keys.len(), n - t);
    }
    use mobile_congest::codes::field::Field;
    let _ = mobile_congest::codes::Gf2_16::ZERO;
}

/// E2 — Theorem 1.2: compiled rounds 2r+t and tolerated mobility f'.
fn e2_static_to_mobile() {
    header("E2", "static→mobile secure simulation (Thm 1.2)");
    println!("{}", RunReport::table_header());
    for (name, g) in [
        ("cycle16", generators::cycle(16)),
        ("grid4x4", generators::grid(4, 4)),
        ("K12", generators::complete(12)),
    ] {
        for &t in &[2usize, 8, 32] {
            let report = eaves_scenario(&g, 2, 3, StaticToMobileAdapter::new(t, 2, 7), |g| {
                FloodBroadcast::new(g.clone(), 0, 99)
            });
            let compiler = mobile_congest::compilers::secure::StaticToMobileCompiler::new(t, 2, 7);
            println!(
                "{}   [{name}, t={t}: key rounds {}, f'(f_static=4) = {}]",
                report.table_row(),
                report.network_rounds - report.payload_rounds,
                compiler.mobile_tolerance(4, report.payload_rounds)
            );
        }
    }
}

/// E3 — Lemma A.3: mobile-secure unicast rounds ≈ O(D), congestion O(1); multicast O(D+R).
fn e3_secure_unicast() {
    header("E3", "mobile-secure unicast / multicast (Lemma A.3)");
    println!(
        "{:>10} {:>4} {:>8} {:>10} {:>10}",
        "graph", "D", "rounds", "congestion", "ok"
    );
    for &(name, ref g, d) in &[
        ("path16", generators::path(16), 15usize),
        ("cycle20", generators::cycle(20), 10),
        ("grid5x5", generators::grid(5, 5), 8),
        ("K12", generators::complete(12), 1),
    ] {
        let mut net = primitive_net(g, AdversaryRole::Eavesdropper, 1, 5);
        let rep = mobile_secure_unicast(&mut net, 0, g.node_count() - 1, 0xABCDEF, 9);
        println!(
            "{:>10} {:>4} {:>8} {:>10} {:>10}",
            name,
            d,
            rep.rounds,
            rep.congestion,
            rep.recovered[0] == Some(0xABCDEF)
        );
    }
    println!("{:>10} {:>6} {:>8}", "multicast", "R", "rounds");
    for &r_count in &[2usize, 5, 10] {
        let g = generators::complete(12);
        let instances: Vec<UnicastInstance> = (1..=r_count)
            .map(|i| UnicastInstance {
                source: 0,
                target: i,
                secret: 100 + i as u64,
            })
            .collect();
        let mut net = primitive_net(&g, AdversaryRole::Eavesdropper, 2, 11);
        let rep = mobile_secure_multicast(&mut net, &instances, 13);
        let ok = instances
            .iter()
            .enumerate()
            .all(|(i, inst)| rep.recovered[i] == Some(inst.secret));
        println!(
            "{:>10} {:>6} {:>8}   all-recovered={ok}",
            "K12", r_count, rep.rounds
        );
    }
}

/// E4 — Theorem A.4: secure broadcast round scaling in f and b.
fn e4_secure_broadcast() {
    header(
        "E4",
        "mobile-secure broadcast (Thm A.4, substituted packing)",
    );
    println!(
        "{:>10} {:>4} {:>4} {:>10} {:>12} {:>8}",
        "graph", "f", "b", "key rnds", "diss rnds", "ok"
    );
    for &f in &[1usize, 2, 3] {
        for &b in &[1usize, 4] {
            let g = generators::complete(14);
            let secret: Vec<u64> = (0..b as u64).map(|i| 0xA000 + i).collect();
            let mut net = primitive_net(&g, AdversaryRole::Eavesdropper, f, 3 + f as u64);
            let (_, rep) = mobile_secure_broadcast(&mut net, 0, &secret, f, 21);
            println!(
                "{:>10} {:>4} {:>4} {:>10} {:>12} {:>8}",
                "K14", f, b, rep.key_rounds, rep.dissemination_rounds, rep.all_recovered
            );
        }
    }
}

/// E5 — Theorem 1.3: congestion-sensitive compiler overhead.
fn e5_congestion_compiler() {
    header("E5", "congestion-sensitive secure compiler (Thm 1.3)");
    println!("{}", RunReport::table_header());
    for &f in &[1usize, 2] {
        for (name, g) in [
            ("K10", generators::complete(10)),
            ("grid3x4", generators::grid(3, 4)),
        ] {
            let report =
                eaves_scenario(&g, f, 19, CongestionSensitiveAdapter::new(f, 2, 17), |g| {
                    FloodBroadcast::new(g.clone(), 0, 5)
                });
            println!("{}   [{name}]", report.table_row());
        }
    }
}

/// E6 — Appendix C / Theorem 3.1: tree packing quality.
fn e6_tree_packing() {
    header("E6", "low-depth tree packings (Appendix C / Thm 3.1)");
    println!(
        "{:>12} {:>4} {:>6} {:>6} {:>8} {:>8}",
        "graph", "k", "lambda", "D_TP", "load", "height"
    );
    for &(name, ref g, k) in &[
        ("K16", generators::complete(16), 8usize),
        ("circ(20,3)", generators::circulant(20, 3), 4),
        ("circ(24,4)", generators::circulant(24, 4), 6),
        ("hcube(5)", generators::hypercube(5), 4),
    ] {
        let lambda = edge_connectivity(g);
        let dtp = estimate_dtp(g, k)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        let p = greedy_low_depth_packing(g, 0, k, 2);
        println!(
            "{:>12} {:>4} {:>6} {:>6} {:>8} {:>8}",
            name,
            k,
            lambda,
            dtp,
            p.load(g),
            p.max_height()
        );
    }
}

/// E7 — Theorem 3.5: mobile byzantine compiler — correctness and overhead vs f.
fn e7_tree_compiler() {
    header("E7", "f-mobile byzantine compiler (Thm 3.5)");
    println!("{}", RunReport::table_header());
    let cases: [(&str, Graph, usize, Vec<usize>); 2] = [
        ("K16", generators::complete(16), 16, vec![1, 2, 3]),
        ("circ(18,4)", generators::circulant(18, 4), 9, vec![1]),
    ];
    for (name, g, k, fs) in &cases {
        for &f in fs {
            let report = byz_scenario(
                g,
                f,
                100 + f as u64,
                TreePackingAdapter::new(f, 7).with_trees(*k),
                |g| LeaderElection::new(g.clone()),
            );
            println!("{}   [{name}]", report.table_row());
        }
    }
}

/// E8 — Theorem 1.6: clique compiler scaling with n (f = Θ(n)).
fn e8_clique_scaling() {
    header("E8", "CONGESTED CLIQUE compiler, f = Θ(n) (Thm 1.6)");
    println!("{}", RunReport::table_header());
    for &n in &[12usize, 16, 24, 32] {
        let g = generators::complete(n);
        let f = mobile_congest::compilers::resilient::CliqueCompiler::max_tolerable_f(n).max(1);
        let tokens: Vec<u64> = (0..n as u64).collect();
        let report = byz_scenario(&g, f, n as u64, CliqueAdapter::new(f, 7), move |g| {
            TokenDissemination::new(g.clone(), tokens.clone(), g.node_count())
        });
        println!("{}   [n={n}]", report.table_row());
    }
}

/// E9 — Theorem 1.7 / Lemma 3.10: expander weak packings and compiler.
fn e9_expander() {
    header("E9", "expander compiler (Thm 1.7 / Lemma 3.10)");
    println!("{}", RunReport::table_header());
    for &(n, d, k) in &[(40usize, 20usize, 5usize), (48, 24, 6), (56, 28, 7)] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let g = generators::random_regular(&mut rng, n, d);
        let phi = sweep_conductance(&g, 150).unwrap_or(0.0);
        let report = byz_scenario(
            &g,
            1,
            77 + n as u64,
            ExpanderAdapter::new(1, k, 6, 13),
            |g| LeaderElection::new(g.clone()),
        );
        println!("{}   [n={n} deg={d} phi={phi:.3}]", report.table_row());
    }
}

/// E10 — Theorem 1.4: cycle-cover compiler (dilation/congestion growth with f).
fn e10_cycle_cover() {
    header("E10", "FT-cycle-cover compiler (Thm 1.4 / 5.5)");
    println!("{}", RunReport::table_header());
    for (name, g, f) in [
        ("circ(9,2)", generators::circulant(9, 2), 1usize),
        ("circ(11,3)", generators::circulant(11, 3), 2),
        ("K8", generators::complete(8), 1),
    ] {
        let pg = g.clone();
        let outcome = Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(pg.clone(), 0, 3))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(f, 5).with_mode(CorruptionMode::Constant(9)),
                CorruptionBudget::Mobile { f },
            )
            .seed(5)
            .compiled_with(CycleCoverAdapter::new(f))
            .run();
        match outcome {
            Ok(report) => println!("{}   [{name}]", report.table_row()),
            Err(e) => println!("{name}: {e}"),
        }
    }
}

/// E11 — Theorem 4.1: rewind compiler against bursty round-error-rate adversaries.
fn e11_rewind() {
    header("E11", "round-error-rate rewind compiler (Thm 4.1)");
    println!("{}", RunReport::table_header());
    for &(n, quiet, burst, per) in &[(12usize, 40usize, 4usize, 10usize), (14, 25, 6, 12)] {
        let g = generators::complete(n);
        let budget = 150;
        let pg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || LeaderElection::new(pg.clone()))
            .adversary(
                AdversaryRole::Byzantine,
                BurstAdversary::new(quiet, burst, per, 7),
                CorruptionBudget::RoundErrorRate { total: budget },
            )
            .seed(7)
            .compiled_with(RewindAdapter::new(1, 5))
            .run()
            .expect("rewind scenario failed");
        println!("{}   [n={n}, budget={budget}]", report.table_row());
    }
}

/// E12 — Lemma 3.8: geometric decay of mismatches in the ℓ0 correction.
fn e12_mismatch_decay() {
    header(
        "E12",
        "mismatch decay of the l0-threshold correction (Lemma 3.8)",
    );
    let g = generators::complete(20);
    let packing = star_packing(&g, 0);
    for &f in &[1usize, 2] {
        let mut net = primitive_net(&g, AdversaryRole::Byzantine, f, 31 + f as u64);
        let mut sent = Traffic::new(&g);
        for v in g.nodes() {
            for &(u, _) in g.neighbors(v) {
                sent.send(&g, v, u, vec![(v as u64) << 8 | u as u64]);
            }
        }
        let received = net.exchange(sent.clone());
        let (_, rep) = l0_threshold_correction(&mut net, &packing, &sent, &received, f, 8, 41);
        println!("f={f}  B_j trace = {:?}", rep.decay);
    }
    // The sparse-majority variant for comparison (single-shot).
    for &f in &[1usize, 2, 3] {
        let mut net = primitive_net(&g, AdversaryRole::Byzantine, f, 51 + f as u64);
        let mut sent = Traffic::new(&g);
        for v in g.nodes() {
            for &(u, _) in g.neighbors(v) {
                sent.send(&g, v, u, vec![v as u64 + 1]);
            }
        }
        let received = net.exchange(sent.clone());
        let (_, rep) = sparse_majority_correction(&mut net, &packing, &sent, &received, 8 * f, 61);
        println!(
            "sparse-majority f={f}: before={} after={} rounds={}",
            rep.mismatches_before, rep.mismatches_after, rep.rounds
        );
    }
}

/// E13 — Theorem 3.4: sketch behaviour (uniformity and exact recovery).
fn e13_sketches() {
    header("E13", "l0-sampler uniformity and sparse recovery (Thm 3.4)");
    let support: Vec<u64> = (1..=10).collect();
    let counts = mobile_congest::sketch::l0::empirical_sample_counts(&support, 3000, 9);
    let total: usize = counts.values().sum();
    let min = support
        .iter()
        .map(|e| *counts.get(e).unwrap_or(&0))
        .min()
        .unwrap();
    let max = support
        .iter()
        .map(|e| *counts.get(e).unwrap_or(&0))
        .max()
        .unwrap();
    println!("l0 sampler over 10 elements, 3000 trials: success={total}, min bucket={min}, max bucket={max}");
    let mut sr = SparseRecovery::new(SketchRandomness::from_seed(3), 16);
    for e in 0..12u64 {
        sr.update(e * 7 + 1, (e as i64) - 5);
    }
    println!(
        "sparse recovery of 12-element stream decodes exactly: {}",
        sr.decode().is_some()
    );
    let mut l0 = L0Sampler::new(SketchRandomness::from_seed(4));
    l0.update(42, 1);
    println!("singleton recovery: {:?}", l0.query());
}

/// E14 — Lemma 3.3: RS-scheduler failure counts vs the analytical bound.
fn e14_scheduler() {
    header("E14", "RS-scheduler failures vs Lemma 3.3 bound");
    println!("{:>6} {:>4} {:>10} {:>10}", "n", "f", "failures", "bound");
    for &(n, f) in &[(16usize, 1usize), (16, 2), (24, 3), (32, 4)] {
        let g = generators::complete(n);
        let packing = star_packing(&g, 0);
        let eta = packing.load(&g);
        let mut net = primitive_net(&g, AdversaryRole::Byzantine, f, 7 + n as u64);
        let report = RsScheduler.run_family(&mut net, &packing, 10);
        println!(
            "{:>6} {:>4} {:>10} {:>10}",
            n,
            f,
            packing.len() - report.success_count(),
            RsScheduler::failure_bound(f, eta)
        );
    }
}

/// E15 — who wins: uncompiled vs repetition baseline vs mobile compiler.
fn e15_baselines() {
    header(
        "E15",
        "baseline comparison under a mobile byzantine adversary",
    );
    println!(
        "{:>6} {:>4} {:>12} {:>12} {:>12}",
        "n", "f", "uncompiled", "repetition", "compiled"
    );
    for &(n, f) in &[(16usize, 2usize), (20, 2)] {
        let g = generators::complete(n);
        // The adversary fabricates plausible-looking broadcast values on the
        // edges it controls — the attack the compilers are designed to defeat.
        let run_cell = |seed: u64, compiler: Box<dyn Compiler>| {
            let pg = g.clone();
            Scenario::on(g.clone())
                .payload_boxed(move || {
                    Box::new(FloodBroadcast::new(pg.clone(), 0, 777)) as BoxedAlgorithm
                })
                .adversary(
                    AdversaryRole::Byzantine,
                    GreedyHeaviest::new(f).with_mode(CorruptionMode::Constant(424242)),
                    CorruptionBudget::Mobile { f },
                )
                .seed(seed)
                .compiled_with_boxed(compiler)
                .run()
                .expect("baseline cell failed validation")
        };
        // Uncompiled.
        let uncompiled = run_cell(1, Box::new(Uncompiled));
        let expected = uncompiled.fault_free.clone().unwrap();
        // Naive repetition baseline: run the algorithm 3 times and majority-vote outputs.
        let rep_outputs: Vec<_> = (0..3u64)
            .map(|s| run_cell(s, Box::new(Uncompiled)).outputs)
            .collect();
        let repetition = (0..g.node_count())
            .map(|v| {
                let vals: Vec<_> = rep_outputs.iter().map(|o| o[v].clone()).collect();
                if vals[0] == vals[1] || vals[0] == vals[2] {
                    vals[0].clone()
                } else {
                    vals[1].clone()
                }
            })
            .collect::<Vec<_>>()
            == expected;
        // Mobile compiler.
        let compiled = run_cell(3, Box::new(CliqueAdapter::new(f, 9)));
        println!(
            "{:>6} {:>4} {:>12} {:>12} {:>12}",
            n,
            f,
            uncompiled.agrees_with_fault_free() == Some(true),
            repetition,
            compiled.agrees_with_fault_free() == Some(true)
        );
    }
}

/// E16a — the zero-allocation round engine, before/after: the same round
/// workload (full 2-word traffic on every arc, `f = 2` mobile byzantine
/// corruption) on every graph of the E16 campaign grid, driven once through
/// the retained PR-2 reference engine (`sim::reference`, one heap payload
/// per arc per round) and once through the flat-buffer engine.  The target
/// is a ≥2× speedup at identical per-round semantics (the parity is a
/// regression test; this is the wall-clock half of the claim).
fn e16a_round_engine_ab() {
    use mobile_congest::sim::reference::{LegacyTraffic, ReferenceNetwork};
    use mobile_congest::sim::Traffic;

    header("E16a", "round engine before/after (seed vs flat buffers)");
    const ROUNDS: usize = 1500;
    println!(
        "{:>20} {:>7} {:>12} {:>12} {:>9}",
        "graph", "rounds", "seed ms", "flat ms", "speedup"
    );
    let mut total_seed = 0.0f64;
    let mut total_flat = 0.0f64;
    for spec in mobile_congest::scenario::matrix::graph_zoo(2024) {
        let g = spec.graph;
        // Seed path: per-round legacy traffic, allocating exchange.
        let mut ref_net = ReferenceNetwork::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(2, 7)),
            CorruptionBudget::Mobile { f: 2 },
            7,
        );
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            let mut t = LegacyTraffic::new(&g);
            for e in g.edges() {
                t.send(&g, e.u, e.v, vec![round as u64, e.u as u64]);
                t.send(&g, e.v, e.u, vec![round as u64, e.v as u64]);
            }
            let _ = ref_net.exchange(t);
        }
        let seed_s = t0.elapsed().as_secs_f64();

        // Flat path: one recycled arena, in-place exchange.
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(2, 7)),
            CorruptionBudget::Mobile { f: 2 },
            7,
        );
        let mut t = Traffic::new(&g);
        let t0 = Instant::now();
        for round in 0..ROUNDS {
            t.begin_round(&g);
            for e in g.edges() {
                t.send(&g, e.u, e.v, [round as u64, e.u as u64]);
                t.send(&g, e.v, e.u, [round as u64, e.v as u64]);
            }
            net.exchange_in_place(&mut t);
        }
        let flat_s = t0.elapsed().as_secs_f64();

        assert_eq!(
            net.metrics().messages,
            ref_net.metrics.messages,
            "A/B halves must do identical work"
        );
        total_seed += seed_s;
        total_flat += flat_s;
        println!(
            "{:>20} {:>7} {:>12.2} {:>12.2} {:>8.1}x",
            spec.name,
            ROUNDS,
            seed_s * 1e3,
            flat_s * 1e3,
            seed_s / flat_s
        );
    }
    println!(
        "{:>20} {:>7} {:>12.2} {:>12.2} {:>8.1}x   (target >= 2x)",
        "TOTAL",
        "",
        total_seed * 1e3,
        total_flat * 1e3,
        total_seed / total_flat
    );
}

/// E16 — the deterministic parallel campaign engine over the expanded
/// topology × adversary zoo: every graph family (clique, circulant, grid,
/// torus, expander, small world, ring of cliques, barbell) × every adversary
/// family (random / sweeping / greedy / adaptive / eclipse / bursty /
/// eavesdropping) × compilers, with seed repetitions, fanned across every
/// core, aggregated (mean/min/max/p50/p99, including the typed
/// `CompilerNotes` facets) and exported as a JSONL trajectory.
fn e16_campaign() -> (String, f64) {
    use mobile_congest::scenario::matrix::{adversary_zoo, graph_zoo, CompilerSpec};
    header(
        "E16",
        "parallel campaign engine (topology x adversary zoo, 4 repetitions, all cores)",
    );
    let campaign = Campaign::new(2024)
        .graphs(graph_zoo(2024))
        .adversaries(adversary_zoo(1))
        .compilers(vec![
            CompilerSpec::of(Uncompiled),
            CompilerSpec::of(CliqueAdapter::new(1, 5)),
            // Both packings on identical cells: v1 keeps the known frontier
            // pinned, v2 must close it.
            CompilerSpec::of(
                TreePackingAdapter::new(1, 5)
                    .with_packing(mobile_congest::graphs::PackingVersion::V1Greedy),
            ),
            CompilerSpec::of(TreePackingAdapter::new(1, 5)),
            CompilerSpec::of(CycleCoverAdapter::new(1)),
            CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
        ])
        .payload(|g| Box::new(FloodBroadcast::new(g.clone(), 0, 4242)) as BoxedAlgorithm)
        .repetitions(4);

    let t0 = Instant::now();
    let report = campaign.run();
    let wall = t0.elapsed().as_secs_f64();
    let summaries = report.summaries();
    print!("{}", report.to_table_with(&summaries));
    let diverging = report
        .executed()
        .filter(|c| matches!(&c.outcome, Ok(r) if !r.protected_cell_ok()))
        .count();
    println!(
        "{} cells ({} skipped) on {} workers in {wall:.2}s; diverging protected cells: {} \
         (tree-packing v1 on the sparse small-world topology under targeted attacks — the \
         baseline frontier pinned by tests/harness_campaign.rs; v2 corrects every cell)",
        report.cells.len(),
        report.skipped_count(),
        mobile_congest::harness::default_threads(),
        diverging,
    );

    // The bench trajectory: per-cell lines plus per-group summaries.
    let jsonl = report.to_jsonl_with(&summaries);
    let path = std::path::Path::new("target").join("campaign-trajectory.jsonl");
    match std::fs::write(&path, &jsonl) {
        Ok(()) => println!(
            "wrote {} JSONL lines to {}",
            jsonl.lines().count(),
            path.display()
        ),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
    (report.fingerprint(), wall)
}

/// E16b — scenario-as-data overhead: the identical E16 grid, but described
/// as a serializable `CampaignSpec` and resolved through the registries
/// (`Campaign::from_spec`).  The report must be byte-identical to the
/// hand-built run, and the spec path's wall-clock overhead is the tracked
/// quantity (target: ≤1% delta — the def resolution is a few dozen
/// allocations against a multi-second grid).
fn e16b_spec_campaign(hand_fingerprint: &str, hand_secs: f64) {
    use mobile_congest::harness::{CampaignSpec, GridSpec, PayloadDef};
    use mobile_congest::scenario::matrix::{adversary_zoo_defs, graph_zoo_defs};
    use mobile_congest::scenario::CompilerDef;

    header("E16b", "spec-driven campaign vs hand-built (same grid)");
    let spec = CampaignSpec {
        seed: 2024,
        repetitions: 4,
        grid: GridSpec {
            graphs: graph_zoo_defs(2024),
            adversaries: adversary_zoo_defs(1),
            compilers: vec![
                CompilerDef::Uncompiled,
                CompilerDef::Clique { f: 1, seed: 5 },
                CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: mobile_congest::graphs::PackingVersion::V1Greedy,
                },
                CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: mobile_congest::graphs::PackingVersion::V2Augmented,
                },
                CompilerDef::CycleCover { f: 1 },
                CompilerDef::StaticToMobile {
                    t: 4,
                    words: 2,
                    seed: 5,
                },
            ],
            payload: PayloadDef::FloodBroadcast {
                source: 0,
                value: 4242,
            },
        },
    };
    let t0 = Instant::now();
    let report = Campaign::from_spec(&spec)
        .expect("the E16 grid spec resolves")
        .run();
    let spec_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.fingerprint(),
        hand_fingerprint,
        "the spec-built campaign must be byte-identical to the hand-built one"
    );
    let delta_pct = (spec_secs - hand_secs) / hand_secs * 100.0;
    println!(
        "hand-built {:.2}s, spec-driven {:.2}s, delta {:+.2}% (target <= 1%); \
         fingerprints byte-identical over {} cells",
        hand_secs,
        spec_secs,
        delta_pct,
        report.cells.len()
    );
    println!(
        "BENCH {{\"bench\":\"e16b-spec-overhead\",\"hand_s\":{hand_secs:.4},\"spec_s\":{spec_secs:.4},\"delta_pct\":{delta_pct:.3},\"spec_fingerprint\":\"{}\"}}",
        spec.fingerprint()
    );
}

/// E16c — tree-packing v1 vs v2: construction cost and correction strength.
/// v2 is the greedy packing plus the augmenting-path repair pass, so its
/// extra wall time is the price of closing the small-world frontier; the
/// correction half replays the frontier cell (sparse small world × targeted
/// heaviest-edge adversaries) under both packings.  Emits the `BENCH_5` perf
/// line (also written to `target/BENCH_5.json`) that starts the packing
/// bench trajectory.
fn e16c_packing_ab() {
    use mobile_congest::graphs::tree_packing::{
        augmented_low_depth_packing, greedy_low_depth_packing, load_floor,
    };
    use mobile_congest::graphs::{GraphDef, PackingVersion};
    use mobile_congest::sim::adversary::AdaptiveHeaviest;

    header(
        "E16c",
        "tree packing v1 vs v2 (construction cost + correction)",
    );
    let k = 9;
    const REPS: usize = 25;
    println!(
        "{:>18} {:>6} {:>10} {:>10} {:>8} {:>8}",
        "graph", "floor", "v1 ms/it", "v2 ms/it", "v1 load", "v2 load"
    );
    let (mut v1_ms_total, mut v2_ms_total) = (0.0f64, 0.0f64);
    let (mut v1_load_frontier, mut v2_load_frontier) = (0usize, 0usize);
    for def in [
        GraphDef::watts_strogatz(24, 6, 0.2, 2024 ^ 0x5A11),
        GraphDef::circulant(18, 4),
        GraphDef::expander(24, 8, 2024),
    ] {
        let g = def.build().expect("bench graphs resolve");
        let t0 = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(greedy_low_depth_packing(&g, 0, k, 2));
        }
        let v1_ms = t0.elapsed().as_secs_f64() * 1e3 / REPS as f64;
        let t0 = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(augmented_low_depth_packing(&g, 0, k, 2));
        }
        let v2_ms = t0.elapsed().as_secs_f64() * 1e3 / REPS as f64;
        let v1 = greedy_low_depth_packing(&g, 0, k, 2);
        let v2 = augmented_low_depth_packing(&g, 0, k, 2);
        if def.display_name().starts_with("small-world") {
            v1_load_frontier = v1.load(&g);
            v2_load_frontier = v2.load(&g);
        }
        v1_ms_total += v1_ms;
        v2_ms_total += v2_ms;
        println!(
            "{:>18} {:>6} {:>10.3} {:>10.3} {:>8} {:>8}",
            def.display_name(),
            load_floor(&g, k),
            v1_ms,
            v2_ms,
            v1.load(&g),
            v2.load(&g)
        );
    }

    // Correction strength on the frontier cell, A/B over seeds.
    let frontier = GraphDef::watts_strogatz(24, 6, 0.2, 2024 ^ 0x5A11)
        .build()
        .unwrap();
    let mut corrected = [0usize; 2];
    const CELLS: usize = 6;
    for (vi, version) in [PackingVersion::V1Greedy, PackingVersion::V2Augmented]
        .into_iter()
        .enumerate()
    {
        for seed in 0..CELLS as u64 {
            let pg = frontier.clone();
            let report = Scenario::on(frontier.clone())
                .payload(move || FloodBroadcast::new(pg.clone(), 0, 4242))
                .adversary(
                    AdversaryRole::Byzantine,
                    AdaptiveHeaviest::new(1),
                    CorruptionBudget::Mobile { f: 1 },
                )
                .seed(1000 + seed)
                .compiled_with(TreePackingAdapter::new(1, 5).with_packing(version))
                .run()
                .expect("frontier cell validates");
            if report.notes.fully_corrected() == Some(true)
                && report.agrees_with_fault_free() == Some(true)
            {
                corrected[vi] += 1;
            }
        }
    }
    let (v1_rate, v2_rate) = (
        corrected[0] as f64 / CELLS as f64,
        corrected[1] as f64 / CELLS as f64,
    );
    println!(
        "frontier correction under adaptive-heaviest: v1 {}/{CELLS}, v2 {}/{CELLS}",
        corrected[0], corrected[1]
    );
    let bench_line = format!(
        "{{\"bench\":\"e16c-packing-v2\",\"v1_pack_ms\":{v1_ms_total:.4},\"v2_pack_ms\":{v2_ms_total:.4},\
         \"v1_frontier_load\":{v1_load_frontier},\"v2_frontier_load\":{v2_load_frontier},\
         \"v1_corrected_rate\":{v1_rate:.3},\"v2_corrected_rate\":{v2_rate:.3}}}"
    );
    println!("BENCH {bench_line}");
    let path = std::path::Path::new("target").join("BENCH_5.json");
    match std::fs::write(&path, format!("{bench_line}\n")) {
        Ok(()) => println!("wrote perf line to {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}

/// E16d — trace overhead A/B/C on a compact campaign grid: tracing off (the
/// disabled tracer's single-branch fast path — the default every other
/// experiment runs under), ring-buffer tracing, and ring tracing plus full
/// JSONL serialization of every cell's event stream (what `--trace-dir`
/// writes).  The off-vs-untraced-code delta is the acceptance bound (≤1%);
/// here "off" *is* the instrumented code with tracing disabled, so ring and
/// JSONL overheads are measured against it.  Emits the `BENCH_7` perf line
/// (also written to `target/BENCH_7.json`).
fn e16d_obs_overhead() {
    use mobile_congest::obs;
    use mobile_congest::scenario::matrix::{adversary_zoo, graph_zoo, CompilerSpec};

    header(
        "E16d",
        "trace overhead: off vs ring vs ring+jsonl (same grid)",
    );
    let build = || {
        Campaign::new(2024)
            .graphs(graph_zoo(2024))
            .adversaries(adversary_zoo(1))
            .compilers(vec![
                CompilerSpec::of(Uncompiled),
                CompilerSpec::of(CliqueAdapter::new(1, 5)),
                CompilerSpec::of(TreePackingAdapter::new(1, 5)),
                CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
            ])
            .payload(|g| Box::new(FloodBroadcast::new(g.clone(), 0, 4242)) as BoxedAlgorithm)
            .repetitions(2)
    };

    // Warm-up pass so the first timed run does not pay cold caches.
    std::hint::black_box(build().run());

    let t0 = Instant::now();
    let off = build().run();
    let off_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let ring = build().trace(obs::TraceSpec::ring()).run();
    let ring_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let jsonl_report = build().trace(obs::TraceSpec::ring()).run();
    let mut jsonl_bytes = 0usize;
    for cell in jsonl_report.executed() {
        if let Ok(r) = &cell.outcome {
            let mut buf = Vec::new();
            r.trace.write_jsonl(&mut buf).expect("in-memory sink");
            jsonl_bytes += std::hint::black_box(buf).len();
        }
    }
    let jsonl_s = t0.elapsed().as_secs_f64();

    let events: u64 = ring
        .executed()
        .filter_map(|c| c.outcome.as_ref().ok())
        .map(|r| r.trace.stats.offered)
        .sum();
    let ring_pct = (ring_s - off_s) / off_s * 100.0;
    let jsonl_pct = (jsonl_s - off_s) / off_s * 100.0;
    println!(
        "{} cells: off {off_s:.2}s, ring {ring_s:.2}s ({ring_pct:+.2}%), \
         ring+jsonl {jsonl_s:.2}s ({jsonl_pct:+.2}%); {events} events offered, \
         {:.2} MiB of JSONL",
        off.cells.len(),
        jsonl_bytes as f64 / (1024.0 * 1024.0)
    );
    let bench_line = format!(
        "{{\"bench\":\"e16d-obs\",\"off_s\":{off_s:.4},\"ring_s\":{ring_s:.4},\
         \"jsonl_s\":{jsonl_s:.4},\"ring_overhead_pct\":{ring_pct:.3},\
         \"jsonl_overhead_pct\":{jsonl_pct:.3},\"events\":{events},\
         \"jsonl_bytes\":{jsonl_bytes}}}"
    );
    println!("BENCH {bench_line}");
    let path = std::path::Path::new("target").join("BENCH_7.json");
    match std::fs::write(&path, format!("{bench_line}\n")) {
        Ok(()) => println!("wrote perf line to {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}

/// E16e — campaign-server overhead: submit `specs/e16-small.json` to an
/// in-process `campaignd` (real HTTP over loopback, durable fsync'd store)
/// and compare submit→complete wall time against the direct in-process run
/// of the same spec (target: ≤10% overhead — the price of batching, the
/// store appends and the HTTP round trips).  The two reports must carry the
/// same record fingerprint.  Emits the `BENCH_9` perf line (also written to
/// `target/BENCH_9.json`).
fn e16e_server_overhead() {
    use mobile_congest::campaignd::client::Client;
    use mobile_congest::campaignd::server::{start, Config};
    use mobile_congest::harness::report::ReportRecord;
    use mobile_congest::harness::CampaignSpec;

    header("E16e", "campaign server vs direct run (same spec)");
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/e16-small.json");
    let text = std::fs::read_to_string(spec_path).expect("specs/e16-small.json is checked in");
    let mut spec = CampaignSpec::from_json(&text).expect("the checked-in spec parses");
    // The checked-in spec finishes in single-digit milliseconds — too small
    // to measure amortized overhead (fixed costs like the submit round trip
    // and the completion poll would dominate).  Scale the repetition axis so
    // the direct run takes a meaningful fraction of a second; the overhead
    // target is about throughput, and every added cost (per-batch fsync,
    // HTTP, polling) is exercised at scale.
    spec.repetitions = 200;
    let text = spec.to_json();

    // Both paths are measured as the best of five *interleaved* trials: the
    // engine's wall time on a busy box swings by well over the overhead
    // being measured, and slow windows last long enough to bias whichever
    // path runs entirely inside one.  Alternating direct/server per trial
    // and taking each side's minimum is the standard noise-robust estimator
    // for a deterministic workload.
    const TRIALS: usize = 5;

    let campaign = Campaign::from_spec(&spec).expect("the spec resolves");
    std::hint::black_box(campaign.run());
    // Earlier experiments (E16d in particular) leave tens of MB of dirty
    // pages; the server's fsync'd appends would queue behind them and bill
    // the backlog to this measurement.  Flush first so the overhead number
    // reflects this workload's own durability cost.
    let _ = std::process::Command::new("sync").status();
    let trajectory_path = std::path::Path::new("target").join("bench-e16e-trajectory.jsonl");
    let mut direct_s = f64::INFINITY;
    let mut server_s = f64::INFINITY;
    let mut direct = ReportRecord { cells: Vec::new() };
    for trial in 0..TRIALS {
        // The direct baseline: what the one-shot `campaign` CLI does — run
        // the grid, compute the summaries, write the trajectory JSONL to
        // disk (the server also persists its cells, so both sides pay for
        // their durable artifact).
        let t0 = Instant::now();
        let direct_report = campaign.run();
        let summaries = direct_report.summaries();
        std::fs::write(&trajectory_path, direct_report.to_jsonl_with(&summaries))
            .expect("trajectory writes");
        direct_s = direct_s.min(t0.elapsed().as_secs_f64());
        direct = ReportRecord::of(&direct_report);

        // The server path: fresh store, real sockets, long-poll to
        // completion.
        let data_dir = std::path::Path::new("target").join(format!("bench-e16e-data-{trial}"));
        let _ = std::fs::remove_dir_all(&data_dir);
        let mut config = Config::new(&data_dir);
        config.quiet = true;
        let handle = start(config).expect("server starts");
        let client = Client::new(handle.addr().to_string());
        let t0 = Instant::now();
        let submitted = client.submit(&text).expect("submit succeeds");
        let done = client
            .watch(&submitted.fingerprint, 1_000, |_| {})
            .expect("job completes");
        server_s = server_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            done.report_fingerprint.as_deref(),
            Some(direct.fingerprint()).as_deref(),
            "the server-run report must be byte-identical to the direct run"
        );
        let _ = std::fs::remove_dir_all(&data_dir);
    }
    let _ = std::fs::remove_file(&trajectory_path);

    let overhead_pct = (server_s - direct_s) / direct_s * 100.0;
    println!(
        "{} cells: direct {direct_s:.3}s, server {server_s:.3}s ({overhead_pct:+.2}%, \
         target <= 10%); report fingerprints byte-identical",
        spec.cell_count(),
    );
    let bench_line = format!(
        "{{\"bench\":\"e16e-server\",\"direct_s\":{direct_s:.4},\"server_s\":{server_s:.4},\
         \"overhead_pct\":{overhead_pct:.3},\"cells\":{},\"report_fingerprint\":\"{}\"}}",
        spec.cell_count(),
        direct.fingerprint(),
    );
    println!("BENCH {bench_line}");
    let path = std::path::Path::new("target").join("BENCH_9.json");
    match std::fs::write(&path, format!("{bench_line}\n")) {
        Ok(()) => println!("wrote perf line to {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}

/// E16f — compile-artifact cache speedup on the full E16 grid: the same
/// spec-driven campaign with the shared [`ArtifactCache`] disabled (every
/// cell re-runs `Compiler::prepare`, the pre-cache behavior) vs enabled
/// (each distinct `(graph, compiler)` pair prepares exactly once).  Both
/// sides are best-of-five interleaved trials, and their report fingerprints
/// must be byte-identical — the cache is a pure wall-time optimization.
/// Target: ≥2× on full-grid wall time vs the PR 9 reference (the cache plus
/// the precomputed correction contexts and the zero-allocation scheduler
/// path).  Emits the `BENCH_10` perf line (also written to
/// `target/BENCH_10.json`; the fingerprint field is FNV-1a hashed).
fn e16f_artifact_cache() {
    use mobile_congest::harness::{CampaignSpec, GridSpec, PayloadDef};
    use mobile_congest::scenario::matrix::{adversary_zoo_defs, graph_zoo_defs};
    use mobile_congest::scenario::CompilerDef;

    header("E16f", "compile-artifact cache off vs on (same grid)");
    let spec = CampaignSpec {
        seed: 2024,
        repetitions: 4,
        grid: GridSpec {
            graphs: graph_zoo_defs(2024),
            adversaries: adversary_zoo_defs(1),
            compilers: vec![
                CompilerDef::Uncompiled,
                CompilerDef::Clique { f: 1, seed: 5 },
                CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: mobile_congest::graphs::PackingVersion::V1Greedy,
                },
                CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: mobile_congest::graphs::PackingVersion::V2Augmented,
                },
                CompilerDef::CycleCover { f: 1 },
                CompilerDef::StaticToMobile {
                    t: 4,
                    words: 2,
                    seed: 5,
                },
            ],
            payload: PayloadDef::FloodBroadcast {
                source: 0,
                value: 4242,
            },
        },
    };

    // Warm-up so the first timed trial does not pay cold field tables / page
    // faults, then interleave the two sides and take each side's minimum
    // (the noise-robust estimator for a deterministic workload — see E16e).
    std::hint::black_box(Campaign::from_spec(&spec).expect("spec resolves").run());
    const TRIALS: usize = 5;
    let mut off_s = f64::INFINITY;
    let mut on_s = f64::INFINITY;
    let mut off_fingerprint = String::new();
    let mut on_fingerprint = String::new();
    let mut cells = 0usize;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..TRIALS {
        let uncached = Campaign::from_spec(&spec)
            .expect("spec resolves")
            .without_artifact_cache();
        let t0 = Instant::now();
        let report = uncached.run();
        off_s = off_s.min(t0.elapsed().as_secs_f64());
        off_fingerprint = report.fingerprint();
        cells = report.cells.len();

        // A fresh campaign per trial so every trial pays the cold-cache cost.
        let cached = Campaign::from_spec(&spec).expect("spec resolves");
        let t0 = Instant::now();
        let report = cached.run();
        on_s = on_s.min(t0.elapsed().as_secs_f64());
        on_fingerprint = report.fingerprint();
        let cache = cached
            .artifact_cache_handle()
            .expect("spec-built campaigns carry a cache");
        hits = cache.hits();
        misses = cache.misses();
    }
    assert_eq!(
        off_fingerprint, on_fingerprint,
        "the artifact cache must not change campaign results"
    );

    // Full-grid wall time of the same grid at the PR 9 HEAD (e16b spec-driven
    // path, best of interleaved trials, single worker) — the reference the
    // ≥2× acceptance bar is measured against.  Machine-relative: recorded in
    // BENCH_10.json for the trend plot, not asserted (CI machines differ).
    const PR9_SPEC_S: f64 = 3.9523;
    let cache_speedup = off_s / on_s;
    let vs_pr9 = PR9_SPEC_S / on_s;
    let fingerprint_hash = mobile_congest::harness::json::fnv1a_hex(on_fingerprint.bytes());
    println!(
        "{cells} cells: cache off {off_s:.3}s, cache on {on_s:.3}s \
         ({cache_speedup:.2}x from the cache alone); vs PR 9 reference \
         {PR9_SPEC_S:.2}s: {vs_pr9:.2}x (target >= 2x); \
         {hits} hits / {misses} misses per run; fingerprints byte-identical",
    );
    let bench_line = format!(
        "{{\"bench\":\"e16f-artifact-cache\",\"off_s\":{off_s:.4},\"on_s\":{on_s:.4},\
         \"cache_speedup\":{cache_speedup:.3},\"pr9_spec_s\":{PR9_SPEC_S},\
         \"vs_pr9\":{vs_pr9:.3},\"cells\":{cells},\"hits\":{hits},\
         \"misses\":{misses},\"fingerprint\":\"{fingerprint_hash}\"}}"
    );
    println!("BENCH {bench_line}");
    let path = std::path::Path::new("target").join("BENCH_10.json");
    match std::fs::write(&path, format!("{bench_line}\n")) {
        Ok(()) => println!("wrote perf line to {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let t0 = Instant::now();
    e1_bit_extraction();
    e2_static_to_mobile();
    e3_secure_unicast();
    e4_secure_broadcast();
    e5_congestion_compiler();
    e6_tree_packing();
    e7_tree_compiler();
    e8_clique_scaling();
    e9_expander();
    e10_cycle_cover();
    e11_rewind();
    e12_mismatch_decay();
    e13_sketches();
    e14_scheduler();
    e15_baselines();
    e16a_round_engine_ab();
    let (e16_fingerprint, e16_secs) = e16_campaign();
    e16b_spec_campaign(&e16_fingerprint, e16_secs);
    e16c_packing_ab();
    e16d_obs_overhead();
    e16e_server_overhead();
    e16f_artifact_cache();
    println!(
        "\ntotal experiment time: {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
