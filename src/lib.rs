//! `mobile-congest` — umbrella crate for the reproduction of *Distributed
//! CONGEST Algorithms against Mobile Adversaries* (Fischer & Parter, PODC 2023).
//!
//! This crate re-exports the workspace members so examples, integration tests
//! and the experiment harness can use a single dependency:
//!
//! * [`sim`] — the round-synchronous CONGEST simulator and adversaries,
//! * [`graphs`] — graph generators, tree packings, cycle covers,
//! * [`codes`] — finite fields, Reed–Solomon, Vandermonde extraction, hashing,
//! * [`sketch`] — ℓ0-sampling and sparse-recovery sketches,
//! * [`icoding`] — the RS-compiler oracle and the Lemma 3.3 scheduler,
//! * [`payloads`] — fault-free payload algorithms,
//! * [`compilers`] — the paper's mobile-secure and mobile-resilient compilers.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the experiment index.

pub use coding as codes;
pub use congest_algorithms as payloads;
pub use congest_sim as sim;
pub use interactive_coding as icoding;
pub use mobile_congest_core as compilers;
pub use netgraph as graphs;
pub use sketches as sketch;
