//! `mobile-congest` — umbrella crate for the reproduction of *Distributed
//! CONGEST Algorithms against Mobile Adversaries* (Fischer & Parter, PODC 2023).
//!
//! **Start at [`scenario`]** — the unified execution API.  One fluent, typed
//! pipeline runs any payload on any graph under any adversary through any of
//! the paper's compilers and returns a structured report:
//!
//! ```
//! use mobile_congest::payloads::FloodBroadcast;
//! use mobile_congest::scenario::{CliqueAdapter, Scenario};
//! use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
//! use mobile_congest::graphs::generators;
//!
//! let g = generators::complete(12);
//! let payload_graph = g.clone();
//! let report = Scenario::on(g)
//!     .payload(move || FloodBroadcast::new(payload_graph.clone(), 0, 0xC0FFEE))
//!     .adversary(
//!         AdversaryRole::Byzantine,
//!         RandomMobile::new(2, 7),
//!         CorruptionBudget::Mobile { f: 2 },
//!     )
//!     .seed(7)
//!     .compiled_with(CliqueAdapter::new(2, 1))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.agrees_with_fault_free(), Some(true));
//! ```
//!
//! The workspace members behind the scenes:
//!
//! * [`sim`] — the round-synchronous CONGEST simulator and adversaries
//!   (a zero-allocation round engine: flat traffic arenas, adversary
//!   bitsets, in-place corruption — see `docs/ARCHITECTURE.md`),
//! * [`graphs`] — graph generators (incl. the torus / small-world /
//!   expander / ring-of-cliques zoo), CSR-indexed graphs, tree packings,
//!   cycle covers,
//! * [`codes`] — finite fields, Reed–Solomon, Vandermonde extraction, hashing,
//! * [`sketch`] — ℓ0-sampling and sparse-recovery sketches,
//! * [`icoding`] — the RS-compiler oracle and the Lemma 3.3 scheduler,
//! * [`payloads`] — fault-free payload algorithms,
//! * [`compilers`] — the paper's mobile-secure and mobile-resilient compilers
//!   (wrapped for the pipeline by the adapters re-exported from [`scenario`]),
//! * [`scenario::AsyncExecutor`] — the deterministic asynchronous execution
//!   runtime: per-node concurrent processes under a virtual-time
//!   discrete-event scheduler, with delivery behaviour
//!   ([`scenario::ScheduleDef`]: latency, reorder, drops, partitions,
//!   crash-recovery) as data, byte-replayable at any host thread count and
//!   pinned byte-for-byte against the lockstep engine on synchronous
//!   schedules,
//! * [`harness`] — the deterministic parallel campaign engine: grids of
//!   graph × adversary × compiler × seed-repetition cells fanned across
//!   worker threads with byte-identical results at any thread count, typed
//!   [`scenario::CompilerNotes`] aggregation (mean/stddev and the
//!   min/p10/p50/p90/p99/max order statistics), a JSONL export — and the
//!   **scenario-as-data** layer: serializable
//!   [`CampaignSpec`](harness::CampaignSpec)s resolved through the
//!   graph/adversary/compiler registries (`Campaign::from_spec`), sharding,
//!   and the `campaign` CLI binary (`cargo run --bin campaign`) with
//!   cell-level resume,
//! * [`campaignd`] — the campaign *server*: durable jobs in an fsync'd
//!   store, an in-process worker pool over the same deterministic engine
//!   (byte-identical reports, zero re-execution after a crash), a std-only
//!   HTTP/1.1 API and the `campaignd` / `campaignctl` binaries,
//! * [`redteam`] — adversary synthesis: deterministic red-team search over
//!   synthesized per-round corruption schedules
//!   (greedy / (1+1)-evolutionary chains scored on a damage lattice), a
//!   shrinker that minimizes every found failure (rounds → edges → graph)
//!   into a replayable one-cell campaign spec, and the `redteam` CLI binary
//!   (`cargo run --bin redteam`) with sharding and unit-level resume.
//!
//! See `README.md` for a guided tour; `benches/experiments.rs` is the
//! experiment index (E1–E16, one table per theorem).

/// Compiles every `rust` code block of `README.md` as a doctest, so the
/// README's quickstart and harness snippets cannot drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub mod cli;

pub use campaignd;
pub use coding as codes;
pub use congest_algorithms as payloads;
pub use congest_sim as sim;
pub use interactive_coding as icoding;
pub use mobile_congest_core as compilers;
pub use mobile_congest_harness as harness;
pub use mobile_congest_redteam as redteam;
pub use netgraph as graphs;
pub use obs;
pub use sketches as sketch;

/// The unified execution API: `Scenario` builder, `Compiler` trait, typed
/// errors, run reports, grid sweeps, and the adapters for all seven of the
/// paper's compilers.
///
/// The pipeline pieces live in [`congest_sim::scenario`]; the per-compiler
/// adapters live in [`mobile_congest_core::adapters`].  This module is the
/// single import surface for both.
pub mod scenario {
    pub use async_exec::{
        AsyncExecutor, CrashWindow, DropModel, LatencyModel, PartitionWindow, ScheduleDef,
    };
    pub use congest_sim::scenario::{
        doctest_payload, matrix, validate_role, BoxedAlgorithm, BuiltScenario, Compiler,
        CompilerKind, CompilerNotes, FaultFree, PayloadFactory, RunReport, Scenario,
        ScenarioBuilder, ScenarioError, Uncompiled,
    };
    pub use mobile_congest_core::adapters::{
        CliqueAdapter, CompilerDef, CongestionSensitiveAdapter, CycleCoverAdapter, ExpanderAdapter,
        RewindAdapter, StaticToMobileAdapter, TreePackingAdapter,
    };
}
