//! Shared argument-parsing helpers for the workspace CLIs (`campaign`,
//! `redteam`, `campaignd`, `campaignctl`).
//!
//! Every binary hand-rolls its flag loop (the workspace is offline — no
//! clap), but the pieces that must behave and *word their errors*
//! identically live here: pulling a flag's value off the iterator, parsing
//! counts, parsing `I/OF` shard designators, and reporting unknown flags.
//! The error strings are part of each CLI's tested surface — the binaries'
//! unit tests pin them — so changing a message here is a deliberate,
//! workspace-wide decision rather than per-binary drift.

/// Pull the value of `flag` off the argument iterator
/// (`"{flag} needs a value"` if the command line ends first).
pub fn need_value(it: &mut dyn Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Parse a flag's value as a count (`"{flag} needs a number"` on anything
/// that is not a `usize`).
pub fn parse_count(flag: &str, value: &str) -> Result<usize, String> {
    value.parse().map_err(|_| format!("{flag} needs a number"))
}

/// Parse a `--shard I/OF` designator: two slash-separated numbers with
/// `OF > 0` and `I < OF`.  Returns `(index, of)`.
pub fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let (i, of) = value
        .split_once('/')
        .ok_or_else(|| "--shard needs the form I/OF".to_string())?;
    let (i, of) = (
        i.parse::<usize>()
            .map_err(|_| "--shard index must be a number".to_string())?,
        of.parse::<usize>()
            .map_err(|_| "--shard count must be a number".to_string())?,
    );
    if of == 0 || i >= of {
        return Err(format!("shard {i}/{of} is out of range"));
    }
    Ok((i, of))
}

/// The unknown-flag error: names the offending flag in backticks.
pub fn unknown_flag(flag: &str) -> String {
    format!("unknown flag `{flag}`")
}

/// The execution flags the workspace binaries share — `--threads N`,
/// `--shard I/OF`, `--resume`, `--dry-run`, `--quiet` — parsed by **one**
/// code path so values, defaults and error wording can never drift between
/// binaries.
///
/// Each binary folds [`CommonArgs::try_flag`] (or
/// [`CommonArgs::try_flag_among`] for a narrower surface, e.g. `campaignd`
/// takes only `--threads`/`--quiet`) into its flag loop: a consumed common
/// flag returns `Ok(true)`, anything else falls through to the binary's own
/// flags and, ultimately, its [`unknown_flag`] arm.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CommonArgs {
    /// Worker threads (`0` = all cores; never changes results).
    pub threads: usize,
    /// `--shard I/OF` partition, if any.
    pub shard: Option<(usize, usize)>,
    /// Skip work already present in the output file.
    pub resume: bool,
    /// Validate and report without executing.
    pub dry_run: bool,
    /// Suppress stderr diagnostics.
    pub quiet: bool,
}

impl CommonArgs {
    /// Every common flag, for binaries that accept the full surface.
    pub const ALL: &'static [&'static str] =
        &["--threads", "--shard", "--resume", "--dry-run", "--quiet"];

    /// Consume `arg` if it is a common flag (pulling its value off `it` as
    /// needed): `Ok(true)` when consumed, `Ok(false)` when the flag is not
    /// ours and the caller should keep matching.
    pub fn try_flag(
        &mut self,
        arg: &str,
        it: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        self.try_flag_among(arg, it, Self::ALL)
    }

    /// [`CommonArgs::try_flag`] restricted to the flags in `allowed`: a
    /// common flag the binary does not take falls through as `Ok(false)` and
    /// lands in the caller's [`unknown_flag`] arm, exactly like any other
    /// stranger.
    pub fn try_flag_among(
        &mut self,
        arg: &str,
        it: &mut dyn Iterator<Item = String>,
        allowed: &[&str],
    ) -> Result<bool, String> {
        if !allowed.contains(&arg) {
            return Ok(false);
        }
        match arg {
            "--threads" => self.threads = parse_count("--threads", &need_value(it, "--threads")?)?,
            "--shard" => self.shard = Some(parse_shard(&need_value(it, "--shard")?)?),
            "--resume" => self.resume = true,
            "--dry-run" => self.dry_run = true,
            "--quiet" => self.quiet = true,
            other => return Err(unknown_flag(other)), // not a common flag at all
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(argv: &[&str]) -> std::vec::IntoIter<String> {
        argv.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn need_value_pulls_the_next_argument_or_names_the_flag() {
        let mut it = args(&["value", "rest"]);
        assert_eq!(need_value(&mut it, "--spec").unwrap(), "value");
        assert_eq!(it.next().as_deref(), Some("rest"));
        let mut empty = args(&[]);
        assert_eq!(
            need_value(&mut empty, "--out").unwrap_err(),
            "--out needs a value"
        );
    }

    #[test]
    fn counts_parse_or_name_the_flag() {
        assert_eq!(parse_count("--threads", "4").unwrap(), 4);
        assert_eq!(
            parse_count("--threads", "four").unwrap_err(),
            "--threads needs a number"
        );
        assert_eq!(
            parse_count("--threads", "-1").unwrap_err(),
            "--threads needs a number"
        );
    }

    #[test]
    fn well_formed_shards_parse() {
        assert_eq!(parse_shard("0/1").unwrap(), (0, 1));
        assert_eq!(parse_shard("3/8").unwrap(), (3, 8));
    }

    #[test]
    fn malformed_shard_designators_are_rejected() {
        assert_eq!(parse_shard("4").unwrap_err(), "--shard needs the form I/OF");
        assert_eq!(
            parse_shard("x/2").unwrap_err(),
            "--shard index must be a number"
        );
        assert_eq!(
            parse_shard("1/y").unwrap_err(),
            "--shard count must be a number"
        );
    }

    #[test]
    fn zero_and_out_of_range_shards_are_rejected() {
        assert_eq!(parse_shard("0/0").unwrap_err(), "shard 0/0 is out of range");
        assert_eq!(parse_shard("4/4").unwrap_err(), "shard 4/4 is out of range");
        assert_eq!(parse_shard("9/2").unwrap_err(), "shard 9/2 is out of range");
    }

    #[test]
    fn unknown_flags_are_named_in_backticks() {
        assert_eq!(unknown_flag("--frobnicate"), "unknown flag `--frobnicate`");
        assert_eq!(unknown_flag("-x"), "unknown flag `-x`");
    }

    #[test]
    fn common_args_consume_the_shared_flags() {
        let mut common = CommonArgs::default();
        let mut it = args(&["3"]);
        assert!(common.try_flag("--threads", &mut it).unwrap());
        let mut it = args(&["1/4"]);
        assert!(common.try_flag("--shard", &mut it).unwrap());
        let mut it = args(&[]);
        assert!(common.try_flag("--resume", &mut it).unwrap());
        assert!(common.try_flag("--dry-run", &mut it).unwrap());
        assert!(common.try_flag("--quiet", &mut it).unwrap());
        assert_eq!(
            common,
            CommonArgs {
                threads: 3,
                shard: Some((1, 4)),
                resume: true,
                dry_run: true,
                quiet: true,
            }
        );
    }

    #[test]
    fn common_args_pass_on_foreign_flags() {
        let mut common = CommonArgs::default();
        let mut it = args(&["value"]);
        assert!(!common.try_flag("--spec", &mut it).unwrap());
        assert_eq!(it.next().as_deref(), Some("value"), "value untouched");
        assert_eq!(common, CommonArgs::default());
    }

    #[test]
    fn common_args_report_their_own_value_errors() {
        let mut common = CommonArgs::default();
        let mut it = args(&["four"]);
        assert_eq!(
            common.try_flag("--threads", &mut it).unwrap_err(),
            "--threads needs a number"
        );
        let mut it = args(&[]);
        assert_eq!(
            common.try_flag("--shard", &mut it).unwrap_err(),
            "--shard needs a value"
        );
    }

    #[test]
    fn narrowed_surfaces_reject_the_other_common_flags() {
        // campaignd's surface: a --shard must fall through (and then hit the
        // binary's unknown-flag arm), never half-parse.
        let mut common = CommonArgs::default();
        let mut it = args(&["1/4"]);
        assert!(!common
            .try_flag_among("--shard", &mut it, &["--threads", "--quiet"])
            .unwrap());
        assert_eq!(it.next().as_deref(), Some("1/4"), "value untouched");
        let mut it = args(&["2"]);
        assert!(common
            .try_flag_among("--threads", &mut it, &["--threads", "--quiet"])
            .unwrap());
        assert_eq!(common.threads, 2);
    }
}
