//! The `campaignd` server binary: a durable campaign job queue behind a
//! std-only HTTP API.
//!
//! ```text
//! campaignd --data-dir DIR [--addr HOST:PORT] [--threads N] [--quiet]
//! ```
//!
//! On startup the store under `--data-dir` is replayed: completed cells are
//! loaded (never re-executed), unfinished jobs are requeued with exactly
//! their missing cells.  The resolved listen address is printed to stdout as
//! a single `kind:"listening"` JSON line — machine-parseable, so scripts
//! binding port `0` can discover the port — and everything narrative goes
//! to stderr (`--quiet` silences it).

use mobile_congest::campaignd::server::{start, Config};
use mobile_congest::cli;
use std::process::ExitCode;

const USAGE: &str = "usage: campaignd --data-dir DIR [--addr HOST:PORT] [--threads N] [--quiet]

  --data-dir DIR    store root (created if missing; replayed on startup)
  --addr HOST:PORT  listen address (default 127.0.0.1:7070; port 0 picks one)
  --threads N       campaign worker threads (default: all cores)
  --quiet           suppress stderr diagnostics";

#[cfg_attr(test, derive(Debug))]
struct Args {
    data_dir: std::path::PathBuf,
    addr: String,
    common: cli::CommonArgs,
}

/// The slice of the shared flag surface this daemon takes: sharding and
/// resume semantics live in the store, not on the command line.
const COMMON: &[&str] = &["--threads", "--quiet"];

/// What a command line parses to: a server run, or an explicit help request.
#[cfg_attr(test, derive(Debug))]
enum Parsed {
    Run(Args),
    Help,
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut args = Args {
        data_dir: std::path::PathBuf::new(),
        addr: "127.0.0.1:7070".to_string(),
        common: cli::CommonArgs::default(),
    };
    while let Some(arg) = it.next() {
        if args.common.try_flag_among(&arg, &mut it, COMMON)? {
            continue;
        }
        match arg.as_str() {
            "--data-dir" => {
                args.data_dir = std::path::PathBuf::from(cli::need_value(&mut it, "--data-dir")?);
            }
            "--addr" => args.addr = cli::need_value(&mut it, "--addr")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(cli::unknown_flag(other)),
        }
    }
    if args.data_dir.as_os_str().is_empty() {
        return Err("--data-dir is required".to_string());
    }
    Ok(Parsed::Run(args))
}

fn run() -> Result<(), String> {
    let args = match parse_args(std::env::args().skip(1))? {
        Parsed::Run(args) => args,
        Parsed::Help => {
            println!("{USAGE}");
            return Ok(());
        }
    };
    let mut config = Config::new(&args.data_dir);
    config.addr = args.addr;
    config.quiet = args.common.quiet;
    if args.common.threads > 0 {
        config.workers = args.common.threads;
    }
    let handle = start(config)?;
    // The one stdout line: lets scripts that bound port 0 find the server.
    println!("{{\"kind\":\"listening\",\"addr\":\"{}\"}}", handle.addr());
    // The accept loop and workers are daemon threads; park this one forever.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Parsed, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn all_flags_parse() {
        let Parsed::Run(args) = parse(&[
            "--data-dir",
            "/tmp/d",
            "--addr",
            "0.0.0.0:9999",
            "--threads",
            "2",
            "--quiet",
        ])
        .unwrap() else {
            panic!("expected a run");
        };
        assert_eq!(args.data_dir, std::path::PathBuf::from("/tmp/d"));
        assert_eq!(args.addr, "0.0.0.0:9999");
        assert_eq!(args.common.threads, 2);
        assert!(args.common.quiet);
    }

    #[test]
    fn the_common_flags_outside_this_daemons_surface_are_unknown() {
        // --shard/--resume/--dry-run are shared flags elsewhere, but this
        // binary does not take them — they must fail as unknown, not parse.
        for flag in ["--shard", "--resume", "--dry-run"] {
            let err = parse(&["--data-dir", "d", flag, "1/2"]).unwrap_err();
            assert_eq!(err, format!("unknown flag `{flag}`"));
        }
    }

    #[test]
    fn data_dir_is_required_and_help_short_circuits() {
        assert!(parse(&[]).unwrap_err().contains("--data-dir"));
        assert!(matches!(parse(&["--help"]), Ok(Parsed::Help)));
        assert!(matches!(parse(&["-h", "--junk"]), Ok(Parsed::Help)));
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse(&["--data-dir", "d", "--frobnicate"])
            .unwrap_err()
            .contains("`--frobnicate`"));
        assert_eq!(
            parse(&["--data-dir", "d", "--threads", "two"]).unwrap_err(),
            "--threads needs a number"
        );
        assert_eq!(parse(&["--addr"]).unwrap_err(), "--addr needs a value");
    }
}
