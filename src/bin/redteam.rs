//! The `redteam` CLI: synthesize adversaries against a compiler and shrink
//! what breaks it to minimal replayable counterexamples.
//!
//! ```text
//! redteam --spec specs/redteam-v1-frontier.json [--out FILE] [--ce-dir DIR]
//!         [--threads N] [--shard I/OF] [--resume]
//! ```
//!
//! Reads a JSON [`RedTeamSpec`], resolves every target through the standard
//! graph / compiler / payload registries, and runs `targets × chains`
//! independent search **units** on the deterministic parallel engine.  Each
//! unit is a greedy or (1+1)-evolutionary chain over synthesized corruption
//! schedules; a chain that breaks its target hands the failure to the
//! shrinker, which minimizes rounds, edges and finally the graph itself
//! while re-executing every candidate.
//!
//! Outputs:
//!
//! * a trajectory JSONL (`--out`): one `kind:"redteam"` header line keyed by
//!   the spec fingerprint, then one `kind:"unit"` line per unit in global
//!   order — byte-identical at any `--threads`, and `--shard`/`--resume`
//!   accumulate byte-identically to a one-shot run;
//! * per counterexample (`--ce-dir`): a one-cell campaign spec
//!   (`<fp>-unit<N>.json`, replayable with the `campaign` CLI) and a replay
//!   trace (`<fp>-unit<N>-replay.jsonl`: per-round corruption events plus
//!   the failure verdict).
//!
//! **Stream contract**: stdout carries the executed unit JSONL lines only;
//! everything narrative goes to stderr, and `--quiet` silences it.

use mobile_congest::cli;
use mobile_congest::icoding::replay_trace_jsonl;
use mobile_congest::redteam::{
    counterexample_spec, parse_trajectory, trajectory, unit_line, RedTeam, RedTeamSpec, UnitOutcome,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str =
    "usage: redteam --spec FILE [--out FILE] [--ce-dir DIR] [--threads N] [--shard I/OF]
               [--resume] [--dry-run] [--quiet]

  --spec FILE    red-team spec JSON (see specs/redteam-v1-frontier.json)
  --out FILE     trajectory JSONL (default: target/<spec-stem>-redteam.jsonl)
  --ce-dir DIR   write counterexample campaign specs + replay traces here
                 (default: target/<spec-stem>-ce)
  --threads N    worker threads (default: all cores; never changes results)
  --shard I/OF   run only units with index % OF == I (multi-machine fan-out)
  --resume       skip units already present in the trajectory file
  --dry-run      validate only: parse + resolve the spec, print the
                 fingerprint and unit counts, execute nothing
  --quiet        suppress stderr diagnostics (stdout and errors unaffected)";

#[cfg_attr(test, derive(Debug))]
struct Args {
    spec: PathBuf,
    out: Option<PathBuf>,
    ce_dir: Option<PathBuf>,
    common: cli::CommonArgs,
}

/// What a command line parses to: a run, or an explicit help request.
#[cfg_attr(test, derive(Debug))]
enum Parsed {
    Run(Args),
    Help,
}

/// Parse the arguments after the program name.  Takes the iterator as a
/// parameter (rather than reading `std::env::args` itself) so the unit tests
/// below can drive it with plain vectors.
fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut args = Args {
        spec: PathBuf::new(),
        out: None,
        ce_dir: None,
        common: cli::CommonArgs::default(),
    };
    while let Some(arg) = it.next() {
        if args.common.try_flag(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--spec" => args.spec = PathBuf::from(cli::need_value(&mut it, "--spec")?),
            "--out" => args.out = Some(PathBuf::from(cli::need_value(&mut it, "--out")?)),
            "--ce-dir" => args.ce_dir = Some(PathBuf::from(cli::need_value(&mut it, "--ce-dir")?)),
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(cli::unknown_flag(other)),
        }
    }
    if args.spec.as_os_str().is_empty() {
        return Err("--spec is required".to_string());
    }
    Ok(Parsed::Run(args))
}

/// Default trajectory path: `target/<spec-stem>-redteam.jsonl`.
fn default_out(spec_path: &Path) -> PathBuf {
    Path::new("target").join(format!("{}-redteam.jsonl", stem(spec_path)))
}

/// Default counterexample directory: `target/<spec-stem>-ce`.
fn default_ce_dir(spec_path: &Path) -> PathBuf {
    Path::new("target").join(format!("{}-ce", stem(spec_path)))
}

fn stem(spec_path: &Path) -> String {
    spec_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "redteam".to_string())
}

/// Write the counterexample artifacts of one unit: the replayable one-cell
/// campaign spec and the per-round replay trace.
fn write_counterexample(
    spec: &RedTeamSpec,
    team: &RedTeam,
    outcome: &UnitOutcome,
    ce_dir: &Path,
) -> Result<Vec<PathBuf>, String> {
    let Some(ce) = &outcome.counterexample else {
        return Ok(Vec::new());
    };
    std::fs::create_dir_all(ce_dir)
        .map_err(|e| format!("cannot create ce dir {}: {e}", ce_dir.display()))?;
    let target = &spec.targets[outcome.target];
    let ce_spec = counterexample_spec(target, &ce.graph, &ce.adversary);
    let base = format!("{}-unit{}", spec.fingerprint(), outcome.unit);
    let spec_path = ce_dir.join(format!("{base}.json"));
    std::fs::write(&spec_path, ce_spec.to_json())
        .map_err(|e| format!("cannot write {}: {e}", spec_path.display()))?;
    let mut written = vec![spec_path];
    // Re-run the minimal cell with tracing on and export the per-round
    // corruption replay.  The resolved variant can only fail if the shrunk
    // graph stopped building, which the shrinker's oracle already rejected.
    let resolved = team
        .resolved_target(outcome.target)
        .with_graph(&ce.graph)
        .map_err(|e| format!("counterexample graph no longer resolves: {e}"))?;
    let report = resolved
        .run_traced(&ce.adversary)
        .map_err(|e| format!("counterexample replay failed to run: {e}"))?;
    let replay_path = ce_dir.join(format!("{base}-replay.jsonl"));
    std::fs::write(&replay_path, replay_trace_jsonl(&report))
        .map_err(|e| format!("cannot write {}: {e}", replay_path.display()))?;
    written.push(replay_path);
    Ok(written)
}

fn run() -> Result<(), String> {
    let args = match parse_args(std::env::args().skip(1))? {
        Parsed::Run(args) => args,
        Parsed::Help => {
            println!("{USAGE}");
            return Ok(());
        }
    };
    let diag = |msg: String| {
        if !args.common.quiet {
            eprintln!("{msg}");
        }
    };
    let spec_text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("cannot read spec {}: {e}", args.spec.display()))?;
    let spec = RedTeamSpec::from_json(&spec_text)
        .map_err(|e| format!("spec {}: {e}", args.spec.display()))?;
    let out = args.out.clone().unwrap_or_else(|| default_out(&args.spec));
    let ce_dir = args
        .ce_dir
        .clone()
        .unwrap_or_else(|| default_ce_dir(&args.spec));

    let mut team = RedTeam::from_spec(&spec)
        .map_err(|e| format!("spec {}: {e}", args.spec.display()))?
        .threads(args.common.threads);
    if let Some((i, of)) = args.common.shard {
        team = team.shard(i, of);
    }
    let wanted = team.unit_indices();

    if args.common.dry_run {
        diag(format!(
            "dry run: spec {} is valid (fingerprint {})",
            args.spec.display(),
            spec.fingerprint(),
        ));
        diag(format!(
            "  {} targets x {} chains = {} units{}; 0 executed",
            spec.targets.len(),
            spec.search.chains,
            team.unit_count(),
            match args.common.shard {
                Some((i, of)) => format!(", shard {i}/{of} -> {} units", wanted.len()),
                None => String::new(),
            },
        ));
        return Ok(());
    }

    // Unit-level resume: keep the lines already on disk, run only the rest.
    let kept: Vec<(usize, String)> = if args.common.resume && out.exists() {
        let text = std::fs::read_to_string(&out)
            .map_err(|e| format!("cannot read trajectory {}: {e}", out.display()))?;
        parse_trajectory(&text, &spec.fingerprint()).map_err(|e| {
            format!(
                "trajectory {}: {e}; delete it or pick another --out",
                out.display()
            )
        })?
    } else {
        Vec::new()
    };
    let present: std::collections::HashSet<usize> = kept.iter().map(|(i, _)| *i).collect();
    let missing: Vec<usize> = wanted
        .iter()
        .copied()
        .filter(|i| !present.contains(i))
        .collect();

    diag(format!(
        "redteam {} (fingerprint {}): {} units{}{}",
        args.spec.display(),
        spec.fingerprint(),
        team.unit_count(),
        match args.common.shard {
            Some((i, of)) => format!(", shard {i}/{of} -> {} units", wanted.len()),
            None => String::new(),
        },
        if args.common.resume {
            format!(
                ", resume: {} units to run ({} already present)",
                missing.len(),
                present.len()
            )
        } else {
            String::new()
        },
    ));

    if missing.is_empty() {
        diag(format!(
            "nothing to do: trajectory {} already covers every unit",
            out.display()
        ));
        return Ok(());
    }

    let t0 = Instant::now();
    let outcomes = team.run_units(&missing);
    let wall = t0.elapsed().as_secs_f64();
    let found = outcomes
        .iter()
        .filter(|o| o.counterexample.is_some())
        .count();
    diag(format!(
        "{} units executed in {wall:.2}s; {found} counterexample(s) found",
        outcomes.len(),
    ));

    // The machine-parseable product of this run: one unit line per executed
    // unit, on stdout (the same lines the trajectory file gets).
    let fresh: Vec<(usize, String)> = outcomes
        .iter()
        .map(|o| (o.unit, unit_line(&spec, o)))
        .collect();
    for (_, line) in &fresh {
        println!("{line}");
    }

    // Counterexample artifacts: replayable spec + replay trace per failure.
    for outcome in &outcomes {
        for path in write_counterexample(&spec, &team, outcome, &ce_dir)? {
            diag(format!("wrote {}", path.display()));
        }
    }

    // Crash-safe trajectory rewrite: header + union of kept and fresh unit
    // lines in global index order.  A kill mid-write leaves either the old
    // file or the new one, so completed units always survive.
    let mut lines = kept;
    lines.extend(fresh);
    let text = trajectory(&spec, &lines);
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let tmp = out.with_extension("jsonl.tmp");
    std::fs::write(&tmp, &text)
        .map_err(|e| format!("cannot write trajectory {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &out).map_err(|e| {
        format!(
            "cannot move trajectory into place at {}: {e}",
            out.display()
        )
    })?;
    diag(format!(
        "wrote {} trajectory lines ({} units) to {}",
        lines.len() + 1,
        lines.len(),
        out.display()
    ));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Parsed, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_reported_by_name() {
        let err = parse(&["--spec", "s.json", "--frobnicate"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "got: {err}");
    }

    #[test]
    fn spec_is_required() {
        assert!(parse(&["--resume"]).unwrap_err().contains("--spec"));
    }

    #[test]
    fn all_flags_parse() {
        let parsed = parse(&[
            "--spec",
            "s.json",
            "--out",
            "t.jsonl",
            "--ce-dir",
            "ce",
            "--threads",
            "3",
            "--shard",
            "1/4",
            "--resume",
            "--dry-run",
            "--quiet",
        ])
        .unwrap();
        let Parsed::Run(args) = parsed else {
            panic!("expected a run");
        };
        assert_eq!(args.common.threads, 3);
        assert_eq!(args.common.shard, Some((1, 4)));
        assert!(args.common.resume && args.common.dry_run && args.common.quiet);
        assert_eq!(args.ce_dir.as_deref(), Some(Path::new("ce")));
    }

    #[test]
    fn bad_shard_forms_are_rejected() {
        assert!(parse(&["--spec", "s", "--shard", "3"]).is_err());
        assert!(parse(&["--spec", "s", "--shard", "4/4"]).is_err());
        assert!(parse(&["--spec", "s", "--shard", "x/2"]).is_err());
    }

    #[test]
    fn default_paths_derive_from_spec_stem() {
        let spec = Path::new("specs/redteam-v1-frontier.json");
        assert_eq!(
            default_out(spec),
            Path::new("target/redteam-v1-frontier-redteam.jsonl")
        );
        assert_eq!(
            default_ce_dir(spec),
            Path::new("target/redteam-v1-frontier-ce")
        );
    }
}
