//! The `campaign` CLI: run a declarative campaign spec end to end.
//!
//! ```text
//! campaign --spec specs/e16-small.json [--out FILE] [--threads N]
//!          [--shard I/OF] [--resume]
//! ```
//!
//! Reads a JSON [`CampaignSpec`], resolves it through the graph / adversary /
//! compiler registries (`Campaign::from_spec`), runs the grid on the
//! deterministic parallel engine, prints the summary table and writes a
//! trajectory JSONL file: one `kind:"campaign"` header line (keyed by the
//! spec's stable fingerprint) followed by one `kind:"cell"` line per cell in
//! global enumeration order.
//!
//! `--resume` makes the run **cell-level incremental**: cells whose lines are
//! already present in the trajectory file are skipped, only missing cells
//! execute, and the file is rewritten with the union in index order.  A
//! trajectory written for a different spec (fingerprint mismatch) is refused
//! rather than silently mixed.  `--shard I/OF` restricts the run to the
//! cells with `index % OF == I`; shard outputs merge cleanly because every
//! cell line depends only on the cell's global index.
//!
//! **Stream contract**: stdout carries machine-parseable output only (the
//! `kind:"summary"` JSONL lines of the executed batch); everything narrative
//! — progress, tables, timings — goes to stderr, and `--quiet` silences it.
//! `--trace-dir DIR` turns on deterministic event tracing
//! ([`obs::TraceSpec::ring`]): each executed cell's event stream is written
//! to `DIR/<fingerprint>-cell<index>.jsonl` and a per-phase wall-time table
//! is printed to stderr.

use mobile_congest::cli;
use mobile_congest::harness::campaign::{cell_json, summary_json, GroupSummary};
use mobile_congest::harness::json::{self, JsonValue};
use mobile_congest::harness::report::trajectory_header;
use mobile_congest::harness::{Campaign, CampaignSpec};
use mobile_congest::obs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str =
    "usage: campaign --spec FILE [--out FILE] [--threads N] [--shard I/OF] [--resume] [--dry-run]
                [--trace-dir DIR] [--no-cache] [--quiet]

  --spec FILE      campaign spec JSON (see specs/e16-small.json)
  --out FILE       trajectory JSONL (default: target/<spec-stem>-trajectory.jsonl)
  --threads N      worker threads (default: all cores; never changes results)
  --shard I/OF     run only cells with index % OF == I (multi-machine fan-out)
  --resume         skip cells already present in the trajectory file
  --dry-run        validate only: parse + resolve the spec, print the
                   fingerprint and cell counts, execute nothing
  --trace-dir DIR  record deterministic event traces: one
                   DIR/<fingerprint>-cell<index>.jsonl per executed cell,
                   plus a per-phase wall-time profile table on stderr
  --no-cache       prepare compile artifacts per cell instead of once per
                   (graph, compiler) pair (results identical; for measurement)
  --quiet          suppress stderr diagnostics (stdout and errors unaffected)";

#[cfg_attr(test, derive(Debug))]
struct Args {
    spec: PathBuf,
    out: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    no_cache: bool,
    common: cli::CommonArgs,
}

/// What a command line parses to: a run, or an explicit help request.
#[cfg_attr(test, derive(Debug))]
enum Parsed {
    Run(Args),
    Help,
}

/// Parse the arguments after the program name.  Takes the iterator as a
/// parameter (rather than reading `std::env::args` itself) so the unit tests
/// below can drive it with plain vectors.
fn parse_args(mut it: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut args = Args {
        spec: PathBuf::new(),
        out: None,
        trace_dir: None,
        no_cache: false,
        common: cli::CommonArgs::default(),
    };
    while let Some(arg) = it.next() {
        if args.common.try_flag(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--spec" => args.spec = PathBuf::from(cli::need_value(&mut it, "--spec")?),
            "--out" => args.out = Some(PathBuf::from(cli::need_value(&mut it, "--out")?)),
            "--trace-dir" => {
                args.trace_dir = Some(PathBuf::from(cli::need_value(&mut it, "--trace-dir")?));
            }
            "--no-cache" => args.no_cache = true,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(cli::unknown_flag(other)),
        }
    }
    if args.spec.as_os_str().is_empty() {
        return Err("--spec is required".to_string());
    }
    Ok(Parsed::Run(args))
}

/// Default trajectory path: `target/<spec-stem>-trajectory.jsonl`.
fn default_out(spec_path: &Path) -> PathBuf {
    let stem = spec_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "campaign".to_string());
    Path::new("target").join(format!("{stem}-trajectory.jsonl"))
}

/// Read an existing trajectory: verify the header belongs to `spec`, return
/// the kept `(index, line)` pairs of well-formed cell lines.
fn read_trajectory(path: &Path, spec: &CampaignSpec) -> Result<Vec<(usize, String)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trajectory {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("trajectory {} is empty", path.display()))?;
    let header = json::parse(header)
        .map_err(|e| format!("trajectory {} has a malformed header: {e}", path.display()))?;
    if header.get("kind").and_then(JsonValue::as_str) != Some("campaign") {
        return Err(format!(
            "trajectory {} does not start with a campaign header",
            path.display()
        ));
    }
    let found = header
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .unwrap_or("");
    let expected = spec.fingerprint();
    if found != expected {
        return Err(format!(
            "trajectory {} belongs to a different campaign (fingerprint {found}, spec is {expected}); \
             delete it or pick another --out",
            path.display()
        ));
    }
    let mut cells = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = json::parse(line) else {
            continue; // a torn partial write — the cell will simply re-run
        };
        if value.get("kind").and_then(JsonValue::as_str) != Some("cell") {
            continue;
        }
        if let Some(index) = value.get("index").and_then(JsonValue::as_usize) {
            cells.push((index, line.to_string()));
        }
    }
    Ok(cells)
}

fn run() -> Result<(), String> {
    let args = match parse_args(std::env::args().skip(1))? {
        Parsed::Run(args) => args,
        Parsed::Help => {
            println!("{USAGE}");
            return Ok(());
        }
    };
    // Diagnostics go to stderr so stdout stays machine-parseable; `--quiet`
    // silences them without touching stdout or error reporting.
    let diag = |msg: String| {
        if !args.common.quiet {
            eprintln!("{msg}");
        }
    };
    let spec_text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("cannot read spec {}: {e}", args.spec.display()))?;
    let spec = CampaignSpec::from_json(&spec_text)
        .map_err(|e| format!("spec {}: {e}", args.spec.display()))?;
    let out = args.out.clone().unwrap_or_else(|| default_out(&args.spec));

    let mut campaign = Campaign::from_spec(&spec)
        .map_err(|e| format!("spec {}: {e}", args.spec.display()))?
        .threads(args.common.threads);
    if let Some((i, of)) = args.common.shard {
        campaign = campaign.shard(i, of);
    }
    if args.trace_dir.is_some() {
        campaign = campaign.trace(obs::TraceSpec::ring());
    }
    if args.no_cache {
        campaign = campaign.without_artifact_cache();
    }
    let wanted = campaign.cell_indices();

    // Validate-only mode: the spec parsed and resolved through every
    // registry, so report what a real run would cover and stop here.
    if args.common.dry_run {
        diag(format!(
            "dry run: spec {} is valid (fingerprint {})",
            args.spec.display(),
            spec.fingerprint(),
        ));
        diag(format!(
            "  {} cells total{}; 0 executed",
            spec.cell_count(),
            match args.common.shard {
                Some((i, of)) => format!(", shard {i}/{of} -> {} cells", wanted.len()),
                None => String::new(),
            },
        ));
        return Ok(());
    }

    // Cell-level resume: keep the lines already on disk, run only the rest.
    let kept: Vec<(usize, String)> = if args.common.resume && out.exists() {
        read_trajectory(&out, &spec)?
    } else {
        Vec::new()
    };
    let present: std::collections::HashSet<usize> = kept.iter().map(|(i, _)| *i).collect();
    let missing: Vec<usize> = wanted
        .iter()
        .copied()
        .filter(|i| !present.contains(i))
        .collect();

    diag(format!(
        "campaign {} (fingerprint {}): {} cells{}{}",
        args.spec.display(),
        spec.fingerprint(),
        spec.cell_count(),
        match args.common.shard {
            Some((i, of)) => format!(", shard {i}/{of} -> {} cells", wanted.len()),
            None => String::new(),
        },
        if args.common.resume {
            format!(
                ", resume: {} cells to run ({} already present)",
                missing.len(),
                present.len()
            )
        } else {
            String::new()
        },
    ));

    if missing.is_empty() {
        diag(format!(
            "nothing to do: trajectory {} already covers every cell",
            out.display()
        ));
        return Ok(());
    }

    let t0 = Instant::now();
    let report = campaign.run_cells(&missing);
    let wall = t0.elapsed().as_secs_f64();
    let summaries = report.summaries();
    if !args.common.quiet {
        eprint!("{}", report.to_table_with(&summaries));
    }
    diag(format!(
        "{} cells executed ({} skipped by validation) in {wall:.2}s; protected cells agree: {}",
        report.cells.len(),
        report.skipped_count(),
        report.all_protected_cells_agree(),
    ));
    // Cache effectiveness, for humans and for the CI quality gate (which
    // greps this stderr line).  Traced runs bypass the cache, so a zero
    // lookup count there is expected, not a bug.
    if let Some(cache) = campaign.artifact_cache_handle() {
        diag(format!(
            "artifact cache: {} hits, {} misses over {} (graph, compiler) pairs (hit rate {:.2})",
            cache.hits(),
            cache.misses(),
            cache.len(),
            cache.hit_rate(),
        ));
    }
    // The machine-parseable product of this run: one summary line per grid
    // cell, on stdout.
    for s in &summaries {
        println!("{}", summary_json(s));
    }

    // Event traces: one JSONL stream per executed cell, keyed by the spec
    // fingerprint so files from different campaigns never collide.
    if let Some(trace_dir) = &args.trace_dir {
        std::fs::create_dir_all(trace_dir)
            .map_err(|e| format!("cannot create trace dir {}: {e}", trace_dir.display()))?;
        let mut written = 0usize;
        for cell in &report.cells {
            let Ok(cell_report) = &cell.outcome else {
                continue;
            };
            let path = trace_dir.join(format!("{}-cell{}.jsonl", spec.fingerprint(), cell.index));
            let file = std::fs::File::create(&path)
                .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
            cell_report
                .trace
                .write_jsonl(std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
            written += 1;
        }
        diag(format!(
            "wrote {written} trace files to {}",
            trace_dir.display()
        ));
        if !args.common.quiet {
            eprint!("{}", profile_table(&summaries));
        }
    }

    // Rewrite the trajectory: header + the union of kept and fresh cell
    // lines, in global index order (cell lines are pure functions of their
    // cell, so a resumed file is byte-identical to a from-scratch one).
    let mut lines: Vec<(usize, String)> = kept;
    lines.extend(report.cells.iter().map(|c| (c.index, cell_json(c))));
    lines.sort_by_key(|(i, _)| *i);
    let mut text = trajectory_header(&spec);
    text.push('\n');
    for (_, line) in &lines {
        text.push_str(line);
        text.push('\n');
    }
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    // Crash-safe rewrite: never truncate the file --resume depends on.  A
    // kill mid-write leaves either the old trajectory or the new one, so the
    // completed cells survive and the worst case is re-running this batch.
    let tmp = out.with_extension("jsonl.tmp");
    std::fs::write(&tmp, &text)
        .map_err(|e| format!("cannot write trajectory {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &out).map_err(|e| {
        format!(
            "cannot move trajectory into place at {}: {e}",
            out.display()
        )
    })?;
    diag(format!(
        "wrote {} trajectory lines ({} cells) to {}",
        lines.len() + 1,
        lines.len(),
        out.display()
    ));
    Ok(())
}

/// The per-grid-cell wall-time profile table (`--trace-dir` runs only).
fn profile_table(summaries: &[GroupSummary]) -> String {
    let mut out = format!(
        "{:<12} {:<22} {:<22} {:<14} {:>7} {:>10}\n",
        "graph", "adversary", "compiler", "phase", "spans", "ms"
    );
    for s in summaries {
        for (phase, spans, ms) in &s.profile {
            out.push_str(&format!(
                "{:<12} {:<22} {:<22} {:<14} {:>7} {:>10.2}\n",
                s.graph, s.adversary, s.compiler, phase, spans, ms
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Parsed, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_reported_by_name() {
        let err = parse(&["--spec", "s.json", "--frobnicate"]).unwrap_err();
        assert!(
            err.contains("--frobnicate"),
            "error must name the offending flag, got: {err}"
        );
        let err = parse(&["-x"]).unwrap_err();
        assert!(err.contains("`-x`"), "got: {err}");
    }

    #[test]
    fn dry_run_and_the_other_flags_parse() {
        let Parsed::Run(args) = parse(&[
            "--spec",
            "s.json",
            "--threads",
            "3",
            "--shard",
            "1/4",
            "--resume",
            "--dry-run",
            "--trace-dir",
            "target/traces",
            "--no-cache",
            "--quiet",
        ])
        .unwrap() else {
            panic!("expected a run");
        };
        assert_eq!(args.spec, PathBuf::from("s.json"));
        assert_eq!(args.common.threads, 3);
        assert_eq!(args.common.shard, Some((1, 4)));
        assert!(args.common.resume);
        assert!(args.common.dry_run);
        assert_eq!(args.trace_dir, Some(PathBuf::from("target/traces")));
        assert!(args.no_cache);
        assert!(args.common.quiet);
    }

    #[test]
    fn trace_dir_needs_a_value() {
        assert!(parse(&["--spec", "s", "--trace-dir"])
            .unwrap_err()
            .contains("--trace-dir"));
    }

    #[test]
    fn spec_is_required_and_help_short_circuits() {
        assert!(parse(&[]).unwrap_err().contains("--spec"));
        assert!(matches!(parse(&["--help"]), Ok(Parsed::Help)));
        assert!(matches!(
            parse(&["-h", "--definitely-not-a-flag"]),
            Ok(Parsed::Help)
        ));
    }

    #[test]
    fn malformed_shards_are_rejected() {
        assert!(parse(&["--spec", "s", "--shard", "4"])
            .unwrap_err()
            .contains("I/OF"));
        assert!(parse(&["--spec", "s", "--shard", "4/4"])
            .unwrap_err()
            .contains("out of range"));
        assert!(parse(&["--spec", "s", "--shard", "0/0"])
            .unwrap_err()
            .contains("out of range"));
    }
}
