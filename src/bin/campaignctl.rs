//! The `campaignctl` client binary: drive a running `campaignd` server.
//!
//! ```text
//! campaignctl [--addr HOST:PORT] COMMAND ...
//!
//!   submit --spec FILE [--watch]      submit a campaign spec
//!   status FP                         one job's status document
//!   list                              every job
//!   summary FP                        the job's summary JSONL
//!   trajectory FP                     the job's trajectory JSONL
//!   watch FP                          poll until the job is terminal
//!   cancel FP                         cancel a job (resubmit resumes it)
//!   query --facet F [--stat S] ...    compare a facet statistic across jobs
//! ```
//!
//! **Stream contract**: stdout carries the server's machine-parseable
//! documents only (JSON / JSONL); progress while watching goes to stderr,
//! and `--quiet` silences it.  Exit code 0 requires the command to succeed
//! — for `submit --watch` and `watch` that includes the job finishing in
//! the `done` state.

use mobile_congest::campaignd::api_types::{JobStatus, QueryParams};
use mobile_congest::campaignd::client::Client;
use mobile_congest::cli;
use std::process::ExitCode;

const USAGE: &str = "usage: campaignctl [--addr HOST:PORT] [--quiet] COMMAND ...

  submit --spec FILE [--watch]   submit a spec (idempotent on its fingerprint);
                                 --watch polls until the job is terminal
  status FP                      print one job's status JSON
  list                           print the job-list JSON
  summary FP                     print the job's summary JSONL
  trajectory FP                  print the job's trajectory JSONL
  watch FP                       poll until the job is terminal
  cancel FP                      cancel a job (already-run cells stay durable)
  query --facet F [--stat S] [--graph G] [--adversary A] [--compiler C]
        [--jobs FP1,FP2]         compare a facet statistic across jobs

  --addr HOST:PORT               server address (default 127.0.0.1:7070)
  --quiet                        suppress stderr progress";

/// How often `watch` polls the server.
const POLL_MS: u64 = 250;

/// The slice of the shared flag surface this client takes: everything else
/// (threads, shards, resume) is the server's business.
const COMMON: &[&str] = &["--quiet"];

/// The global flags preceding the command word.
#[cfg_attr(test, derive(Debug))]
struct Globals {
    addr: String,
    common: cli::CommonArgs,
    command: String,
}

/// What the pre-command part of an argument list parses to.
#[cfg_attr(test, derive(Debug))]
enum Parsed {
    Run(Globals),
    Help,
}

/// Parse the global flags up to and including the command word, leaving the
/// command's own arguments on the iterator.  Split out of [`run`] so the
/// unit tests below can drive it with plain vectors.
fn parse_globals(it: &mut dyn Iterator<Item = String>) -> Result<Parsed, String> {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut common = cli::CommonArgs::default();
    loop {
        match it.next() {
            Some(arg) => {
                if common.try_flag_among(&arg, it, COMMON)? {
                    continue;
                }
                match arg.as_str() {
                    "--addr" => addr = cli::need_value(it, "--addr")?,
                    "--help" | "-h" => return Ok(Parsed::Help),
                    flag if flag.starts_with('-') => return Err(cli::unknown_flag(flag)),
                    command => {
                        return Ok(Parsed::Run(Globals {
                            addr,
                            common,
                            command: command.to_string(),
                        }))
                    }
                }
            }
            None => return Err("a command is required".to_string()),
        }
    }
}

fn run() -> Result<(), String> {
    let mut it = std::env::args().skip(1);
    let Globals {
        addr,
        common,
        command,
    } = match parse_globals(&mut it)? {
        Parsed::Run(globals) => globals,
        Parsed::Help => {
            println!("{USAGE}");
            return Ok(());
        }
    };
    let quiet = common.quiet;
    let client = Client::new(addr);
    let progress = |status: &JobStatus| {
        if !quiet {
            eprintln!(
                "job {}: {} ({}/{} cells)",
                status.fingerprint, status.state, status.cells_done, status.cells_total
            );
        }
    };
    // A watched job must actually finish: cancelled/failed is an error exit.
    let check_done = |status: JobStatus| -> Result<(), String> {
        println!("{}", status.to_json());
        if status.state == mobile_congest::campaignd::JobState::Done {
            Ok(())
        } else {
            Err(format!(
                "job {} ended in state {}{}",
                status.fingerprint,
                status.state,
                status
                    .error
                    .as_deref()
                    .map(|e| format!(": {e}"))
                    .unwrap_or_default(),
            ))
        }
    };

    match command.as_str() {
        "submit" => {
            let mut spec = None;
            let mut watch = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--spec" => spec = Some(cli::need_value(&mut it, "--spec")?),
                    "--watch" => watch = true,
                    other => return Err(cli::unknown_flag(other)),
                }
            }
            let spec = spec.ok_or_else(|| "submit needs --spec FILE".to_string())?;
            let status = client.submit_file(std::path::Path::new(&spec))?;
            if watch {
                let fingerprint = status.fingerprint.clone();
                progress(&status);
                check_done(client.watch(&fingerprint, POLL_MS, progress)?)
            } else {
                println!("{}", status.to_json());
                Ok(())
            }
        }
        "status" => {
            let fp = cli::need_value(&mut it, "status")?;
            println!("{}", client.status(&fp)?.to_json());
            Ok(())
        }
        "list" => {
            println!("{}", client.jobs()?.to_json());
            Ok(())
        }
        "summary" => {
            let fp = cli::need_value(&mut it, "summary")?;
            print!("{}", client.summary(&fp)?);
            Ok(())
        }
        "trajectory" => {
            let fp = cli::need_value(&mut it, "trajectory")?;
            print!("{}", client.trajectory(&fp)?);
            Ok(())
        }
        "watch" => {
            let fp = cli::need_value(&mut it, "watch")?;
            check_done(client.watch(&fp, POLL_MS, progress)?)
        }
        "cancel" => {
            let fp = cli::need_value(&mut it, "cancel")?;
            println!("{}", client.cancel(&fp)?.to_json());
            Ok(())
        }
        "query" => {
            let mut facet = None;
            let mut params = QueryParams::new("", "mean");
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--facet" => facet = Some(cli::need_value(&mut it, "--facet")?),
                    "--stat" => params.stat = cli::need_value(&mut it, "--stat")?,
                    "--graph" => params.graph = Some(cli::need_value(&mut it, "--graph")?),
                    "--adversary" => {
                        params.adversary = Some(cli::need_value(&mut it, "--adversary")?)
                    }
                    "--compiler" => params.compiler = Some(cli::need_value(&mut it, "--compiler")?),
                    "--jobs" => {
                        params.jobs = cli::need_value(&mut it, "--jobs")?
                            .split(',')
                            .map(str::to_string)
                            .collect();
                    }
                    other => return Err(cli::unknown_flag(other)),
                }
            }
            params.facet = facet.ok_or_else(|| "query needs --facet".to_string())?;
            println!("{}", client.query(&params)?.to_json());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Parsed, String> {
        let mut it = argv
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter();
        parse_globals(&mut it)
    }

    #[test]
    fn globals_parse_before_the_command_word() {
        let Parsed::Run(globals) = parse(&["--addr", "0.0.0.0:9999", "--quiet", "list"]).unwrap()
        else {
            panic!("expected a run");
        };
        assert_eq!(globals.addr, "0.0.0.0:9999");
        assert!(globals.common.quiet);
        assert_eq!(globals.command, "list");
    }

    #[test]
    fn the_command_word_stops_global_parsing() {
        let mut it = ["status", "FP123", "--quiet"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter();
        let Parsed::Run(globals) = parse_globals(&mut it).unwrap() else {
            panic!("expected a run");
        };
        assert_eq!(globals.command, "status");
        // The command's own arguments stay on the iterator, untouched.
        assert_eq!(it.next().as_deref(), Some("FP123"));
        assert_eq!(it.next().as_deref(), Some("--quiet"));
    }

    #[test]
    fn a_command_is_required_and_help_short_circuits() {
        assert_eq!(parse(&[]).unwrap_err(), "a command is required");
        assert_eq!(parse(&["--quiet"]).unwrap_err(), "a command is required");
        assert!(matches!(parse(&["--help"]), Ok(Parsed::Help)));
        assert!(matches!(parse(&["-h", "submit"]), Ok(Parsed::Help)));
    }

    #[test]
    fn flags_outside_this_clients_surface_are_unknown() {
        assert_eq!(
            parse(&["--frobnicate", "list"]).unwrap_err(),
            "unknown flag `--frobnicate`"
        );
        // Shared flags the client does not take fail the same way.
        for flag in ["--threads", "--shard", "--resume", "--dry-run"] {
            let err = parse(&[flag, "2", "list"]).unwrap_err();
            assert_eq!(err, format!("unknown flag `{flag}`"));
        }
        assert_eq!(parse(&["--addr"]).unwrap_err(), "--addr needs a value");
    }
}
