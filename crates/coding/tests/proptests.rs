//! Property-based tests for the coding crate: field axioms, Reed-Solomon
//! round-trips under bounded errors, Vandermonde extraction bijectivity and
//! hashing determinism.

use coding::field::{lagrange_interpolate, poly_eval, Field};
use coding::{BitExtractor, Fp61, Gf256, Gf2_16, KWiseHash, ReedSolomon, TranscriptHash};
use proptest::prelude::*;

fn gf16(x: u64) -> Gf2_16 {
    Gf2_16::from_u64(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gf2_16_field_axioms(a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
        let (a, b, c) = (Gf2_16(a), Gf2_16(b), Gf2_16(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Gf2_16::ZERO, a);
        prop_assert_eq!(a * Gf2_16::ONE, a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inv(), Gf2_16::ONE);
        }
    }

    #[test]
    fn gf256_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!((a * b) * c, a * (b * c));
        if !a.is_zero() {
            prop_assert_eq!(a * a.inv(), Gf256::ONE);
        }
    }

    #[test]
    fn fp61_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (Fp61::from_u64(a), Fp61::from_u64(b), Fp61::from_u64(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Fp61::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inv(), Fp61::ONE);
        }
    }

    #[test]
    fn interpolation_recovers_polynomial(coeffs in prop::collection::vec(any::<u16>(), 1..8)) {
        let coeffs: Vec<Gf2_16> = coeffs.into_iter().map(Gf2_16).collect();
        let points: Vec<(Gf2_16, Gf2_16)> = (1..=coeffs.len() as u64)
            .map(|x| (gf16(x), poly_eval(&coeffs, gf16(x))))
            .collect();
        let rec = lagrange_interpolate(&points);
        for x in 0..30u64 {
            prop_assert_eq!(poly_eval(&rec, gf16(x)), poly_eval(&coeffs, gf16(x)));
        }
    }

    #[test]
    fn rs_roundtrip_with_errors(
        msg in prop::collection::vec(any::<u16>(), 1..8),
        extra in 1usize..12,
        err_seed in any::<u64>(),
    ) {
        let ell = msg.len();
        let k = ell + extra;
        let rs = ReedSolomon::<Gf2_16>::new(ell, k).unwrap();
        let msg: Vec<Gf2_16> = msg.into_iter().map(Gf2_16).collect();
        let mut cw = rs.encode(&msg).unwrap();
        // Inject up to error_capacity errors at pseudo-random positions.
        let cap = rs.error_capacity();
        let mut s = err_seed;
        let nerr = if cap == 0 { 0 } else { (err_seed as usize) % (cap + 1) };
        let mut positions = std::collections::HashSet::new();
        while positions.len() < nerr {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((s >> 33) as usize % k);
        }
        for &p in &positions {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cw[p] = cw[p] + Gf2_16::from_u64(1 + (s >> 40));
        }
        prop_assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn bit_extraction_depends_only_on_hidden_inputs_linearly(
        n in 3usize..10,
        t_frac in 0usize..100,
        pads_a in prop::collection::vec(any::<u16>(), 10),
        pads_b in prop::collection::vec(any::<u16>(), 10),
    ) {
        let t = (t_frac * (n - 1)) / 100;
        let ex = BitExtractor::<Gf2_16>::new(n, t).unwrap();
        let a: Vec<Gf2_16> = pads_a[..n].iter().map(|&x| Gf2_16(x)).collect();
        let b: Vec<Gf2_16> = pads_b[..n].iter().map(|&x| Gf2_16(x)).collect();
        let sum: Vec<Gf2_16> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        // Linearity: extract(a + b) = extract(a) + extract(b) — the structural
        // property underlying the bijectivity argument of Theorem 2.1.
        let ea = ex.extract(&a).unwrap();
        let eb = ex.extract(&b).unwrap();
        let es = ex.extract(&sum).unwrap();
        for i in 0..ea.len() {
            prop_assert_eq!(es[i], ea[i] + eb[i]);
        }
        prop_assert_eq!(ea.len(), n - t);
    }

    #[test]
    fn kwise_hash_in_range(seed in any::<u64>(), c in 1usize..6, range in 1u64..1_000_000, x in any::<u64>()) {
        let h = KWiseHash::from_seed(seed, c, range);
        prop_assert!(h.hash(x) < range);
    }

    #[test]
    fn transcript_hash_equal_iff_inputs_equal_whp(
        words in prop::collection::vec(any::<u64>(), 0..40),
        flip_at in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let th = TranscriptHash::from_seed(seed);
        prop_assert_eq!(th.fingerprint(&words), th.fingerprint(&words.clone()));
        if !words.is_empty() {
            let mut other = words.clone();
            let i = flip_at.index(words.len());
            other[i] ^= 0x1;
            prop_assert_ne!(th.fingerprint(&words), th.fingerprint(&other));
        }
    }
}
