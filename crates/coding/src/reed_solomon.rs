//! Reed–Solomon codes with Berlekamp–Welch error decoding.
//!
//! Theorem 1.8 of the paper uses an `[ℓ, k, δ]_q` Reed–Solomon code with
//! relative distance `δ = (k - ℓ + 1)/k`.  The `ECCSafeBroadcast` procedure
//! (Lemma 3.6) encodes the root's message into `k` shares, ships one share per
//! tree of the packing, and lets every node decode the *closest codeword* from
//! the shares it received — a bounded fraction of which were corrupted by the
//! mobile adversary.  Berlekamp–Welch recovers the message as long as fewer
//! than `(k - ℓ + 1)/2` shares are wrong, which is exactly the guarantee the
//! lemma needs.
//!
//! # Precomputation
//!
//! Construction is the expensive step: [`ReedSolomon::new`] precomputes the
//! generator, interpolation and parity-check matrices so that encoding, the
//! [`ReedSolomon::syndromes`] codeword check and the clean-word fast path of
//! [`ReedSolomon::decode`] are all plain matrix–vector products over
//! [`Field::addmul_slice`] — which the per-field kernels in
//! [`crate::kernels`] vectorize.  Callers encoding or decoding many words
//! with the same `(ℓ, k)` should build the code once and reuse it.

use crate::field::{lagrange_interpolate, poly_degree, poly_divmod, poly_eval, Field};
use crate::{CodingError, Result};

/// `y = A·v` with `A` stored column-major: `y = Σ_j v_j · col_j`, each term a
/// fused [`Field::addmul_slice`] so the per-field kernels carry the hot loop.
fn matvec<F: Field>(cols: &[Vec<F>], v: &[F]) -> Vec<F> {
    let rows = cols.first().map_or(0, Vec::len);
    let mut y = vec![F::ZERO; rows];
    for (col, &vj) in cols.iter().zip(v.iter()) {
        F::addmul_slice(&mut y, col, vj);
    }
    y
}

/// A Reed–Solomon code with message length `ell` and block length `k` over `F`.
///
/// Codewords are evaluations of the degree-`< ell` message polynomial at the
/// canonical points `1, 2, …, k`.
#[derive(Debug, Clone)]
pub struct ReedSolomon<F: Field> {
    ell: usize,
    k: usize,
    points: Vec<F>,
    /// Generator matrix, column-major: `gen_cols[j][i] = x_i^j`, so a
    /// codeword is `Σ_j m_j · gen_cols[j]`.
    gen_cols: Vec<Vec<F>>,
    /// Interpolation matrix, column-major: the coefficients of the `j`-th
    /// Lagrange basis polynomial over the first `ℓ` points, so the message
    /// behind a clean word is `Σ_j head_j · interp_cols[j]`.
    interp_cols: Vec<Vec<F>>,
    /// Parity-check matrix, column-major: the `j`-th basis polynomial
    /// evaluated at the `k − ℓ` tail points, so the tail a clean word must
    /// carry given its head is `Σ_j head_j · parity_cols[j]`.
    parity_cols: Vec<Vec<F>>,
}

impl<F: Field> ReedSolomon<F> {
    /// Create a code with message length `ell` and block length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParameters`] when `ell == 0`, `ell > k`, or
    /// `k` exceeds the number of non-zero field elements.
    pub fn new(ell: usize, k: usize) -> Result<Self> {
        if ell == 0 {
            return Err(CodingError::InvalidParameters(
                "message length must be positive".into(),
            ));
        }
        if ell > k {
            return Err(CodingError::InvalidParameters(format!(
                "message length {ell} exceeds block length {k}"
            )));
        }
        if k as u64 >= F::order() {
            return Err(CodingError::InvalidParameters(format!(
                "block length {k} does not fit in field of order {}",
                F::order()
            )));
        }
        let points: Vec<F> = (1..=k as u64).map(F::from_u64).collect();
        // Generator matrix, column-major: gen_cols[j][i] = x_i^j.
        let mut gen_cols = vec![vec![F::ZERO; k]; ell];
        for (i, &x) in points.iter().enumerate() {
            let mut p = F::ONE;
            for col in gen_cols.iter_mut() {
                col[i] = p;
                p = p * x;
            }
        }
        // The Lagrange basis polynomials over the head points feed both the
        // interpolation matrix (their coefficients) and the parity-check
        // matrix (their evaluations at the tail points).
        let mut interp_cols = Vec::with_capacity(ell);
        let mut parity_cols = Vec::with_capacity(ell);
        for j in 0..ell {
            let unit: Vec<(F, F)> = (0..ell)
                .map(|i| (points[i], if i == j { F::ONE } else { F::ZERO }))
                .collect();
            let mut basis = lagrange_interpolate(&unit);
            basis.resize(ell, F::ZERO);
            parity_cols.push(
                points[ell..]
                    .iter()
                    .map(|&x| poly_eval(&basis, x))
                    .collect(),
            );
            interp_cols.push(basis);
        }
        Ok(ReedSolomon {
            ell,
            k,
            points,
            gen_cols,
            interp_cols,
            parity_cols,
        })
    }

    /// Message length `ℓ`.
    pub fn message_len(&self) -> usize {
        self.ell
    }

    /// Block length `k`.
    pub fn block_len(&self) -> usize {
        self.k
    }

    /// Number of symbol errors the decoder is guaranteed to correct:
    /// `⌊(k - ℓ)/2⌋`.
    pub fn error_capacity(&self) -> usize {
        (self.k - self.ell) / 2
    }

    /// Encode a message of `ℓ` symbols into a codeword of `k` symbols.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::LengthMismatch`] if the message length is wrong.
    pub fn encode(&self, message: &[F]) -> Result<Vec<F>> {
        if message.len() != self.ell {
            return Err(CodingError::LengthMismatch {
                expected: self.ell,
                got: message.len(),
            });
        }
        Ok(matvec(&self.gen_cols, message))
    }

    /// The `k − ℓ` parity syndromes of a received word: the tail symbols the
    /// word's head predicts (via the precomputed parity-check matrix) minus
    /// the tail symbols actually received.  All-zero iff `received` is a
    /// codeword.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::LengthMismatch`] for wrong input length.
    pub fn syndromes(&self, received: &[F]) -> Result<Vec<F>> {
        if received.len() != self.k {
            return Err(CodingError::LengthMismatch {
                expected: self.k,
                got: received.len(),
            });
        }
        let mut s = matvec(&self.parity_cols, &received[..self.ell]);
        for (sr, &r) in s.iter_mut().zip(received[self.ell..].iter()) {
            *sr = *sr - r;
        }
        Ok(s)
    }

    /// Decode a (possibly corrupted) word of `k` symbols back to the `ℓ`-symbol
    /// message, correcting up to [`Self::error_capacity`] errors using the
    /// Berlekamp–Welch algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::DecodingFailure`] if more errors occurred than the
    /// code can correct, and [`CodingError::LengthMismatch`] for wrong input length.
    pub fn decode(&self, received: &[F]) -> Result<Vec<F>> {
        if received.len() != self.k {
            return Err(CodingError::LengthMismatch {
                expected: self.k,
                got: received.len(),
            });
        }
        // Fast path: a word with all-zero syndromes is already a codeword —
        // read the message off the head with the interpolation matrix.
        if self
            .syndromes(received)
            .expect("length checked above")
            .iter()
            .all(|s| s.is_zero())
        {
            return Ok(matvec(&self.interp_cols, &received[..self.ell]));
        }
        let max_e = self.error_capacity();
        for e in (1..=max_e).rev() {
            if let Some(msg) = self.berlekamp_welch(received, e) {
                return Ok(msg);
            }
        }
        Err(CodingError::DecodingFailure(format!(
            "no codeword within distance {max_e}"
        )))
    }

    /// Erasure decoding: reconstruct the message from `ℓ` or more symbols whose
    /// positions are known to be correct.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::DecodingFailure`] if fewer than `ℓ` positions are
    /// supplied or positions are out of range / duplicated.
    pub fn decode_erasures(&self, symbols: &[(usize, F)]) -> Result<Vec<F>> {
        if symbols.len() < self.ell {
            return Err(CodingError::DecodingFailure(format!(
                "need at least {} symbols, got {}",
                self.ell,
                symbols.len()
            )));
        }
        let mut pts = Vec::with_capacity(self.ell);
        let mut used = std::collections::HashSet::new();
        for &(pos, val) in symbols.iter() {
            if pos >= self.k {
                return Err(CodingError::DecodingFailure(format!(
                    "position {pos} out of range"
                )));
            }
            if !used.insert(pos) {
                return Err(CodingError::DecodingFailure(format!(
                    "duplicate position {pos}"
                )));
            }
            pts.push((self.points[pos], val));
            if pts.len() == self.ell {
                break;
            }
        }
        let mut coeffs = lagrange_interpolate(&pts);
        coeffs.resize(self.ell, F::ZERO);
        Ok(coeffs)
    }

    /// One round of Berlekamp–Welch assuming exactly at most `e` errors.
    fn berlekamp_welch(&self, received: &[F], e: usize) -> Option<Vec<F>> {
        let k = self.k;
        let ell = self.ell;
        // Unknowns: E(x) monic of degree e  (e unknown coefficients),
        //           Q(x) of degree <= e + ell - 1 (e + ell unknowns).
        // Equations: Q(x_i) = r_i * E(x_i) for all i in [k].
        let num_unknowns = e + (e + ell);
        if num_unknowns > k {
            return None;
        }
        // Build the linear system: for each i,
        //   sum_{j<e+ell} Q_j x_i^j - r_i * sum_{j<e} E_j x_i^j = r_i * x_i^e
        let rows = k;
        let cols = num_unknowns;
        let mut a = vec![vec![F::ZERO; cols + 1]; rows];
        for i in 0..rows {
            let xi = self.points[i];
            let ri = received[i];
            let mut p = F::ONE;
            for j in 0..(e + ell) {
                a[i][j] = p;
                p = p * xi;
            }
            let mut p = F::ONE;
            for j in 0..e {
                a[i][e + ell + j] = -(ri * p);
                p = p * xi;
            }
            // rhs: r_i * x_i^e
            a[i][cols] = ri * xi.pow(e as u64);
        }
        let solution = solve_linear_system(&mut a, cols)?;
        let q_coeffs: Vec<F> = solution[..e + ell].to_vec();
        let mut e_coeffs: Vec<F> = solution[e + ell..].to_vec();
        e_coeffs.push(F::ONE); // monic of degree e
        let (quot, rem) = poly_divmod(&q_coeffs, &e_coeffs);
        if poly_degree(&rem).is_some() {
            return None;
        }
        let mut msg = quot;
        msg.resize(ell, F::ZERO);
        if poly_degree(&msg).unwrap_or(0) >= ell {
            return None;
        }
        // Verify: the decoded codeword must be within distance e of `received`.
        let cw = self.encode(&msg).ok()?;
        let dist = cw
            .iter()
            .zip(received.iter())
            .filter(|(a, b)| a != b)
            .count();
        if dist <= e {
            Some(msg)
        } else {
            None
        }
    }
}

/// Solve the linear system given by an augmented matrix (`cols` unknowns, last
/// column is the RHS) by Gaussian elimination; returns any solution if the
/// system is consistent (free variables are set to zero).
fn solve_linear_system<F: Field>(a: &mut [Vec<F>], cols: usize) -> Option<Vec<F>> {
    let rows = a.len();
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut row = 0usize;
    for col in 0..cols {
        // Find a pivot.
        let pivot = (row..rows).find(|&r| !a[r][col].is_zero());
        let Some(p) = pivot else { continue };
        a.swap(row, p);
        let inv = a[row][col].inv();
        for c in col..=cols {
            a[row][c] = a[row][c] * inv;
        }
        for r in 0..rows {
            if r != row && !a[r][col].is_zero() {
                let factor = a[r][col];
                for c in col..=cols {
                    a[r][c] = a[r][c] - factor * a[row][c];
                }
            }
        }
        pivot_of_col[col] = Some(row);
        row += 1;
        if row == rows {
            break;
        }
    }
    // Inconsistency check: a zero row with non-zero RHS.
    for r in row..rows {
        if a[r][..cols].iter().all(|c| c.is_zero()) && !a[r][cols].is_zero() {
            return None;
        }
    }
    let mut solution = vec![F::ZERO; cols];
    for col in 0..cols {
        if let Some(r) = pivot_of_col[col] {
            solution[col] = a[r][cols];
        }
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2_16::Gf2_16;
    use rand::{seq::SliceRandom, Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    type F = Gf2_16;
    type Rs = ReedSolomon<F>;

    fn random_message(rng: &mut impl Rng, ell: usize) -> Vec<F> {
        (0..ell).map(|_| F::from_u64(rng.gen())).collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(Rs::new(0, 5).is_err());
        assert!(Rs::new(6, 5).is_err());
        assert!(Rs::new(3, 1 << 17).is_err());
        assert!(Rs::new(3, 7).is_ok());
    }

    #[test]
    fn encode_rejects_wrong_length() {
        let rs = Rs::new(3, 7).unwrap();
        assert!(rs.encode(&[F::ONE; 2]).is_err());
        assert!(rs.decode(&[F::ONE; 6]).is_err());
    }

    #[test]
    fn clean_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for (ell, k) in [(1, 3), (2, 8), (5, 15), (10, 31)] {
            let rs = Rs::new(ell, k).unwrap();
            let msg = random_message(&mut rng, ell);
            let cw = rs.encode(&msg).unwrap();
            assert_eq!(rs.decode(&cw).unwrap(), msg);
        }
    }

    #[test]
    fn encode_matches_polynomial_evaluation() {
        // The precomputed generator matrix must agree with the definition:
        // codeword_i = p(x_i) for the message polynomial p.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for (ell, k) in [(1, 1), (3, 7), (6, 20)] {
            let rs = Rs::new(ell, k).unwrap();
            let msg = random_message(&mut rng, ell);
            let cw = rs.encode(&msg).unwrap();
            for (i, &c) in cw.iter().enumerate() {
                let x = F::from_u64(i as u64 + 1);
                assert_eq!(c, crate::field::poly_eval(&msg, x), "ell={ell} k={k} i={i}");
            }
        }
    }

    #[test]
    fn syndromes_are_zero_exactly_on_codewords() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let rs = Rs::new(4, 11).unwrap();
        let msg = random_message(&mut rng, 4);
        let mut cw = rs.encode(&msg).unwrap();
        let s = rs.syndromes(&cw).unwrap();
        assert_eq!(s.len(), 11 - 4);
        assert!(s.iter().all(|x| x.is_zero()));
        // Corrupting any single position (head or tail) trips the check.
        for i in [0usize, 3, 4, 10] {
            cw[i] = cw[i] + F::ONE;
            assert!(
                rs.syndromes(&cw).unwrap().iter().any(|x| !x.is_zero()),
                "corruption at {i} went unnoticed"
            );
            cw[i] = cw[i] + F::ONE;
        }
        assert!(rs.syndromes(&cw[..10]).is_err());
    }

    #[test]
    fn corrects_up_to_capacity() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for (ell, k) in [(2, 10), (4, 16), (8, 33)] {
            let rs = Rs::new(ell, k).unwrap();
            let cap = rs.error_capacity();
            for trial in 0..10 {
                let msg = random_message(&mut rng, ell);
                let mut cw = rs.encode(&msg).unwrap();
                let mut idx: Vec<usize> = (0..k).collect();
                idx.shuffle(&mut rng);
                let errs = if trial % 2 == 0 {
                    cap
                } else {
                    rng.gen_range(0..=cap)
                };
                for &i in idx.iter().take(errs) {
                    // Flip to a guaranteed-different symbol.
                    cw[i] = cw[i] + F::from_u64(rng.gen_range(1..u64::from(u16::MAX)));
                }
                assert_eq!(rs.decode(&cw).unwrap(), msg, "ell={ell} k={k} errs={errs}");
            }
        }
    }

    #[test]
    fn too_many_errors_fails_or_misdecodes_gracefully() {
        let rs = Rs::new(4, 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let msg = random_message(&mut rng, 4);
        let mut cw = rs.encode(&msg).unwrap();
        // Corrupt more than capacity (capacity = 2): 5 symbols.
        for slot in cw.iter_mut().take(5) {
            *slot = F::from_u64(rng.gen());
        }
        // The decoder may fail or return some other message, but it must not panic,
        // and it must not claim the original message decoded from 5 errors is "close".
        match rs.decode(&cw) {
            Ok(decoded) => {
                let recw = rs.encode(&decoded).unwrap();
                let dist = recw.iter().zip(cw.iter()).filter(|(a, b)| a != b).count();
                assert!(dist <= rs.error_capacity());
            }
            Err(CodingError::DecodingFailure(_)) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn erasure_decoding() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let rs = Rs::new(5, 12).unwrap();
        let msg = random_message(&mut rng, 5);
        let cw = rs.encode(&msg).unwrap();
        // Any 5 correct positions suffice.
        let symbols: Vec<(usize, F)> = [11usize, 0, 7, 3, 9].iter().map(|&i| (i, cw[i])).collect();
        assert_eq!(rs.decode_erasures(&symbols).unwrap(), msg);
        // Too few symbols.
        assert!(rs.decode_erasures(&symbols[..4]).is_err());
        // Duplicate position.
        let dup = vec![(0, cw[0]), (0, cw[0]), (1, cw[1]), (2, cw[2]), (3, cw[3])];
        assert!(rs.decode_erasures(&dup).is_err());
    }

    #[test]
    fn relative_distance_matches_theorem() {
        // delta = (k - ell + 1) / k: two distinct codewords differ in >= k - ell + 1 positions.
        let rs = Rs::new(3, 9).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let m1 = random_message(&mut rng, 3);
            let mut m2 = random_message(&mut rng, 3);
            if m1 == m2 {
                m2[0] = m2[0] + F::ONE;
            }
            let c1 = rs.encode(&m1).unwrap();
            let c2 = rs.encode(&m2).unwrap();
            let dist = c1.iter().zip(c2.iter()).filter(|(a, b)| a != b).count();
            assert!(dist > 9 - 3, "distance {dist} too small");
        }
    }
}
