//! Bounded-independence hash families and transcript fingerprints.
//!
//! Two constructions from the paper's toolbox:
//!
//! * [`KWiseHash`] — a `c`-wise independent family `H = {h : [N] → [L]}`
//!   (Lemma 1.11), realised as random polynomials of degree `c - 1` over the
//!   prime field `F_{2^61-1}`.  The congestion-sensitive compiler of
//!   Theorem 1.3 draws one such function from a shared random seed and uses it
//!   to make non-empty and empty payload messages indistinguishable.
//! * [`TranscriptHash`] — a pairwise-independent polynomial fingerprint of a
//!   whole message transcript, used by the rewind-if-error compiler
//!   (Section 4.1) so neighbours can cheaply compare their view of the joint
//!   transcript and detect divergence w.h.p.

use crate::field::Field;
use crate::fp::Fp61;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A hash function drawn from a `c`-wise independent family, mapping `u64`
/// inputs to values in `[0, range)`.
///
/// Internally `h(x) = (Σ_i a_i x^i mod p) mod range` with uniformly random
/// coefficients `a_0 … a_{c-1}` over the Mersenne prime `p = 2^61 - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<Fp61>,
    range: u64,
}

impl KWiseHash {
    /// Draw a function from the `c`-wise independent family with outputs in
    /// `[0, range)`, using the given seed as the family's shared randomness.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `range == 0`.
    pub fn from_seed(seed: u64, c: usize, range: u64) -> Self {
        assert!(c > 0, "independence parameter must be positive");
        assert!(range > 0, "range must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Self::from_rng(&mut rng, c, range)
    }

    /// Draw a function using an externally supplied RNG (e.g. a node's private
    /// randomness or a securely shared seed).
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `range == 0`.
    pub fn from_rng<R: Rng + ?Sized>(rng: &mut R, c: usize, range: u64) -> Self {
        assert!(c > 0, "independence parameter must be positive");
        assert!(range > 0, "range must be positive");
        let coeffs = (0..c).map(|_| Fp61::random(rng)).collect();
        KWiseHash { coeffs, range }
    }

    /// The independence parameter `c` of the family this function was drawn from.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The output range `L`.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Evaluate the hash on `x`.
    pub fn hash(&self, x: u64) -> u64 {
        let x = Fp61::from_u64(x);
        let mut acc = Fp61::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc.to_u64() % self.range
    }

    /// Evaluate the hash on an arbitrary byte string by first collapsing it with
    /// a fixed injective-enough packing (length-prefixed 8-byte chunks combined
    /// with a Horner pass using a fixed base point).
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        self.hash(pack_bytes(bytes))
    }
}

/// Collapse a byte string into a single `u64` deterministically.  This is a
/// *fixed* (not keyed) compression: collision resistance comes from the keyed
/// polynomial applied afterwards on word sequences — see [`TranscriptHash`] for
/// the keyed variant over long inputs.
fn pack_bytes(bytes: &[u8]) -> u64 {
    // Simple FNV-1a 64-bit; adequate as a canonical packing for test payloads.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (bytes.len() as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// A keyed polynomial fingerprint over a sequence of `u64` words.
///
/// For a random evaluation point `r` and random offset `s`, the fingerprint of
/// `w_1 … w_m` is `s + Σ_i w_i · r^i` over `F_{2^61-1}`.  Two distinct
/// sequences of length ≤ m collide with probability at most `m / (2^61 - 1)`
/// over the choice of `r` — the property Lemma 4.9 needs ("`h_R(π) ≠ h_R(π̃)`
/// w.h.p. when `π ≠ π̃`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranscriptHash {
    point: Fp61,
    offset: Fp61,
}

impl TranscriptHash {
    /// Derive a fingerprint key from a compact seed (as exchanged in the
    /// round-initialisation phase of the rewind compiler).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TranscriptHash {
            point: Fp61::random(&mut rng),
            offset: Fp61::random(&mut rng),
        }
    }

    /// Draw a fresh random fingerprint key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        TranscriptHash {
            point: Fp61::random(rng),
            offset: Fp61::random(rng),
        }
    }

    /// Fingerprint a word sequence.
    pub fn fingerprint(&self, words: &[u64]) -> u64 {
        let mut acc = self.offset;
        let mut power = self.point;
        for &w in words {
            acc = acc + Fp61::from_u64(w) * power;
            power = power * self.point;
        }
        // Mix in the length so prefixes do not trivially collide when the
        // remaining words are zero.
        acc = acc + Fp61::from_u64(words.len() as u64) * power;
        acc.to_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    #[should_panic]
    fn zero_independence_rejected() {
        let _ = KWiseHash::from_seed(0, 0, 10);
    }

    #[test]
    #[should_panic]
    fn zero_range_rejected() {
        let _ = KWiseHash::from_seed(0, 2, 0);
    }

    #[test]
    fn outputs_in_range() {
        let h = KWiseHash::from_seed(42, 4, 1000);
        for x in 0..10_000u64 {
            assert!(h.hash(x) < 1000);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let h1 = KWiseHash::from_seed(7, 3, 1 << 20);
        let h2 = KWiseHash::from_seed(7, 3, 1 << 20);
        for x in [0u64, 1, 99, 12345, u64::MAX] {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
        let h3 = KWiseHash::from_seed(8, 3, 1 << 20);
        assert!((0..100u64).any(|x| h1.hash(x) != h3.hash(x)));
    }

    #[test]
    fn pairwise_collision_probability_small() {
        // Over many independently drawn functions, distinct inputs collide with
        // probability ≈ 1/range.
        let range = 1 << 12;
        let mut collisions = 0u32;
        let trials = 4000;
        for seed in 0..trials {
            let h = KWiseHash::from_seed(seed, 2, range);
            if h.hash(17) == h.hash(94321) {
                collisions += 1;
            }
        }
        // Expected ≈ trials / range ≈ 1; allow generous slack.
        assert!(collisions < 12, "too many collisions: {collisions}");
    }

    #[test]
    fn marginal_distribution_near_uniform() {
        // For a fixed input x, over random h the value h(x) is uniform.
        let range = 16u64;
        let mut counts: HashMap<u64, u32> = HashMap::new();
        let trials = 16_000u64;
        for seed in 0..trials {
            let h = KWiseHash::from_seed(seed, 3, range);
            *counts.entry(h.hash(123456789)).or_default() += 1;
        }
        let expected = trials as f64 / range as f64;
        for v in 0..range {
            let c = *counts.get(&v).unwrap_or(&0) as f64;
            assert!(
                (c - expected).abs() < expected * 0.2,
                "bucket {v} count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn hash_bytes_distinguishes_lengths() {
        let h = KWiseHash::from_seed(3, 2, u64::MAX);
        assert_ne!(h.hash_bytes(b""), h.hash_bytes(b"\0"));
        assert_ne!(h.hash_bytes(b"ab"), h.hash_bytes(b"ba"));
    }

    #[test]
    fn transcript_fingerprint_detects_divergence() {
        let mut detected = 0;
        let trials = 2000;
        for seed in 0..trials {
            let th = TranscriptHash::from_seed(seed);
            let a: Vec<u64> = (0..50).collect();
            let mut b = a.clone();
            b[37] ^= 1;
            if th.fingerprint(&a) != th.fingerprint(&b) {
                detected += 1;
            }
        }
        assert_eq!(detected, trials, "fingerprint missed a divergence");
    }

    #[test]
    fn transcript_fingerprint_prefix_sensitivity() {
        let th = TranscriptHash::from_seed(99);
        let a: Vec<u64> = vec![1, 2, 3];
        let b: Vec<u64> = vec![1, 2, 3, 0];
        assert_ne!(th.fingerprint(&a), th.fingerprint(&b));
        assert_eq!(th.fingerprint(&a), th.fingerprint(&[1, 2, 3]));
    }
}
