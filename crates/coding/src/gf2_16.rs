//! The binary field GF(2^16).
//!
//! This is the workhorse field of the crate: the paper's constructions operate
//! over a field `F_q` with `q = 2^{O(log n)}`, and 2^16 comfortably exceeds every
//! network size used in simulation while keeping elements word-sized.
//!
//! Multiplication uses log/antilog tables built over the primitive polynomial
//! `x^16 + x^12 + x^3 + x + 1` (0x1100B), generated lazily on first use.

use crate::field::Field;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::OnceLock;

/// Primitive polynomial for GF(2^16): x^16 + x^12 + x^3 + x + 1.
/// Crate-visible so [`crate::kernels::NibbleMul`] reduces with the same modulus.
pub(crate) const PRIM_POLY: u32 = 0x1100B;
/// Multiplicative group order.
const GROUP_ORDER: usize = (1 << 16) - 1;

struct Tables {
    log: Vec<u16>,
    exp: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = vec![0u16; 1 << 16];
        let mut exp = vec![0u16; 2 * GROUP_ORDER];
        let mut x: u32 = 1;
        for i in 0..GROUP_ORDER {
            exp[i] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << 16) != 0 {
                x ^= PRIM_POLY;
            }
        }
        for i in GROUP_ORDER..2 * GROUP_ORDER {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { log, exp }
    })
}

/// An element of GF(2^16).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gf2_16(pub u16);

impl std::fmt::Debug for Gf2_16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gf2_16({:#06x})", self.0)
    }
}

impl std::fmt::Display for Gf2_16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf2_16 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Gf2_16(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf2_16 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction equals addition.
        Gf2_16(self.0 ^ rhs.0)
    }
}

impl Neg for Gf2_16 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl Mul for Gf2_16 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf2_16(0);
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf2_16(t.exp[l])
    }
}

impl Field for Gf2_16 {
    const ZERO: Self = Gf2_16(0);
    const ONE: Self = Gf2_16(1);

    fn order() -> u64 {
        1 << 16
    }

    fn from_u64(x: u64) -> Self {
        Gf2_16((x & 0xFFFF) as u16)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^16)");
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Gf2_16(t.exp[GROUP_ORDER - l])
    }

    fn addmul_slice(acc: &mut [Self], src: &[Self], c: Self) {
        assert_eq!(acc.len(), src.len(), "addmul_slice length mismatch");
        if c.0 == 0 {
            return;
        }
        if acc.len() >= 16 {
            // Long slices amortize a 128-byte split-table multiplier for the
            // constant: four nibble lookups per element, no log/antilog traffic.
            let m = crate::kernels::NibbleMul::new(c);
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                a.0 ^= m.mul(s).0;
            }
        } else {
            // Short slices: log/antilog walk with the constant's log hoisted.
            let t = tables();
            let lc = t.log[c.0 as usize] as usize;
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                if s.0 != 0 {
                    a.0 ^= t.exp[lc + t.log[s.0 as usize] as usize];
                }
            }
        }
    }
}

impl From<u16> for Gf2_16 {
    fn from(x: u16) -> Self {
        Gf2_16(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_identity_and_inverse() {
        let a = Gf2_16(0x1234);
        assert_eq!(a + Gf2_16::ZERO, a);
        assert_eq!(a + a, Gf2_16::ZERO);
        assert_eq!(-a, a);
    }

    #[test]
    fn multiplicative_identity() {
        let a = Gf2_16(0xBEEF);
        assert_eq!(a * Gf2_16::ONE, a);
        assert_eq!(Gf2_16::ONE * a, a);
        assert_eq!(a * Gf2_16::ZERO, Gf2_16::ZERO);
    }

    #[test]
    fn inverse_correct_for_sample() {
        for x in [1u16, 2, 3, 7, 255, 256, 0xFFFF, 0x8000, 12345] {
            let a = Gf2_16(x);
            assert_eq!(a * a.inv(), Gf2_16::ONE, "x = {x}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_has_no_inverse() {
        let _ = Gf2_16::ZERO.inv();
    }

    #[test]
    fn mul_is_commutative_and_associative_samples() {
        let vals = [1u16, 2, 3, 5, 9, 100, 4096, 0xABCD, 0xFFFF];
        for &a in &vals {
            for &b in &vals {
                let (a, b) = (Gf2_16(a), Gf2_16(b));
                assert_eq!(a * b, b * a);
                for &c in &vals {
                    let c = Gf2_16(c);
                    assert_eq!((a * b) * c, a * (b * c));
                    // Distributivity.
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Gf2_16(0x1357);
        let mut acc = Gf2_16::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc = acc * a;
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // x^(q-1) = 1 for nonzero x.
        for x in [1u16, 17, 300, 0xFFFE] {
            assert_eq!(Gf2_16(x).pow((1 << 16) - 1), Gf2_16::ONE);
        }
    }

    #[test]
    fn from_u64_truncates() {
        assert_eq!(Gf2_16::from_u64(0x1_0005), Gf2_16(5));
    }
}
