//! Vectorized finite-field kernels behind the Reed–Solomon hot loops.
//!
//! The coding crate's encode/syndrome/interpolation paths all reduce to fused
//! multiply–accumulate over slices: `dst[i] += c · src[i]` for one constant
//! `c` and long `src`/`dst`.  This module provides that kernel at three
//! speeds for GF(2^8) and a split-table constant multiplier for GF(2^16):
//!
//! * **scalar** — the log/antilog table walk, kept as the property-test
//!   oracle every other path is checked against;
//! * **SWAR** — bit-sliced over `u64` lanes: the constant is decomposed into
//!   its bits and the source lane is repeatedly doubled with a branch-free
//!   eight-byte-wide `xtime` (shift plus masked reduction by the field
//!   polynomial), processing eight field elements per iteration on any
//!   architecture;
//! * **SIMD** — the classic two-`pshufb` nibble-table product on x86-64
//!   (SSSE3, runtime-detected) and its `vqtbl1q_u8` twin on AArch64 (NEON is
//!   baseline there), processing sixteen elements per iteration.
//!
//! Dispatch is resolved once per process into a function pointer; all paths
//! compute the exact same field arithmetic, so results are bit-identical
//! regardless of which backend runs — the determinism contract of the
//! campaign layer does not depend on the host CPU.
//!
//! For GF(2^16) a 65536-entry table per constant would blow the cache, so
//! [`NibbleMul`] splits the operand into four 4-bit nibbles and XORs four
//! 16-entry table lookups — 128 bytes of table per constant, built with
//! sixteen carryless doublings.  [`crate::field::Field::addmul_slice`] uses
//! it whenever a constant is reused across a long enough slice.

use crate::gf256::Gf256;
use std::sync::OnceLock;

/// Per-byte `xtime` (multiply by `x`) over a `u64` lane of eight GF(2^8)
/// elements: shift every byte left one bit, then reduce the bytes that
/// overflowed by the low byte of the field polynomial (`0x1B`, from
/// `x^8 + x^4 + x^3 + x + 1`).
#[inline]
fn xtime64(x: u64) -> u64 {
    let carries = (x >> 7) & 0x0101_0101_0101_0101;
    ((x & 0x7F7F_7F7F_7F7F_7F7F) << 1) ^ (carries * 0x1B)
}

/// Scalar GF(2^8) product via the field's log/antilog tables.
#[inline]
fn mul8(a: u8, b: u8) -> u8 {
    (Gf256(a) * Gf256(b)).0
}

/// `dst[i] ^= c · src[i]` over GF(2^8), scalar path.
///
/// This is the oracle the SWAR and SIMD backends are property-tested
/// against; it is public so external tests and benches can call it directly.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn gf256_addmul_scalar(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "gf256_addmul length mismatch");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d ^= mul8(c, s);
    }
}

/// `dst[i] = c · dst[i]` over GF(2^8), scalar path (the oracle).
pub fn gf256_mul_slice_scalar(dst: &mut [u8], c: u8) {
    for d in dst.iter_mut() {
        *d = mul8(c, *d);
    }
}

/// Bit-sliced SWAR `dst[i] ^= c · src[i]`: eight bytes per `u64` lane, one
/// `xtime64` doubling per set bit of `c`.
fn gf256_addmul_swar(dst: &mut [u8], src: &[u8], c: u8) {
    let mut dst_lanes = dst.chunks_exact_mut(8);
    let mut src_lanes = src.chunks_exact(8);
    for (d8, s8) in (&mut dst_lanes).zip(&mut src_lanes) {
        let mut lane = u64::from_le_bytes(s8.try_into().expect("8-byte chunk"));
        let mut acc = 0u64;
        let mut bits = c;
        loop {
            if bits & 1 != 0 {
                acc ^= lane;
            }
            bits >>= 1;
            if bits == 0 {
                break;
            }
            lane = xtime64(lane);
        }
        let merged = u64::from_le_bytes(d8[..].try_into().expect("8-byte chunk")) ^ acc;
        d8.copy_from_slice(&merged.to_le_bytes());
    }
    gf256_addmul_scalar(dst_lanes.into_remainder(), src_lanes.remainder(), c);
}

/// Bit-sliced SWAR `dst[i] = c · dst[i]`.
fn gf256_mul_slice_swar(dst: &mut [u8], c: u8) {
    let mut lanes = dst.chunks_exact_mut(8);
    for d8 in &mut lanes {
        let mut lane = u64::from_le_bytes(d8[..].try_into().expect("8-byte chunk"));
        let mut acc = 0u64;
        let mut bits = c;
        loop {
            if bits & 1 != 0 {
                acc ^= lane;
            }
            bits >>= 1;
            if bits == 0 {
                break;
            }
            lane = xtime64(lane);
        }
        d8.copy_from_slice(&acc.to_le_bytes());
    }
    gf256_mul_slice_scalar(lanes.into_remainder(), c);
}

/// The 16-entry low/high nibble product tables for one GF(2^8) constant:
/// `lo[d] = c·d`, `hi[d] = c·(d << 4)`, so `c·b = lo[b & 0xF] ^ hi[b >> 4]`.
/// Both SIMD backends shuffle these with their byte-table instruction.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn nibble_tables8(c: u8) -> ([u8; 16], [u8; 16]) {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for d in 0..16u8 {
        lo[d as usize] = mul8(c, d);
        hi[d as usize] = mul8(c, d << 4);
    }
    (lo, hi)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{gf256_addmul_scalar, gf256_mul_slice_scalar, nibble_tables8};
    use std::arch::x86_64::*;

    /// 16-lane nibble-table product: `lo⊔hi` shuffled by the low/high
    /// nibbles of `s`.  Caller guarantees SSSE3 (for `pshufb`).
    #[inline]
    unsafe fn product16(vlo: __m128i, vhi: __m128i, mask: __m128i, s: __m128i) -> __m128i {
        let lo_nib = _mm_and_si128(s, mask);
        let hi_nib = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
        _mm_xor_si128(_mm_shuffle_epi8(vlo, lo_nib), _mm_shuffle_epi8(vhi, hi_nib))
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn addmul(dst: &mut [u8], src: &[u8], c: u8) {
        let (lo, hi) = nibble_tables8(c);
        let vlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let vhi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let whole = dst.len() / 16 * 16;
        for i in (0..whole).step_by(16) {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let p = product16(vlo, vhi, mask, s);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, p));
        }
        gf256_addmul_scalar(&mut dst[whole..], &src[whole..], c);
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn mul_slice(dst: &mut [u8], c: u8) {
        let (lo, hi) = nibble_tables8(c);
        let vlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let vhi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let whole = dst.len() / 16 * 16;
        for i in (0..whole).step_by(16) {
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let p = product16(vlo, vhi, mask, d);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, p);
        }
        gf256_mul_slice_scalar(&mut dst[whole..], c);
    }

    /// Safe entry point, registered by the dispatcher only after
    /// `is_x86_feature_detected!("ssse3")` succeeded.
    pub fn addmul_entry(dst: &mut [u8], src: &[u8], c: u8) {
        unsafe { addmul(dst, src, c) }
    }

    /// Safe entry point; see [`addmul_entry`].
    pub fn mul_slice_entry(dst: &mut [u8], c: u8) {
        unsafe { mul_slice(dst, c) }
    }
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use super::{gf256_addmul_scalar, gf256_mul_slice_scalar, nibble_tables8};
    use std::arch::aarch64::*;

    /// 16-lane nibble-table product via `vqtbl1q_u8`.  NEON is part of the
    /// AArch64 baseline, so no runtime detection is needed.
    #[inline]
    unsafe fn product16(vlo: uint8x16_t, vhi: uint8x16_t, s: uint8x16_t) -> uint8x16_t {
        let lo_nib = vandq_u8(s, vdupq_n_u8(0x0F));
        let hi_nib = vshrq_n_u8(s, 4);
        veorq_u8(vqtbl1q_u8(vlo, lo_nib), vqtbl1q_u8(vhi, hi_nib))
    }

    pub fn addmul_entry(dst: &mut [u8], src: &[u8], c: u8) {
        let (lo, hi) = nibble_tables8(c);
        unsafe {
            let vlo = vld1q_u8(lo.as_ptr());
            let vhi = vld1q_u8(hi.as_ptr());
            let whole = dst.len() / 16 * 16;
            for i in (0..whole).step_by(16) {
                let s = vld1q_u8(src.as_ptr().add(i));
                let d = vld1q_u8(dst.as_ptr().add(i));
                vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, product16(vlo, vhi, s)));
            }
            gf256_addmul_scalar(&mut dst[whole..], &src[whole..], c);
        }
    }

    pub fn mul_slice_entry(dst: &mut [u8], c: u8) {
        let (lo, hi) = nibble_tables8(c);
        unsafe {
            let vlo = vld1q_u8(lo.as_ptr());
            let vhi = vld1q_u8(hi.as_ptr());
            let whole = dst.len() / 16 * 16;
            for i in (0..whole).step_by(16) {
                let d = vld1q_u8(dst.as_ptr().add(i));
                vst1q_u8(dst.as_mut_ptr().add(i), product16(vlo, vhi, d));
            }
            gf256_mul_slice_scalar(&mut dst[whole..], c);
        }
    }
}

type AddmulFn = fn(&mut [u8], &[u8], u8);
type MulSliceFn = fn(&mut [u8], u8);

/// The resolved backend: name plus the two kernel entry points.
fn backend() -> (&'static str, AddmulFn, MulSliceFn) {
    static CHOSEN: OnceLock<(&'static str, AddmulFn, MulSliceFn)> = OnceLock::new();
    *CHOSEN.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("ssse3") {
            return ("ssse3", x86::addmul_entry, x86::mul_slice_entry);
        }
        #[cfg(target_arch = "aarch64")]
        return ("neon", aarch64::addmul_entry, aarch64::mul_slice_entry);
        #[allow(unreachable_code)]
        ("swar", gf256_addmul_swar, gf256_mul_slice_swar)
    })
}

/// The name of the GF(2^8) kernel backend this process dispatched to:
/// `"ssse3"`, `"neon"`, or `"swar"`.
pub fn gf256_backend() -> &'static str {
    backend().0
}

/// `dst[i] ^= c · src[i]` over GF(2^8), via the fastest available backend.
///
/// All backends compute identical field arithmetic; see the module docs.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn gf256_addmul(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "gf256_addmul length mismatch");
    if c == 0 {
        return;
    }
    backend().1(dst, src, c)
}

/// `dst[i] = c · dst[i]` over GF(2^8), via the fastest available backend.
pub fn gf256_mul_slice(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => backend().2(dst, c),
    }
}

/// A split-table constant multiplier over GF(2^16): multiplication by one
/// fixed constant `c` as four 4-bit nibble lookups,
/// `c·x = T₀[x₀] ⊕ T₁[x₁] ⊕ T₂[x₂] ⊕ T₃[x₃]` where `xₙ` is the `n`-th nibble
/// of `x`.  128 bytes of table per constant — built with sixteen carryless
/// doublings, no log/antilog traffic — so a matrix row prepared once serves
/// every subsequent row–vector product from L1.
#[derive(Debug, Clone)]
pub struct NibbleMul {
    tables: [[u16; 16]; 4],
}

impl NibbleMul {
    /// Build the four nibble tables for the constant `c`.
    pub fn new(c: crate::gf2_16::Gf2_16) -> Self {
        // powers[i] = c · x^i, by repeated doubling modulo the field polynomial.
        let mut powers = [0u32; 16];
        let mut p = c.0 as u32;
        for slot in powers.iter_mut() {
            *slot = p;
            p <<= 1;
            if p & 0x1_0000 != 0 {
                p ^= crate::gf2_16::PRIM_POLY;
            }
        }
        let mut tables = [[0u16; 16]; 4];
        for (n, table) in tables.iter_mut().enumerate() {
            for (d, entry) in table.iter_mut().enumerate() {
                let mut acc = 0u32;
                for bit in 0..4 {
                    if d & (1 << bit) != 0 {
                        acc ^= powers[4 * n + bit];
                    }
                }
                *entry = acc as u16;
            }
        }
        NibbleMul { tables }
    }

    /// `c · x` for the constant this table was built for.
    #[inline]
    pub fn mul(&self, x: crate::gf2_16::Gf2_16) -> crate::gf2_16::Gf2_16 {
        let x = x.0 as usize;
        crate::gf2_16::Gf2_16(
            self.tables[0][x & 0xF]
                ^ self.tables[1][(x >> 4) & 0xF]
                ^ self.tables[2][(x >> 8) & 0xF]
                ^ self.tables[3][x >> 12],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2_16::Gf2_16;
    use proptest::prelude::*;

    #[test]
    fn xtime64_doubles_every_byte_independently() {
        for b in 0..=255u8 {
            let lane = u64::from_le_bytes([b, 0, b, 0xFF, 1, b.wrapping_add(3), 0, b]);
            let doubled = xtime64(lane);
            for (i, &src) in lane.to_le_bytes().iter().enumerate() {
                assert_eq!(doubled.to_le_bytes()[i], mul8(2, src), "byte {i} of {b:#x}");
            }
        }
    }

    #[test]
    fn addmul_identity_and_zero_constants() {
        let src: Vec<u8> = (0..50).map(|i| (i * 7 + 3) as u8).collect();
        let mut dst = vec![0u8; 50];
        gf256_addmul(&mut dst, &src, 1);
        assert_eq!(dst, src, "c = 1 accumulates src verbatim");
        let before = dst.clone();
        gf256_addmul(&mut dst, &src, 0);
        assert_eq!(dst, before, "c = 0 is a no-op");
        gf256_addmul(&mut dst, &src, 1);
        assert_eq!(dst, vec![0u8; 50], "xor-ing src twice cancels");
    }

    #[test]
    fn mul_slice_special_constants() {
        let mut dst: Vec<u8> = (0..37).map(|i| (i * 11 + 1) as u8).collect();
        let orig = dst.clone();
        gf256_mul_slice(&mut dst, 1);
        assert_eq!(dst, orig);
        gf256_mul_slice(&mut dst, 0);
        assert_eq!(dst, vec![0u8; 37]);
    }

    #[test]
    fn known_aes_product_through_every_backend() {
        // 0x57 · 0x83 = 0xC1 (FIPS-197): long enough to hit the vector body.
        let src = [0x57u8; 24];
        let mut dispatched = [0u8; 24];
        gf256_addmul(&mut dispatched, &src, 0x83);
        assert_eq!(dispatched, [0xC1; 24]);
        let mut swar = [0u8; 24];
        gf256_addmul_swar(&mut swar, &src, 0x83);
        assert_eq!(swar, [0xC1; 24]);
    }

    #[test]
    fn nibble_mul_matches_field_mul_on_a_grid() {
        for c in (0..=0xFFFFu32).step_by(251) {
            let m = NibbleMul::new(Gf2_16(c as u16));
            for x in (0..=0xFFFFu32).step_by(509) {
                let x = Gf2_16(x as u16);
                assert_eq!(m.mul(x), Gf2_16(c as u16) * x, "c={c:#x} x={x:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn swar_addmul_matches_the_scalar_oracle(
            pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 0..131),
            c in any::<u8>(),
        ) {
            let src: Vec<u8> = pairs.iter().map(|&(s, _)| s).collect();
            let mut swar: Vec<u8> = pairs.iter().map(|&(_, d)| d).collect();
            let mut oracle = swar.clone();
            gf256_addmul_swar(&mut swar, &src, c);
            gf256_addmul_scalar(&mut oracle, &src, c);
            prop_assert_eq!(swar, oracle);
        }

        #[test]
        fn dispatched_addmul_matches_the_scalar_oracle(
            pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 0..131),
            c in any::<u8>(),
        ) {
            let src: Vec<u8> = pairs.iter().map(|&(s, _)| s).collect();
            let mut fast: Vec<u8> = pairs.iter().map(|&(_, d)| d).collect();
            let mut oracle = fast.clone();
            gf256_addmul(&mut fast, &src, c);
            gf256_addmul_scalar(&mut oracle, &src, c);
            prop_assert_eq!(fast, oracle, "backend {}", gf256_backend());
        }

        #[test]
        fn dispatched_mul_slice_matches_the_scalar_oracle(
            data in prop::collection::vec(any::<u8>(), 0..131),
            c in any::<u8>(),
        ) {
            let mut fast = data.clone();
            let mut swar = data.clone();
            let mut oracle = data;
            gf256_mul_slice(&mut fast, c);
            gf256_mul_slice_swar(&mut swar, c);
            gf256_mul_slice_scalar(&mut oracle, c);
            prop_assert_eq!(&fast, &oracle, "backend {}", gf256_backend());
            prop_assert_eq!(&swar, &oracle);
        }

        #[test]
        fn nibble_mul_matches_field_mul(c in any::<u16>(), x in any::<u16>()) {
            let m = NibbleMul::new(Gf2_16(c));
            prop_assert_eq!(m.mul(Gf2_16(x)), Gf2_16(c) * Gf2_16(x));
        }
    }
}
