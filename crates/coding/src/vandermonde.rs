//! Vandermonde matrices and the Chor et al. bit-extraction procedure.
//!
//! This implements Theorem 2.1 of the paper (originally due to Chor, Goldreich,
//! Håstad, Friedman, Rudich and Smolensky): given `n` field elements of which at
//! most `t` are known to (or chosen by) an adversary and the remaining `n - t`
//! are uniformly random and hidden, multiplying the vector by an `n × (n - t)`
//! Vandermonde matrix yields `n - t` elements that are *independent and
//! uniformly random* from the adversary's point of view.
//!
//! The mobile-secure compilers use this to convert a multi-round exchange of
//! random pads — of which the mobile eavesdropper saw a bounded number of rounds
//! per edge — into a pool of perfectly hidden one-time-pad keys (the
//! `K_i(u, v)` keys of Theorem 1.2 and Lemma A.1).

use crate::field::Field;
use crate::{CodingError, Result};

/// An `rows × cols` Vandermonde matrix over the field `F`, with entry
/// `M[i][j] = alpha_i^j` for distinct non-zero evaluation points `alpha_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vandermonde<F: Field> {
    rows: usize,
    cols: usize,
    points: Vec<F>,
}

impl<F: Field> Vandermonde<F> {
    /// Build an `rows × cols` Vandermonde matrix using the canonical evaluation
    /// points `1, 2, …, rows` (as field elements).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidParameters`] if `rows` (plus one) exceeds
    /// the field order — the evaluation points must be distinct and non-zero —
    /// or if `cols > rows`.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows as u64 >= F::order() {
            return Err(CodingError::InvalidParameters(format!(
                "{rows} rows do not fit in a field of order {}",
                F::order()
            )));
        }
        if cols > rows {
            return Err(CodingError::InvalidParameters(format!(
                "cols ({cols}) may not exceed rows ({rows})"
            )));
        }
        let points = (1..=rows as u64).map(F::from_u64).collect();
        Ok(Vandermonde { rows, cols, points })
    }

    /// Number of rows (input length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (output length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `M[i][j] = alpha_i^j`.
    pub fn entry(&self, i: usize, j: usize) -> F {
        self.points[i].pow(j as u64)
    }

    /// Compute `y = x^T · M`, i.e. `y_j = Σ_i x_i · alpha_i^j`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::LengthMismatch`] if `x.len() != rows`.
    pub fn apply(&self, x: &[F]) -> Result<Vec<F>> {
        if x.len() != self.rows {
            return Err(CodingError::LengthMismatch {
                expected: self.rows,
                got: x.len(),
            });
        }
        let mut out = vec![F::ZERO; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi.is_zero() {
                continue;
            }
            // alpha_i^j computed incrementally.
            let alpha = self.points[i];
            let mut p = F::ONE;
            for slot in out.iter_mut() {
                *slot = *slot + xi * p;
                p = p * alpha;
            }
        }
        Ok(out)
    }
}

/// The bit-extraction procedure of Theorem 2.1, specialised to the way the
/// compilers use it: `n` rounds of pad exchange over an edge are condensed into
/// `m = n - t` one-time-pad keys that remain uniform provided the adversary
/// observed at most `t` of the rounds.
#[derive(Debug, Clone)]
pub struct BitExtractor<F: Field> {
    matrix: Vandermonde<F>,
}

impl<F: Field> BitExtractor<F> {
    /// Create an extractor that condenses `n` exchanged pads into `n - t` keys,
    /// resilient to an adversary that observed any `t` of the pads.
    ///
    /// # Errors
    ///
    /// Returns an error when `t >= n` or the parameters exceed the field size.
    pub fn new(n: usize, t: usize) -> Result<Self> {
        if t >= n {
            return Err(CodingError::InvalidParameters(format!(
                "t ({t}) must be smaller than n ({n})"
            )));
        }
        Ok(BitExtractor {
            matrix: Vandermonde::new(n, n - t)?,
        })
    }

    /// Number of input pads.
    pub fn input_len(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of extracted keys.
    pub fn output_len(&self) -> usize {
        self.matrix.cols()
    }

    /// Extract `n - t` keys from the `n` exchanged pads.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::LengthMismatch`] if `pads.len()` differs from the
    /// configured input length.
    pub fn extract(&self, pads: &[F]) -> Result<Vec<F>> {
        self.matrix.apply(pads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2_16::Gf2_16;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    type F = Gf2_16;

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Vandermonde::<F>::new(1 << 17, 4).is_err());
        assert!(Vandermonde::<F>::new(4, 5).is_err());
        assert!(BitExtractor::<F>::new(4, 4).is_err());
        assert!(BitExtractor::<F>::new(4, 7).is_err());
    }

    #[test]
    fn apply_checks_length() {
        let m = Vandermonde::<F>::new(5, 3).unwrap();
        assert!(matches!(
            m.apply(&[F::ZERO; 4]),
            Err(CodingError::LengthMismatch {
                expected: 5,
                got: 4
            })
        ));
    }

    #[test]
    fn entry_matches_apply() {
        let m = Vandermonde::<F>::new(6, 4).unwrap();
        // Applying a standard basis vector e_i reads out row i.
        for i in 0..6 {
            let mut x = vec![F::ZERO; 6];
            x[i] = F::ONE;
            let row = m.apply(&x).unwrap();
            for j in 0..4 {
                assert_eq!(row[j], m.entry(i, j));
            }
        }
    }

    /// The heart of Theorem 2.1: with `t` coordinates fixed (adversary-known)
    /// and `n - t` uniform, every output key is uniform.  We verify this on a
    /// small field statistically and, more importantly, verify the exact
    /// *bijection* property the theorem rests on: for fixed adversarial
    /// coordinates, the map from the hidden coordinates to the output is a
    /// bijection (so uniform inputs give uniform outputs).
    #[test]
    fn extraction_is_bijective_in_hidden_coordinates() {
        // n = 3, t = 1 over GF(2^8) would still be 2^16 combinations; use GF(2^16)
        // with a handful of random hidden values instead and check injectivity.
        let n = 4;
        let t = 2;
        let ex = BitExtractor::<F>::new(n, t).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Adversary-known coordinates: positions 1 and 3 fixed.
        let fixed = [F::from_u64(111), F::from_u64(9999)];
        let mut seen: HashMap<(u64, u64), (u64, u64)> = HashMap::new();
        for _ in 0..20_000 {
            let h0 = F::from_u64(rng.gen());
            let h2 = F::from_u64(rng.gen());
            let pads = vec![h0, fixed[0], h2, fixed[1]];
            let keys = ex.extract(&pads).unwrap();
            assert_eq!(keys.len(), 2);
            let out = (keys[0].to_u64(), keys[1].to_u64());
            let inp = (h0.to_u64(), h2.to_u64());
            if let Some(prev) = seen.insert(out, inp) {
                assert_eq!(
                    prev, inp,
                    "two distinct hidden inputs collided on the same keys"
                );
            }
        }
    }

    #[test]
    fn extraction_output_marginals_look_uniform() {
        // Chi-square style sanity check on the low byte of the first key.
        let n = 8;
        let t = 3;
        let ex = BitExtractor::<F>::new(n, t).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let fixed: Vec<F> = (0..t as u64).map(|i| F::from_u64(i * 37 + 5)).collect();
        let mut counts = [0u32; 256];
        let trials = 64_000;
        for _ in 0..trials {
            let mut pads: Vec<F> = Vec::with_capacity(n);
            for i in 0..n {
                if i < t {
                    pads.push(fixed[i]);
                } else {
                    pads.push(F::from_u64(rng.gen()));
                }
            }
            let keys = ex.extract(&pads).unwrap();
            counts[(keys[0].to_u64() & 0xFF) as usize] += 1;
        }
        let expected = trials as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 255 degrees of freedom; mean 255, stddev ~22.6.  Allow a generous band.
        assert!(chi2 < 400.0, "chi-square too large: {chi2}");
    }
}
