//! Coding-theoretic building blocks used by the mobile-adversary compilers.
//!
//! This crate collects the algebraic tools from the "Useful Tools" and
//! "Preliminaries" sections of Fischer & Parter (PODC 2023):
//!
//! * finite fields: [`gf256::Gf256`], [`gf2_16::Gf2_16`] (characteristic-2 fields used for
//!   Reed–Solomon codes and Vandermonde extraction) and [`fp::Fp61`] (a Mersenne prime
//!   field used for fingerprints and bounded-independence hashing),
//! * [`vandermonde`]: Vandermonde matrices and the Chor et al. bit-extraction
//!   procedure (Theorem 2.1 of the paper) that turns partially-observed random
//!   exchanges into perfectly hidden one-time-pad keys,
//! * [`reed_solomon`]: Reed–Solomon encoding with Berlekamp–Welch error decoding
//!   (Theorem 1.8), used by the `ECCSafeBroadcast` procedure,
//! * [`hashing`]: `c`-wise independent hash families (Lemma 1.11) and polynomial
//!   transcript fingerprints used by the rewind-if-error compiler,
//! * [`kernels`]: bit-sliced/SWAR and SIMD multiply–accumulate kernels behind
//!   the Reed–Solomon encode/syndrome hot loops, plus the GF(2^16)
//!   split-table constant multiplier.
//!
//! # Example
//!
//! ```
//! use coding::field::Field;
//! use coding::gf2_16::Gf2_16;
//! use coding::reed_solomon::ReedSolomon;
//!
//! // Encode a 3-symbol message into a length-7 codeword and recover it after 2 errors.
//! let rs = ReedSolomon::<Gf2_16>::new(3, 7).unwrap();
//! let msg = vec![Gf2_16::from_u64(5), Gf2_16::from_u64(17), Gf2_16::from_u64(255)];
//! let mut cw = rs.encode(&msg).unwrap();
//! cw[0] = cw[0] + Gf2_16::ONE;
//! cw[4] = Gf2_16::from_u64(9999);
//! let decoded = rs.decode(&cw).unwrap();
//! assert_eq!(decoded, msg);
//! ```

// Index-based loops mirror the matrix/polynomial notation of the paper.
#![allow(clippy::needless_range_loop)]

pub mod field;
pub mod fp;
pub mod gf256;
pub mod gf2_16;
pub mod hashing;
pub mod kernels;
pub mod reed_solomon;
pub mod vandermonde;

pub use field::Field;
pub use fp::Fp61;
pub use gf256::Gf256;
pub use gf2_16::Gf2_16;
pub use hashing::{KWiseHash, TranscriptHash};
pub use kernels::NibbleMul;
pub use reed_solomon::ReedSolomon;
pub use vandermonde::{BitExtractor, Vandermonde};

/// Errors produced by the coding primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The requested code parameters are invalid (e.g. message longer than block,
    /// or block length exceeding the field size).
    InvalidParameters(String),
    /// Decoding failed: the received word is too far from any codeword.
    DecodingFailure(String),
    /// An input had the wrong length.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodingError::InvalidParameters(s) => write!(f, "invalid code parameters: {s}"),
            CodingError::DecodingFailure(s) => write!(f, "decoding failure: {s}"),
            CodingError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CodingError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, CodingError>;
