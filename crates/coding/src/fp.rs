//! The prime field `F_p` for the Mersenne prime `p = 2^61 - 1`.
//!
//! Used for bounded-independence hashing (Lemma 1.11), transcript fingerprints
//! in the rewind-if-error compiler (Section 4), and sketch fingerprints: these
//! all need a field whose order comfortably exceeds any polynomial in the
//! network size so that random collisions happen with probability `1/poly(n)`.

use crate::field::Field;
use std::ops::{Add, Mul, Neg, Sub};

/// The Mersenne prime 2^61 - 1.
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of the prime field `F_{2^61 - 1}`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fp61(u64);

impl std::fmt::Debug for Fp61 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fp61({})", self.0)
    }
}

impl std::fmt::Display for Fp61 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[inline]
fn reduce(x: u64) -> u64 {
    // x < 2^64; fold the top bits down twice (Mersenne reduction).
    let mut r = (x & P61) + (x >> 61);
    if r >= P61 {
        r -= P61;
    }
    r
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod & P61 as u128) as u64;
    let hi = (prod >> 61) as u64;
    reduce(lo + reduce(hi))
}

impl Fp61 {
    /// Construct an element, reducing modulo `p`.
    pub fn new(x: u64) -> Self {
        Fp61(x % P61)
    }

    /// Raw canonical value in `[0, p)`.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Add for Fp61 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0;
        if s >= P61 {
            s -= P61;
        }
        Fp61(s)
    }
}

impl Sub for Fp61 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P61 - rhs.0
        };
        Fp61(s)
    }
}

impl Neg for Fp61 {
    type Output = Self;
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Fp61(P61 - self.0)
        }
    }
}

impl Mul for Fp61 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fp61(mul_mod(self.0, rhs.0))
    }
}

impl Field for Fp61 {
    const ZERO: Self = Fp61(0);
    const ONE: Self = Fp61(1);

    fn order() -> u64 {
        P61
    }

    fn from_u64(x: u64) -> Self {
        Fp61(x % P61)
    }

    fn to_u64(self) -> u64 {
        self.0
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in Fp61");
        // Fermat: x^(p-2).
        self.pow(P61 - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn add_sub_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = Fp61::new(rng.gen());
            let b = Fp61::new(rng.gen());
            assert_eq!(a + b - b, a);
            assert_eq!(a - b + b, a);
        }
    }

    #[test]
    fn mul_inverse() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let a = Fp61::new(rng.gen_range(1..P61));
            assert_eq!(a * a.inv(), Fp61::ONE);
        }
    }

    #[test]
    fn reduction_edge_cases() {
        assert_eq!(Fp61::new(P61), Fp61::ZERO);
        assert_eq!(Fp61::new(P61 + 5), Fp61::new(5));
        assert_eq!(Fp61::new(P61 - 1) + Fp61::ONE, Fp61::ZERO);
        assert_eq!(-Fp61::ZERO, Fp61::ZERO);
        assert_eq!(-(Fp61::ONE), Fp61::new(P61 - 1));
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let a = rng.gen_range(0..P61);
            let b = rng.gen_range(0..P61);
            let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
            assert_eq!((Fp61::new(a) * Fp61::new(b)).value(), expect);
        }
    }

    #[test]
    fn distributive_law_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..500 {
            let a = Fp61::new(rng.gen());
            let b = Fp61::new(rng.gen());
            let c = Fp61::new(rng.gen());
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }
}
