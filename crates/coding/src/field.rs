//! Abstract finite-field interface shared by the coding primitives.
//!
//! All algebraic tools in this crate (Reed–Solomon codes, Vandermonde bit
//! extraction, polynomial hashing) are generic over a [`Field`].  The trait is
//! intentionally small: it captures exactly the operations the paper's
//! constructions need — field arithmetic, inversion, and a canonical mapping
//! to/from machine integers so that protocol messages can carry field elements.

use std::fmt::Debug;
use std::ops::{Add, Mul, Neg, Sub};

/// A finite field element.
///
/// Implementors must provide exact field arithmetic.  Elements are `Copy` and
/// cheap to move around; protocols store them inside message payloads via
/// [`Field::to_u64`] / [`Field::from_u64`].
pub trait Field:
    Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Number of elements in the field (`q`).  Returns `u64::MAX` if the order
    /// does not fit in a `u64` (never the case for the fields in this crate).
    fn order() -> u64;

    /// Canonical conversion from an integer; reduces modulo the field order /
    /// truncates to the field's bit width.
    fn from_u64(x: u64) -> Self;

    /// Canonical integer representation of the element, in `[0, order)`.
    fn to_u64(self) -> u64;

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics when called on the zero element.
    fn inv(self) -> Self;

    /// `self / rhs`.
    ///
    /// # Panics
    ///
    /// Panics when `rhs` is zero.
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }

    /// Exponentiation by squaring.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// `true` if this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Fused multiply–accumulate over slices: `acc[i] += c · src[i]`.
    ///
    /// This is the primitive behind every matrix–vector product in the crate
    /// (Reed–Solomon encode, syndrome checks, interpolation).  The default is
    /// the scalar loop; fields with vectorized kernels override it — see
    /// [`crate::kernels`].  Every implementation computes identical field
    /// arithmetic, so overriding never changes results.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn addmul_slice(acc: &mut [Self], src: &[Self], c: Self) {
        assert_eq!(acc.len(), src.len(), "addmul_slice length mismatch");
        if c.is_zero() {
            return;
        }
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a = *a + c * s;
        }
    }

    /// Sample a uniformly random field element.
    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection-free for power-of-two orders; for prime orders the modulo
        // bias is at most 2^-63 and irrelevant for simulation purposes.
        Self::from_u64(rng.gen::<u64>())
    }
}

/// Evaluate the polynomial with coefficients `coeffs` (low-order first) at `x`
/// using Horner's rule.
pub fn poly_eval<F: Field>(coeffs: &[F], x: F) -> F {
    let mut acc = F::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Lagrange interpolation: return the coefficients (low-order first) of the
/// unique polynomial of degree `< points.len()` passing through all `points`.
///
/// # Panics
///
/// Panics if two points share an x-coordinate.
pub fn lagrange_interpolate<F: Field>(points: &[(F, F)]) -> Vec<F> {
    let n = points.len();
    let mut coeffs = vec![F::ZERO; n];
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Build the i-th Lagrange basis polynomial incrementally.
        let mut basis = vec![F::ZERO; n];
        basis[0] = F::ONE;
        let mut deg = 0usize;
        let mut denom = F::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(xi != xj, "lagrange_interpolate: duplicate x-coordinate");
            // basis *= (x - xj)
            let mut next = vec![F::ZERO; n];
            for d in 0..=deg {
                next[d + 1] = next[d + 1] + basis[d];
                next[d] = next[d] - xj * basis[d];
            }
            basis = next;
            deg += 1;
            denom = denom * (xi - xj);
        }
        let scale = yi.div(denom);
        for d in 0..n {
            coeffs[d] = coeffs[d] + basis[d] * scale;
        }
    }
    coeffs
}

/// Multiply two polynomials given by their coefficient vectors (low-order first).
pub fn poly_mul<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![F::ZERO; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai.is_zero() {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = out[i + j] + ai * bj;
        }
    }
    out
}

/// Divide polynomial `num` by `den`, returning `(quotient, remainder)`
/// with coefficient vectors low-order first.
///
/// # Panics
///
/// Panics if `den` is the zero polynomial.
pub fn poly_divmod<F: Field>(num: &[F], den: &[F]) -> (Vec<F>, Vec<F>) {
    let den_deg = den
        .iter()
        .rposition(|c| !c.is_zero())
        .expect("poly_divmod: division by zero polynomial");
    let mut rem: Vec<F> = num.to_vec();
    let num_deg = rem.iter().rposition(|c| !c.is_zero()).unwrap_or(0);
    if num_deg < den_deg || rem.iter().all(|c| c.is_zero()) {
        return (vec![F::ZERO], rem);
    }
    let mut quot = vec![F::ZERO; num_deg - den_deg + 1];
    let lead_inv = den[den_deg].inv();
    for d in (den_deg..=num_deg).rev() {
        let coef = rem[d] * lead_inv;
        quot[d - den_deg] = coef;
        if coef.is_zero() {
            continue;
        }
        for j in 0..=den_deg {
            rem[d - den_deg + j] = rem[d - den_deg + j] - coef * den[j];
        }
    }
    (quot, rem)
}

/// Degree of a polynomial (position of the highest non-zero coefficient), or
/// `None` for the zero polynomial.
pub fn poly_degree<F: Field>(p: &[F]) -> Option<usize> {
    p.iter().rposition(|c| !c.is_zero())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2_16::Gf2_16;

    fn f(x: u64) -> Gf2_16 {
        Gf2_16::from_u64(x)
    }

    #[test]
    fn poly_eval_constant() {
        assert_eq!(poly_eval(&[f(7)], f(123)), f(7));
    }

    #[test]
    fn poly_eval_linear() {
        // p(x) = 3 + 2x over GF(2^16): p(5) = 3 + 2*5 (carryless) = 3 ^ 10 = 9.
        let p = [f(3), f(2)];
        assert_eq!(poly_eval(&p, f(5)), f(3) + f(2) * f(5));
    }

    #[test]
    fn interpolation_roundtrip() {
        let coeffs = vec![f(1), f(2), f(3), f(4)];
        let points: Vec<_> = (1u64..=4)
            .map(|x| (f(x), poly_eval(&coeffs, f(x))))
            .collect();
        let rec = lagrange_interpolate(&points);
        for x in 0u64..20 {
            assert_eq!(poly_eval(&rec, f(x)), poly_eval(&coeffs, f(x)));
        }
    }

    #[test]
    fn divmod_roundtrip() {
        let a = vec![f(3), f(0), f(7), f(1), f(9)];
        let b = vec![f(2), f(5), f(1)];
        let (q, r) = poly_divmod(&a, &b);
        let mut recomposed = poly_mul(&q, &b);
        recomposed.resize(a.len().max(r.len()), Gf2_16::ZERO);
        for (i, c) in r.iter().enumerate() {
            recomposed[i] = recomposed[i] + *c;
        }
        recomposed.truncate(a.len());
        assert_eq!(recomposed, a);
        assert!(poly_degree(&r).unwrap_or(0) < poly_degree(&b).unwrap());
    }

    #[test]
    #[should_panic]
    fn divmod_by_zero_panics() {
        let a = vec![f(1), f(2)];
        let z = vec![Gf2_16::ZERO];
        let _ = poly_divmod(&a, &z);
    }
}
