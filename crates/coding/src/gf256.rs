//! The binary field GF(2^8) (Rijndael polynomial).
//!
//! A small field used when codeword symbols must fit in a byte — e.g. when the
//! safe-broadcast procedure shards a message into many single-byte shares — and
//! in tests where exhaustively sweeping the field is convenient.

use crate::field::Field;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::OnceLock;

/// The AES field polynomial x^8 + x^4 + x^3 + x + 1.
const PRIM_POLY: u16 = 0x11B;
const GROUP_ORDER: usize = 255;

struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..GROUP_ORDER {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            // Multiply by the generator 0x03 = x + 1 (a primitive element of the AES field).
            x = (x << 1) ^ x;
            if x & 0x100 != 0 {
                x ^= PRIM_POLY;
            }
            x &= 0xFF;
        }
        for i in GROUP_ORDER..512 {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { log, exp }
    })
}

/// An element of GF(2^8).
///
/// `repr(transparent)` over the raw byte so slices of elements can be handed
/// to the byte-oriented SIMD kernels in [`crate::kernels`] without copying.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl std::fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl std::fmt::Display for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf256 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf256 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl Neg for Gf256 {
    type Output = Self;
    fn neg(self) -> Self {
        self
    }
}

impl Mul for Gf256 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256(0);
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[l])
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);

    fn order() -> u64 {
        256
    }

    fn from_u64(x: u64) -> Self {
        Gf256((x & 0xFF) as u8)
    }

    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^8)");
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Gf256(t.exp[GROUP_ORDER - l])
    }

    fn addmul_slice(acc: &mut [Self], src: &[Self], c: Self) {
        // Sound because Gf256 is repr(transparent) over u8.
        let acc_bytes =
            unsafe { std::slice::from_raw_parts_mut(acc.as_mut_ptr() as *mut u8, acc.len()) };
        let src_bytes = unsafe { std::slice::from_raw_parts(src.as_ptr() as *const u8, src.len()) };
        crate::kernels::gf256_addmul(acc_bytes, src_bytes, c.0);
    }
}

impl From<u8> for Gf256 {
    fn from(x: u8) -> Self {
        Gf256(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nonzero_element_has_inverse() {
        for x in 1..=255u8 {
            assert_eq!(Gf256(x) * Gf256(x).inv(), Gf256::ONE);
        }
    }

    #[test]
    fn exhaustive_distributivity() {
        // Small enough to sweep a meaningful sample exhaustively.
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                for c in (0..=255u8).step_by(11) {
                    let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn known_aes_product() {
        // 0x57 * 0x83 = 0xC1 in the AES field (FIPS-197 example).
        assert_eq!(Gf256(0x57) * Gf256(0x83), Gf256(0xC1));
    }

    #[test]
    fn characteristic_two() {
        for x in 0..=255u8 {
            assert_eq!(Gf256(x) + Gf256(x), Gf256::ZERO);
        }
    }
}
