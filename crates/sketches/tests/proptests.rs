//! Property-based tests: sketches always report true support elements and
//! merging equals streaming the union.

use proptest::prelude::*;
use sketches::l0::{L0Sampler, SketchRandomness};
use sketches::sparse_recovery::SparseRecovery;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn l0_query_returns_true_nonzero_element(
        seed in any::<u64>(),
        updates in prop::collection::vec((0u64..50, -3i64..4), 1..60),
    ) {
        let mut sk = L0Sampler::new(SketchRandomness::from_seed(seed));
        let mut truth: BTreeMap<u64, i64> = BTreeMap::new();
        for &(e, d) in &updates {
            sk.update(e, d);
            *truth.entry(e).or_insert(0) += d;
        }
        truth.retain(|_, f| *f != 0);
        match sk.query() {
            Some(s) => prop_assert!(truth.contains_key(&s), "sampled {s} has zero net frequency"),
            None => {
                // Failure to sample is only acceptable w.h.p. when the support is empty;
                // allow occasional failures, but an empty support must return None.
            }
        }
        if truth.is_empty() {
            prop_assert_eq!(sk.query(), None);
            prop_assert!(sk.is_empty_sketch());
        }
    }

    #[test]
    fn l0_merge_equals_union(
        seed in any::<u64>(),
        left in prop::collection::vec((0u64..40, -2i64..3), 0..30),
        right in prop::collection::vec((0u64..40, -2i64..3), 0..30),
    ) {
        let r = SketchRandomness::from_seed(seed);
        let mut a = L0Sampler::new(r);
        let mut b = L0Sampler::new(r);
        let mut u = L0Sampler::new(r);
        for &(e, d) in &left { a.update(e, d); u.update(e, d); }
        for &(e, d) in &right { b.update(e, d); u.update(e, d); }
        a.merge(&b);
        prop_assert_eq!(a, u);
    }

    #[test]
    fn sparse_recovery_exact_when_within_sparsity(
        seed in any::<u64>(),
        elements in prop::collection::btree_map(0u64..1000, -5i64..6, 0..6),
    ) {
        let truth: BTreeMap<u64, i64> = elements.into_iter().filter(|&(_, f)| f != 0).collect();
        let mut sk = SparseRecovery::new(SketchRandomness::from_seed(seed), 8);
        for (&e, &f) in &truth {
            sk.update(e, f);
        }
        let decoded = sk.decode();
        prop_assert!(decoded.is_some(), "decode failed within sparsity budget");
        let decoded: BTreeMap<u64, i64> = decoded.unwrap().into_iter().collect();
        prop_assert_eq!(decoded, truth);
    }

    #[test]
    fn sparse_recovery_merge_equals_union(
        seed in any::<u64>(),
        left in prop::collection::vec((0u64..100, 1i64..3), 0..4),
        right in prop::collection::vec((0u64..100, 1i64..3), 0..4),
    ) {
        let r = SketchRandomness::from_seed(seed);
        let mut a = SparseRecovery::new(r, 8);
        let mut b = SparseRecovery::new(r, 8);
        let mut u = SparseRecovery::new(r, 8);
        for &(e, d) in &left { a.update(e, d); u.update(e, d); }
        for &(e, d) in &right { b.update(e, d); u.update(e, d); }
        a.merge(&b);
        prop_assert_eq!(a.decode(), u.decode());
    }
}
