//! `s`-sparse recovery sketches.
//!
//! The `Õ(D_TP + f)` variant of the byzantine compiler (Section 1.2.2,
//! "Compilation with a Round Overhead of Õ(D_TP + f)") aggregates a *sparse
//! recovery* sketch with sparsity `s = Θ(f)` over each tree: when the global
//! mismatch multiset has at most `s` non-zero elements, the root recovers all
//! of them exactly.  The sketch is the classical hash-into-buckets-of-one-sparse
//! -cells construction with `O(log)` independent rows.

use crate::l0::SketchRandomness;
use crate::one_sparse::{OneSparseCell, OneSparseResult};
use coding::hashing::KWiseHash;
use std::collections::BTreeMap;

/// Number of independent rows (each a hash table of one-sparse cells).
const ROWS: usize = 6;

/// A mergeable `s`-sparse recovery sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseRecovery {
    randomness: SketchRandomness,
    sparsity: usize,
    cols: usize,
    hashes: Vec<KWiseHash>,
    /// `cells[row][col]`
    cells: Vec<Vec<OneSparseCell>>,
}

impl SparseRecovery {
    /// Create an empty sketch able to recover up to `sparsity` non-zero elements.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity == 0`.
    pub fn new(randomness: SketchRandomness, sparsity: usize) -> Self {
        assert!(sparsity > 0, "sparsity must be positive");
        let cols = (2 * sparsity).next_power_of_two();
        let hashes: Vec<KWiseHash> = (0..ROWS)
            .map(|r| {
                KWiseHash::from_seed(randomness.seed() ^ (0xABCD_0000 + r as u64), 2, cols as u64)
            })
            .collect();
        let cells = (0..ROWS)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        OneSparseCell::new(randomness.seed() ^ (((r * cols + c) as u64) << 17) | 1)
                    })
                    .collect()
            })
            .collect();
        SparseRecovery {
            randomness,
            sparsity,
            cols,
            hashes,
            cells,
        }
    }

    /// The sparsity parameter `s`.
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// Add `delta` to the net frequency of `element`.
    pub fn update(&mut self, element: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        for row in 0..ROWS {
            let col = self.hashes[row].hash(element) as usize;
            self.cells[row][col].update(element, delta);
        }
    }

    /// Merge another sketch built from the same randomness and sparsity.
    ///
    /// # Panics
    ///
    /// Panics if the sketches are incompatible.
    pub fn merge(&mut self, other: &SparseRecovery) {
        assert_eq!(self.randomness, other.randomness, "randomness mismatch");
        assert_eq!(self.sparsity, other.sparsity, "sparsity mismatch");
        for (ours, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (a, b) in ours.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    /// Recover the full multiset of non-zero-frequency elements, provided there
    /// are at most `s` of them.  Uses iterative peeling: recover singleton
    /// buckets, subtract them everywhere, repeat.  Returns `None` when the
    /// residual is non-empty but nothing more can be peeled (i.e. the true
    /// support was larger than `s` or hashing was unlucky).
    pub fn decode(&self) -> Option<Vec<(u64, i64)>> {
        let mut work = self.clone();
        let mut recovered: BTreeMap<u64, i64> = BTreeMap::new();
        loop {
            // Find any singleton bucket.
            let mut found: Option<(u64, i64)> = None;
            'scan: for row in &work.cells {
                for cell in row {
                    if let OneSparseResult::Single { element, frequency } = cell.decode() {
                        found = Some((element, frequency));
                        break 'scan;
                    }
                }
            }
            match found {
                Some((element, frequency)) => {
                    *recovered.entry(element).or_insert(0) += frequency;
                    work.update(element, -frequency);
                }
                None => break,
            }
        }
        let residual_empty = work
            .cells
            .iter()
            .flat_map(|r| r.iter())
            .all(|c| c.is_zero());
        if residual_empty {
            Some(recovered.into_iter().filter(|&(_, f)| f != 0).collect())
        } else {
            None
        }
    }

    /// Whether the sketch currently summarises the empty multiset.
    pub fn is_empty_sketch(&self) -> bool {
        self.cells
            .iter()
            .flat_map(|r| r.iter())
            .all(|c| c.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn randomness(seed: u64) -> SketchRandomness {
        SketchRandomness::from_seed(seed)
    }

    #[test]
    #[should_panic]
    fn zero_sparsity_rejected() {
        let _ = SparseRecovery::new(randomness(1), 0);
    }

    #[test]
    fn empty_decodes_to_empty() {
        let sk = SparseRecovery::new(randomness(1), 4);
        assert_eq!(sk.decode(), Some(vec![]));
        assert!(sk.is_empty_sketch());
    }

    #[test]
    fn recovers_exact_multiset_within_sparsity() {
        for seed in 0..10u64 {
            let mut sk = SparseRecovery::new(randomness(seed), 8);
            let truth: Vec<(u64, i64)> = vec![(3, 1), (900, -2), (17, 5), (44, 1), (1_000_000, 7)];
            for &(e, f) in &truth {
                sk.update(e, f);
            }
            let mut decoded = sk.decode().expect("decode within sparsity must succeed");
            decoded.sort_unstable();
            let mut expect = truth.clone();
            expect.sort_unstable();
            assert_eq!(decoded, expect, "seed {seed}");
        }
    }

    #[test]
    fn cancelled_elements_do_not_appear() {
        let mut sk = SparseRecovery::new(randomness(5), 4);
        sk.update(10, 3);
        sk.update(10, -3);
        sk.update(20, 1);
        assert_eq!(sk.decode(), Some(vec![(20, 1)]));
    }

    #[test]
    fn oversubscribed_sketch_reports_failure() {
        let mut sk = SparseRecovery::new(randomness(2), 2);
        for e in 0..200u64 {
            sk.update(e, 1);
        }
        // With 200 non-zero elements in a sparsity-2 sketch peeling cannot
        // complete; decode must not hallucinate a small support.
        match sk.decode() {
            None => {}
            Some(list) => {
                assert!(
                    list.len() >= 150,
                    "decode claimed a tiny support for a dense stream"
                );
            }
        }
    }

    #[test]
    fn merge_matches_union() {
        let r = randomness(9);
        let mut a = SparseRecovery::new(r, 6);
        let mut b = SparseRecovery::new(r, 6);
        let mut c = SparseRecovery::new(r, 6);
        for e in 0..6u64 {
            if e % 2 == 0 {
                a.update(e, (e + 1) as i64);
            } else {
                b.update(e, -(e as i64));
            }
            c.update(
                e,
                if e % 2 == 0 {
                    (e + 1) as i64
                } else {
                    -(e as i64)
                },
            );
        }
        a.merge(&b);
        assert_eq!(a.decode(), c.decode());
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_sparsity() {
        let r = randomness(1);
        let mut a = SparseRecovery::new(r, 2);
        let b = SparseRecovery::new(r, 4);
        a.merge(&b);
    }
}
