//! ℓ0-sampling sketches (Theorem 3.4 of the paper, after Cormode–Firmani).
//!
//! An [`L0Sampler`] summarises a turnstile stream in `polylog` space and, on
//! query, returns a (near-)uniformly random element among those with non-zero
//! net frequency.  Sketches created from the same [`SketchRandomness`] can be
//! merged, which is what lets every node compute a local sketch of its own
//! sent/received messages and the tree aggregate them bottom-up into a sketch
//! of the *global* mismatch multiset.

use crate::one_sparse::{OneSparseCell, OneSparseResult};
use coding::hashing::KWiseHash;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shared randomness for a family of mergeable sketches.
///
/// In the compiler this is the `O(log^4 n)`-bit string the tree root broadcasts
/// before the aggregation; every node then builds its local sketch from the
/// same randomness so that the merge operation is well defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchRandomness {
    seed: u64,
}

impl SketchRandomness {
    /// Wrap a seed value (e.g. broadcast by the tree root).
    pub fn from_seed(seed: u64) -> Self {
        SketchRandomness { seed }
    }

    /// Draw fresh randomness from an RNG.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SketchRandomness { seed: rng.gen() }
    }

    /// The underlying seed (what actually travels in a message).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn derive(&self, purpose: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(purpose.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .rotate_left(23)
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
    }
}

/// Number of geometric sub-sampling levels (supports universes up to 2^64).
const LEVELS: usize = 64;
/// One-sparse cells per level; more cells lower the per-level failure probability.
const CELLS_PER_LEVEL: usize = 3;

/// A mergeable ℓ0-sampling sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L0Sampler {
    randomness: SketchRandomness,
    level_hash: KWiseHash,
    cell_hash: KWiseHash,
    /// `cells[level][slot]`
    cells: Vec<Vec<OneSparseCell>>,
}

impl L0Sampler {
    /// Create an empty sketch from shared randomness.
    pub fn new(randomness: SketchRandomness) -> Self {
        let level_hash = KWiseHash::from_seed(randomness.derive(1), 2, u64::MAX);
        let cell_hash = KWiseHash::from_seed(randomness.derive(2), 2, CELLS_PER_LEVEL as u64);
        let cells = (0..LEVELS)
            .map(|lvl| {
                (0..CELLS_PER_LEVEL)
                    .map(|slot| {
                        OneSparseCell::new(randomness.derive(1000 + (lvl * 10 + slot) as u64))
                    })
                    .collect()
            })
            .collect();
        L0Sampler {
            randomness,
            level_hash,
            cell_hash,
            cells,
        }
    }

    /// The shared randomness this sketch was built from.
    pub fn randomness(&self) -> SketchRandomness {
        self.randomness
    }

    /// The level an element is sub-sampled into: geometric in the number of
    /// trailing zero bits of its hash.
    fn level_of(&self, element: u64) -> usize {
        let h = self.level_hash.hash(element);
        (h.trailing_zeros() as usize).min(LEVELS - 1)
    }

    /// Add `delta` to the net frequency of `element`.
    pub fn update(&mut self, element: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        let max_level = self.level_of(element);
        let slot = self.cell_hash.hash(element) as usize;
        // The element participates in every level up to its sampled level.
        for lvl in 0..=max_level {
            self.cells[lvl][slot].update(element, delta);
        }
    }

    /// Merge another sketch built from the same randomness.
    ///
    /// # Panics
    ///
    /// Panics if the randomness differs.
    pub fn merge(&mut self, other: &L0Sampler) {
        assert_eq!(
            self.randomness, other.randomness,
            "cannot merge sketches with different randomness"
        );
        for (ours, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (a, b) in ours.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
    }

    /// Query the sketch: a (near-)uniform element with non-zero net frequency,
    /// or `None` if the summarised multiset appears empty / recovery failed.
    pub fn query(&self) -> Option<u64> {
        // Scan from the sparsest (deepest) level downward: the first level at
        // which some cell recovers a single element yields the sample.
        for lvl in (0..LEVELS).rev() {
            for cell in &self.cells[lvl] {
                if let OneSparseResult::Single { element, .. } = cell.decode() {
                    return Some(element);
                }
            }
        }
        None
    }

    /// Query with the recovered frequency as well.
    pub fn query_with_frequency(&self) -> Option<(u64, i64)> {
        for lvl in (0..LEVELS).rev() {
            for cell in &self.cells[lvl] {
                if let OneSparseResult::Single { element, frequency } = cell.decode() {
                    return Some((element, frequency));
                }
            }
        }
        None
    }

    /// Whether every cell summarises the empty multiset (no non-zero element
    /// *and* no undetected collision residue — exact emptiness).
    pub fn is_empty_sketch(&self) -> bool {
        self.cells
            .iter()
            .flat_map(|lvl| lvl.iter())
            .all(|c| c.is_zero())
    }

    /// Serialise the sketch state into words (for sending over the simulator).
    ///
    /// The encoding is only consumed by [`L0Sampler::merge`]-style plumbing in tests /
    /// protocol plumbing; it is not a stable format.
    pub fn encoded_size_words(&self) -> usize {
        // 4 words per cell (count, weighted (2 words), fingerprint) — a rough
        // proxy used for bandwidth accounting in the simulator.
        LEVELS * CELLS_PER_LEVEL * 4
    }
}

/// A bank of `t` independent ℓ0-samplers sharing a base seed, as used by the
/// compiler (each tree runs `t = Θ(log n)` independent samplers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L0SamplerBank {
    samplers: Vec<L0Sampler>,
}

impl L0SamplerBank {
    /// Create `t` independent samplers derived from one base randomness.
    pub fn new(randomness: SketchRandomness, t: usize) -> Self {
        let samplers = (0..t)
            .map(|i| {
                L0Sampler::new(SketchRandomness::from_seed(
                    randomness.derive(7_000 + i as u64),
                ))
            })
            .collect();
        L0SamplerBank { samplers }
    }

    /// Number of samplers in the bank.
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.samplers.is_empty()
    }

    /// Update every sampler.
    pub fn update(&mut self, element: u64, delta: i64) {
        for s in &mut self.samplers {
            s.update(element, delta);
        }
    }

    /// Merge another bank (same base randomness and size).
    ///
    /// # Panics
    ///
    /// Panics if the banks are incompatible.
    pub fn merge(&mut self, other: &L0SamplerBank) {
        assert_eq!(self.samplers.len(), other.samplers.len());
        for (a, b) in self.samplers.iter_mut().zip(&other.samplers) {
            a.merge(b);
        }
    }

    /// Query every sampler, returning one (possibly duplicated) sample per sampler.
    pub fn query_all(&self) -> Vec<u64> {
        self.samplers.iter().filter_map(|s| s.query()).collect()
    }
}

/// Convenience used by tests and calibration: estimate the sampling
/// distribution of an ℓ0 sampler over a fixed support by repeated independent
/// sketches.
pub fn empirical_sample_counts(
    support: &[u64],
    trials: usize,
    base_seed: u64,
) -> std::collections::HashMap<u64, usize> {
    let mut counts = std::collections::HashMap::new();
    let mut rng = ChaCha8Rng::seed_from_u64(base_seed);
    for _ in 0..trials {
        let mut sk = L0Sampler::new(SketchRandomness::random(&mut rng));
        for &e in support {
            sk.update(e, 1);
        }
        if let Some(s) = sk.query() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_returns_none() {
        let sk = L0Sampler::new(SketchRandomness::from_seed(1));
        assert_eq!(sk.query(), None);
        assert!(sk.is_empty_sketch());
    }

    #[test]
    fn singleton_always_recovered() {
        for seed in 0..20 {
            let mut sk = L0Sampler::new(SketchRandomness::from_seed(seed));
            sk.update(777, 2);
            assert_eq!(sk.query(), Some(777));
            assert_eq!(sk.query_with_frequency(), Some((777, 2)));
        }
    }

    #[test]
    fn cancelled_elements_are_never_sampled() {
        let mut sk = L0Sampler::new(SketchRandomness::from_seed(3));
        sk.update(1, 1);
        sk.update(2, 1);
        sk.update(1, -1);
        // Element 1 net frequency is 0, so any successful query must return 2.
        for _ in 0..3 {
            if let Some(s) = sk.query() {
                assert_eq!(s, 2);
            }
        }
    }

    #[test]
    fn query_returns_a_true_support_element() {
        let support: Vec<u64> = (100..140).collect();
        let mut successes = 0;
        for seed in 0..50u64 {
            let mut sk = L0Sampler::new(SketchRandomness::from_seed(seed));
            for &e in &support {
                sk.update(e, 1);
            }
            if let Some(s) = sk.query() {
                successes += 1;
                assert!(support.contains(&s), "sampled element {s} not in support");
            }
        }
        assert!(successes >= 40, "too many query failures: {successes}/50");
    }

    #[test]
    fn merge_equals_union_stream() {
        let r = SketchRandomness::from_seed(11);
        let mut a = L0Sampler::new(r);
        let mut b = L0Sampler::new(r);
        let mut combined = L0Sampler::new(r);
        for e in 0..30u64 {
            if e % 2 == 0 {
                a.update(e, 1);
            } else {
                b.update(e, 1);
            }
            combined.update(e, 1);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    #[should_panic]
    fn merge_requires_matching_randomness() {
        let mut a = L0Sampler::new(SketchRandomness::from_seed(1));
        let b = L0Sampler::new(SketchRandomness::from_seed(2));
        a.merge(&b);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let support: Vec<u64> = (1..=8).collect();
        let counts = empirical_sample_counts(&support, 4000, 42);
        let total: usize = counts.values().sum();
        assert!(total > 3500, "too many failed queries: {total}");
        for &e in &support {
            let c = *counts.get(&e).unwrap_or(&0);
            let expect = total as f64 / support.len() as f64;
            assert!(
                (c as f64) > expect * 0.5 && (c as f64) < expect * 1.7,
                "element {e} sampled {c} times, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn bank_updates_and_merges() {
        let r = SketchRandomness::from_seed(9);
        let mut a = L0SamplerBank::new(r, 8);
        let mut b = L0SamplerBank::new(r, 8);
        a.update(5, 1);
        b.update(6, 1);
        a.merge(&b);
        let samples = a.query_all();
        // Individual samplers may occasionally fail to recover; most must succeed.
        assert!(
            samples.len() >= 6,
            "too many failed samplers: {}",
            samples.len()
        );
        assert!(samples.iter().all(|&s| s == 5 || s == 6));
        assert!(samples.contains(&5) || samples.contains(&6));
    }

    #[test]
    fn bank_len() {
        let bank = L0SamplerBank::new(SketchRandomness::from_seed(1), 3);
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
    }
}
