//! One-sparse recovery cells — the building block of ℓ0-samplers and
//! `s`-sparse recovery sketches.
//!
//! A cell summarises a turnstile stream of `(element, frequency-change)` pairs
//! with three counters: the total frequency, the frequency-weighted sum of
//! element values, and a random polynomial fingerprint.  If the summarised
//! multiset has exactly one element with non-zero frequency, the cell recovers
//! it exactly (and the fingerprint check fails with probability `≤ poly(n)/p`
//! otherwise).

use coding::field::Field;
use coding::fp::Fp61;

/// What a cell's decode step concluded about its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneSparseResult {
    /// All frequencies cancelled: the summarised multiset is empty.
    Zero,
    /// Exactly one element has non-zero frequency.
    Single {
        /// The element.
        element: u64,
        /// Its net frequency.
        frequency: i64,
    },
    /// More than one element has non-zero frequency (or the fingerprint check failed).
    Collision,
}

/// A mergeable one-sparse recovery cell.
///
/// Two cells can be merged iff they were created with the same fingerprint
/// point (i.e. the same shared randomness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneSparseCell {
    /// Σ frequencies.
    count: i128,
    /// Σ frequency · (element + 1)   (the +1 keeps element 0 distinguishable).
    weighted: i128,
    /// Σ frequency · r^(element + 1) over F_p.
    fingerprint: Fp61,
    /// The fingerprint evaluation point (from shared randomness).
    point: Fp61,
}

impl OneSparseCell {
    /// An empty cell with fingerprint point derived from `randomness`.
    pub fn new(randomness: u64) -> Self {
        // Any non-zero field element works as the evaluation point.
        let point = Fp61::from_u64(randomness | 1);
        OneSparseCell {
            count: 0,
            weighted: 0,
            fingerprint: Fp61::ZERO,
            point,
        }
    }

    /// Add `delta` to the frequency of `element`.
    pub fn update(&mut self, element: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        let val = element as i128 + 1;
        self.count += delta as i128;
        self.weighted += delta as i128 * val;
        let term = self.point.pow(element.wrapping_add(1));
        let delta_f = signed_to_field(delta as i128);
        self.fingerprint = self.fingerprint + delta_f * term;
    }

    /// Merge another cell created with the same randomness into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two cells use different fingerprint points.
    pub fn merge(&mut self, other: &OneSparseCell) {
        assert_eq!(
            self.point, other.point,
            "cannot merge cells with different randomness"
        );
        self.count += other.count;
        self.weighted += other.weighted;
        self.fingerprint = self.fingerprint + other.fingerprint;
    }

    /// Attempt to decode the summarised multiset.
    pub fn decode(&self) -> OneSparseResult {
        if self.count == 0 && self.weighted == 0 && self.fingerprint == Fp61::ZERO {
            return OneSparseResult::Zero;
        }
        if self.count == 0 {
            return OneSparseResult::Collision;
        }
        if self.weighted % self.count != 0 {
            return OneSparseResult::Collision;
        }
        let candidate = self.weighted / self.count;
        if candidate <= 0 || candidate > u64::MAX as i128 + 1 {
            return OneSparseResult::Collision;
        }
        let element = (candidate - 1) as u64;
        // Verify the fingerprint: it must equal count · r^(element+1).
        let expect = signed_to_field(self.count) * self.point.pow(element.wrapping_add(1));
        if expect == self.fingerprint {
            OneSparseResult::Single {
                element,
                frequency: self.count as i64,
            }
        } else {
            OneSparseResult::Collision
        }
    }

    /// Whether the cell currently summarises the empty multiset.
    pub fn is_zero(&self) -> bool {
        matches!(self.decode(), OneSparseResult::Zero)
    }
}

fn signed_to_field(x: i128) -> Fp61 {
    let p = coding::fp::P61 as i128;
    let r = ((x % p) + p) % p;
    Fp61::from_u64(r as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_is_zero() {
        let c = OneSparseCell::new(17);
        assert_eq!(c.decode(), OneSparseResult::Zero);
        assert!(c.is_zero());
    }

    #[test]
    fn single_element_recovered() {
        let mut c = OneSparseCell::new(17);
        c.update(1234, 3);
        assert_eq!(
            c.decode(),
            OneSparseResult::Single {
                element: 1234,
                frequency: 3
            }
        );
    }

    #[test]
    fn element_zero_is_representable() {
        let mut c = OneSparseCell::new(5);
        c.update(0, 1);
        assert_eq!(
            c.decode(),
            OneSparseResult::Single {
                element: 0,
                frequency: 1
            }
        );
    }

    #[test]
    fn cancelling_updates_return_to_zero() {
        let mut c = OneSparseCell::new(99);
        c.update(42, 5);
        c.update(42, -5);
        assert_eq!(c.decode(), OneSparseResult::Zero);
        c.update(7, 1);
        c.update(9, 1);
        c.update(7, -1);
        assert_eq!(
            c.decode(),
            OneSparseResult::Single {
                element: 9,
                frequency: 1
            }
        );
    }

    #[test]
    fn collision_detected() {
        let mut c = OneSparseCell::new(3);
        c.update(10, 1);
        c.update(20, 1);
        assert_eq!(c.decode(), OneSparseResult::Collision);
        // Opposite frequencies of different elements: count = 0 but not empty.
        let mut d = OneSparseCell::new(3);
        d.update(10, 1);
        d.update(20, -1);
        assert_eq!(d.decode(), OneSparseResult::Collision);
    }

    #[test]
    fn adversarial_weighted_average_collision_caught_by_fingerprint() {
        // {8: 1, 12: 1} has weighted average 10+1... choose elements so that
        // weighted/count is integral and a valid element: {(9,1),(11,1)} →
        // count 2, weighted (10+12)=22, candidate 11-1=10 which is NOT in the set.
        let mut c = OneSparseCell::new(1234567);
        c.update(9, 1);
        c.update(11, 1);
        assert_eq!(c.decode(), OneSparseResult::Collision);
    }

    #[test]
    fn merge_combines_streams() {
        let mut a = OneSparseCell::new(7);
        let mut b = OneSparseCell::new(7);
        a.update(5, 2);
        b.update(5, -2);
        b.update(33, 4);
        a.merge(&b);
        assert_eq!(
            a.decode(),
            OneSparseResult::Single {
                element: 33,
                frequency: 4
            }
        );
    }

    #[test]
    #[should_panic]
    fn merge_requires_same_randomness() {
        let mut a = OneSparseCell::new(7);
        let b = OneSparseCell::new(8);
        a.merge(&b);
    }

    #[test]
    fn zero_delta_is_ignored() {
        let mut a = OneSparseCell::new(7);
        a.update(5, 0);
        assert!(a.is_zero());
    }

    #[test]
    fn large_elements_supported() {
        let mut a = OneSparseCell::new(7);
        a.update(u64::MAX, 1);
        assert_eq!(
            a.decode(),
            OneSparseResult::Single {
                element: u64::MAX,
                frequency: 1
            }
        );
    }
}
