//! Mergeable streaming sketches for the mobile-byzantine message-correction
//! procedure.
//!
//! The compiler of Theorem 3.5 finds the messages a mobile adversary corrupted
//! by viewing each round's traffic as a turnstile stream — every *sent* message
//! with frequency `+1`, every *received* message with frequency `-1` — so that
//! correctly delivered messages cancel and only mismatches survive.  The root
//! of every tree in the packing aggregates:
//!
//! * [`l0::L0Sampler`] — an ℓ0-sampling sketch returning a near-uniform
//!   surviving element (Theorem 3.4), used in the `Õ(D_TP)` compiler;
//! * [`sparse_recovery::SparseRecovery`] — an `s`-sparse recovery sketch
//!   returning *all* surviving elements when there are at most `s`, used in the
//!   simpler `Õ(D_TP + f)` variant.
//!
//! # Example
//!
//! ```
//! use sketches::l0::{L0Sampler, SketchRandomness};
//!
//! let shared = SketchRandomness::from_seed(7);
//! let mut at_u = L0Sampler::new(shared);
//! let mut at_v = L0Sampler::new(shared);
//! at_u.update(42, 1);   // u sent message 42
//! at_v.update(42, -1);  // v received message 42 — cancels after merging
//! at_v.update(99, -1);  // v received a corrupted message 99
//! at_u.merge(&at_v);
//! assert_eq!(at_u.query(), Some(99));
//! ```

pub mod l0;
pub mod one_sparse;
pub mod sparse_recovery;

pub use l0::{L0Sampler, L0SamplerBank, SketchRandomness};
pub use one_sparse::{OneSparseCell, OneSparseResult};
pub use sparse_recovery::SparseRecovery;
