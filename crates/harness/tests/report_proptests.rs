//! Property tests for the campaign-report record codec
//! (`mobile_congest_harness::report`): arbitrary records survive the
//! encode → parse round trip byte-for-byte, and the report fingerprint is a
//! pure function of the cells.

use mobile_congest_harness::report::{CellRecord, RecordOutcome, ReportRecord};
use proptest::prelude::*;

/// A random display-name-ish string exercising the escaper (names in real
/// campaigns contain parens, equals signs and digits; throw in the JSON
/// specials too).
fn arbitrary_name(picks: &[u32]) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '(', ')', '=', '-', ' ', '"', '\\', '\n', '\t', 'é', '😀', '{', '}',
    ];
    picks
        .iter()
        .map(|&p| ALPHABET[p as usize % ALPHABET.len()])
        .collect()
}

/// A finite f64 from raw bits (NaN/inf never reach the serializer — campaign
/// facets are finite by construction).
fn finite(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        (bits % 1_000_003) as f64 / 7.0
    }
}

fn arbitrary_record(
    index: usize,
    tag: u32,
    seed: u64,
    name_picks: &[u32],
    floats: &[u64],
) -> CellRecord {
    let outcome = match tag % 4 {
        0 | 1 => RecordOutcome::Ok {
            payload_rounds: (seed % 1000) as usize,
            network_rounds: (seed % 10_000) as usize,
            corrupted_edge_rounds: (seed % 77) as usize,
            cong_p99: finite(floats.first().copied().unwrap_or(42)),
            cong_topk: finite(floats.get(1).copied().unwrap_or(43)),
            agrees: match tag % 3 {
                0 => Some(true),
                1 => Some(false),
                _ => None,
            },
            notes_type: arbitrary_name(name_picks),
            notes: floats
                .iter()
                .enumerate()
                .map(|(i, &bits)| (format!("metric_{i}"), finite(bits)))
                .collect(),
        },
        2 => RecordOutcome::Skipped {
            error: arbitrary_name(name_picks),
        },
        _ => RecordOutcome::Failed {
            error: arbitrary_name(name_picks),
        },
    };
    CellRecord {
        index,
        graph: arbitrary_name(name_picks),
        adversary: format!("adv-{}", tag % 5),
        compiler: arbitrary_name(&name_picks.iter().rev().copied().collect::<Vec<_>>()),
        repetition: index % 3,
        seed,
        outcome,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn cell_records_round_trip_exactly(
        tag in any::<u32>(),
        seed in any::<u64>(),
        name_picks in prop::collection::vec(any::<u32>(), 0..12),
        floats in prop::collection::vec(any::<u64>(), 0..6),
    ) {
        let record = arbitrary_record(7, tag, seed, &name_picks, &floats);
        let line = record.to_json();
        let back = CellRecord::from_json(&line)
            .map_err(|e| TestCaseError(format!("`{line}` failed to parse: {e}")))?;
        prop_assert_eq!(&back, &record);
        prop_assert_eq!(back.to_json(), line, "encode must be idempotent");
    }

    #[test]
    fn report_records_round_trip_and_fingerprint_stably(
        shapes in prop::collection::vec(
            (any::<u32>(), any::<u64>(), prop::collection::vec(any::<u32>(), 0..6)),
            0..8,
        ),
    ) {
        let report = ReportRecord {
            cells: shapes
                .iter()
                .enumerate()
                .map(|(i, (tag, seed, picks))| arbitrary_record(i, *tag, *seed, picks, &[*seed]))
                .collect(),
        };
        let text = report.to_jsonl();
        let back = ReportRecord::from_jsonl(&text)
            .map_err(|e| TestCaseError(format!("round trip failed: {e}")))?;
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(back.to_jsonl(), text);
        prop_assert_eq!(back.fingerprint(), report.fingerprint());
    }
}
