//! Property tests for the shared hand-rolled JSON implementation
//! (`mobile_congest_harness::json`): arbitrary strings survive the
//! escape → parse round trip, arbitrary numbers and whole randomly shaped
//! documents survive format → parse, and the spec serializer built on top
//! round-trips arbitrary campaign grids.

use mobile_congest_harness::json::{self, json_num, json_str, JsonValue};
use proptest::prelude::*;

/// A printable-ish random string mixing ASCII, controls, quotes, backslashes
/// and non-ASCII code points — the characters the escaper has to get right.
fn arbitrary_string(picks: &[u32]) -> String {
    const ALPHABET: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1}',
        '\u{1f}',
        'é',
        'π',
        '😀',
        '\u{7f}',
        '\u{2028}',
        '\u{10FFFF}',
        ':',
        ',',
        '{',
        '}',
        '[',
        ']',
    ];
    picks
        .iter()
        .map(|&p| ALPHABET[p as usize % ALPHABET.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escaped_strings_round_trip(picks in prop::collection::vec(any::<u32>(), 0..24)) {
        let original = arbitrary_string(&picks);
        let rendered = json_str(&original);
        let parsed = json::parse(&rendered)
            .map_err(|e| TestCaseError(format!("{rendered} failed to parse: {e}")))?;
        prop_assert_eq!(parsed.as_str(), Some(original.as_str()));
    }

    #[test]
    fn u64_numbers_round_trip_exactly(n in any::<u64>()) {
        let parsed = json::parse(&JsonValue::from_u64(n).to_string()).unwrap();
        prop_assert_eq!(parsed.as_u64(), Some(n));
    }

    #[test]
    fn f64_numbers_round_trip_through_json_num(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        if !v.is_finite() {
            // NaN/inf never reach the serializer (campaign metrics are finite).
            return Ok(());
        }
        let rendered = json_num(v);
        let parsed = json::parse(&rendered).unwrap();
        prop_assert_eq!(parsed.as_f64(), Some(v), "token `{}`", rendered);
    }

    #[test]
    fn random_documents_round_trip(shape in prop::collection::vec((any::<u32>(), any::<u64>()), 1..16)) {
        // Fold the random shape into a nested document: strings, numbers,
        // bools and nulls under alternating array/object nesting.
        let mut items = Vec::new();
        for &(tag, value) in &shape {
            items.push(match tag % 4 {
                0 => JsonValue::Str(arbitrary_string(&[tag, value as u32])),
                1 => JsonValue::from_u64(value),
                2 => JsonValue::Bool(value % 2 == 0),
                _ => JsonValue::Null,
            });
        }
        let doc = JsonValue::Obj(vec![
            ("items".to_string(), JsonValue::Arr(items.clone())),
            ("nested".to_string(), JsonValue::Obj(
                items.into_iter().enumerate().map(|(i, v)| (format!("k{i}"), v)).collect(),
            )),
        ]);
        let parsed = json::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(parsed, doc);
    }
}
