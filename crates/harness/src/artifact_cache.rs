//! The campaign compile-artifact cache: one [`CompileArtifacts`] per
//! `(GraphDef, CompilerDef)` pair, shared across the worker pool and across
//! `campaignd` batches.
//!
//! A campaign grid runs every compiler against every graph under several
//! adversaries and seed repetitions, but [`Compiler::prepare`] — the graph
//! clone, CSR index, tree packings, wrapped compiler instances — is keyed by
//! the `(graph, compiler)` pair alone.  The cache computes each pair's
//! artifacts **exactly once** (the preparing worker holds the pair's shard
//! lock, so concurrent workers block rather than duplicate the work) and
//! hands every other cell of the pair an `Arc` share.
//!
//! Keys are the **spec-layer canonical JSON** of the two defs
//! ([`crate::spec::graph_to_json`] / [`crate::spec::compiler_to_json`]), not
//! a hash — collisions are impossible by construction, so a hit can never
//! hand a cell the wrong artifacts.  Only campaigns built by
//! [`Campaign::from_spec`](crate::Campaign::from_spec) know their defs;
//! hand-built campaigns run uncached, bit-for-bit as before.
//!
//! Failed preparations are cached too ([`ScenarioError`] is `Clone`): a
//! structurally incompatible pair — the clique compiler on a torus, say —
//! costs one `prepare` for the whole campaign, and every cell of the pair
//! reproduces the identical typed error the uncached path would surface.
//!
//! Determinism: prepared artifacts are a pure function of `(graph,
//! compiler)`, so campaign fingerprints are byte-identical with the cache on
//! or off at any thread count (regression-tested in this module and measured
//! by bench E16f).  Traced campaigns bypass the cache — `prepare` emits
//! packing spans into the cell's event stream, and a cache hit would elide
//! them from all but the first cell.

use congest_sim::scenario::{CompileArtifacts, Compiler, ScenarioError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards.  Sixteen keeps lock contention
/// negligible at any realistic worker count while staying cheap to allocate.
const SHARDS: usize = 16;

/// One cached preparation outcome: the shared artifacts, or the typed error
/// every cell of the pair will reproduce.
type CachedPrepare = Result<Arc<CompileArtifacts>, ScenarioError>;

/// A sharded, insert-once map from `(GraphDef, CompilerDef)` canonical JSON
/// keys to prepared [`CompileArtifacts`], with hit/miss counters.
///
/// Entries are never evicted or replaced — once a key is populated it is
/// read-only, which is what makes handing `Arc` shares to a worker pool
/// sound without any further synchronisation.
pub struct ArtifactCache {
    shards: Vec<Mutex<HashMap<String, CachedPrepare>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a `(graph, compiler)` pair of canonical-JSON def
    /// encodings.  The separator is a newline, which canonical JSON never
    /// contains raw, so distinct pairs always get distinct keys.
    pub fn pair_key(graph_json: &str, compiler_json: &str) -> String {
        format!("{graph_json}\n{compiler_json}")
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, CachedPrepare>> {
        // FNV-1a over the key bytes picks the shard; any stable spread works.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// The cached preparation for `key`, computing it via `prepare` on a
    /// miss.  The shard lock is held across the computation, so each key is
    /// prepared exactly once no matter how many workers race on it.
    pub fn get_or_prepare(
        &self,
        key: &str,
        prepare: impl FnOnce() -> Result<CompileArtifacts, ScenarioError>,
    ) -> CachedPrepare {
        let mut shard = self.shard(key).lock().expect("artifact-cache shard lock");
        if let Some(cached) = shard.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = prepare().map(Arc::new);
        shard.insert(key.to_string(), outcome.clone());
        outcome
    }

    /// [`ArtifactCache::get_or_prepare`] driving [`Compiler::prepare`] with a
    /// disabled tracer — the form the campaign engine uses (cached cells
    /// never trace; see the module docs).
    pub fn prepare_with(
        &self,
        key: &str,
        compiler: &dyn Compiler,
        graph: &netgraph::Graph,
    ) -> CachedPrepare {
        self.get_or_prepare(key, || {
            let mut tracer = obs::TraceSpec::off().build_tracer();
            compiler.prepare(graph, &mut tracer)
        })
    }

    /// Number of distinct `(graph, compiler)` pairs cached so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("artifact-cache shard lock").len())
            .sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run `prepare`.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::scenario::Uncompiled;
    use netgraph::generators;

    #[test]
    fn each_key_prepares_exactly_once() {
        let cache = ArtifactCache::new();
        let g = generators::complete(6);
        let mut calls = 0;
        for _ in 0..5 {
            let out = cache.get_or_prepare("k", || {
                calls += 1;
                let mut tracer = obs::TraceSpec::off().build_tracer();
                Uncompiled.prepare(&g, &mut tracer)
            });
            assert!(out.is_ok());
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn failed_preparations_are_cached_and_replayed() {
        let cache = ArtifactCache::new();
        let err = ScenarioError::UnsupportedGraph {
            compiler: "clique(f=1)".into(),
            reason: "the clique compiler requires the complete graph".into(),
        };
        let mut calls = 0;
        for _ in 0..3 {
            let out = cache.get_or_prepare("bad", || {
                calls += 1;
                Err(err.clone())
            });
            assert_eq!(out.unwrap_err(), err);
        }
        assert_eq!(calls, 1, "the error must be cached, not recomputed");
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ArtifactCache::new();
        let g6 = generators::complete(6);
        let g8 = generators::complete(8);
        let a = cache
            .prepare_with("K6\nuncompiled", &Uncompiled, &g6)
            .unwrap();
        let b = cache
            .prepare_with("K8\nuncompiled", &Uncompiled, &g8)
            .unwrap();
        assert_eq!(a.graph().node_count(), 6);
        assert_eq!(b.graph().node_count(), 8);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn concurrent_lookups_share_one_preparation() {
        let cache = Arc::new(ArtifactCache::new());
        let g = generators::complete(8);
        let calls = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                let g = &g;
                scope.spawn(move || {
                    let out = cache.get_or_prepare("shared", || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        let mut tracer = obs::TraceSpec::off().build_tracer();
                        Uncompiled.prepare(g, &mut tracer)
                    });
                    assert!(out.is_ok());
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.hits() + cache.misses(), 8);
        assert_eq!(cache.misses(), 1);
    }
}
