//! Scenario-as-data: serializable campaign specs and the registries that
//! resolve them into runtime grids.
//!
//! A [`CampaignSpec`] is the plain-data form of a [`Campaign`]: a seed, a
//! repetition count and a grid of [`GraphDef`] × [`AdversaryDef`] ×
//! [`CompilerDef`] axes plus one [`PayloadDef`].  Specs encode to and parse
//! from JSON through the shared [`crate::json`] implementation (hand-rolled;
//! the workspace is offline), so a campaign can be saved, diffed, sharded
//! across machines and resumed.  Resolution goes through the registries the
//! zoos themselves are built on — `netgraph::generators` for graphs, the
//! `scenario::matrix` defs for adversaries, `mobile_congest_core::adapters`
//! for compilers — so a spec-built campaign is byte-identical to the
//! equivalent hand-built one.
//!
//! ```
//! use mobile_congest_harness::{Campaign, CampaignSpec};
//!
//! let spec = CampaignSpec::from_json(
//!     r#"{
//!         "kind": "campaign-spec",
//!         "seed": 7,
//!         "repetitions": 2,
//!         "grid": {
//!             "graphs": [{"family": "complete", "n": 6}],
//!             "adversaries": [{"kind": "random-mobile", "f": 1}],
//!             "compilers": [{"id": "uncompiled"}],
//!             "payload": {"kind": "exchange-ids"}
//!         }
//!     }"#,
//! )
//! .unwrap();
//! assert_eq!(CampaignSpec::from_json(&spec.to_json()).unwrap(), spec);
//!
//! let report = Campaign::from_spec(&spec).unwrap().run();
//! assert_eq!(report.cells.len(), 2);
//! ```
//!
//! [`Campaign`]: crate::Campaign

use crate::json::{self, JsonValue};
use async_exec::{CrashWindow, DropModel, LatencyModel, PartitionWindow, ScheduleDef};
use congest_sim::adversary::CorruptionMode;
use congest_sim::scenario::matrix::AdversaryDef;
use congest_sim::scenario::BoxedAlgorithm;
use mobile_congest_core::adapters::CompilerDef;
use netgraph::{Graph, GraphDef, GraphDefError, GraphFamily};

/// Everything that can go wrong encoding, parsing or resolving a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(json::JsonError),
    /// A required field is absent (or has the wrong type).
    Missing {
        /// Dotted path of the field (e.g. `grid.graphs[2].family`).
        field: String,
    },
    /// A registry lookup failed: no graph family / adversary kind / compiler
    /// id / payload kind under this label.
    UnknownLabel {
        /// Which registry was consulted.
        registry: &'static str,
        /// The label that failed to resolve.
        label: String,
    },
    /// A graph def failed to resolve into a graph.
    Graph(GraphDefError),
    /// A structurally invalid spec (empty axis, zero repetitions, …).
    Invalid {
        /// Human-readable explanation.
        reason: String,
    },
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::Missing { field } => write!(f, "spec field `{field}` missing or mistyped"),
            SpecError::UnknownLabel { registry, label } => {
                write!(f, "no {registry} registered under `{label}`")
            }
            SpecError::Graph(e) => write!(f, "{e}"),
            SpecError::Invalid { reason } => write!(f, "invalid spec: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<json::JsonError> for SpecError {
    fn from(e: json::JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl From<GraphDefError> for SpecError {
    fn from(e: GraphDefError) -> Self {
        SpecError::Graph(e)
    }
}

fn missing(field: impl Into<String>) -> SpecError {
    SpecError::Missing {
        field: field.into(),
    }
}

/// A serializable description of the payload algorithm every cell runs —
/// the payload registry as data.  Resolve per-graph with
/// [`PayloadDef::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadDef {
    /// The 1-round id-exchange demo payload
    /// ([`congest_sim::scenario::doctest_payload`]).
    ExchangeIds,
    /// [`congest_algorithms::FloodBroadcast`]: flood `value` from `source`.
    FloodBroadcast {
        /// Originating node.
        source: usize,
        /// The broadcast word.
        value: u64,
    },
    /// [`congest_algorithms::LeaderElection`]: max-id flooding.
    LeaderElection,
    /// [`congest_algorithms::TokenDissemination`]: all-to-all gossip of one
    /// token per node (node `v` starts with token `v`, matching the E8
    /// usage), forwarding at most `batch` tokens per edge per round.  The
    /// token set is derived per graph — the algorithm requires exactly
    /// `node_count` tokens, so a fixed count could never span a multi-size
    /// grid.
    TokenDissemination {
        /// Tokens forwarded per edge per round (clamped to at least 1).
        batch: usize,
    },
}

impl PayloadDef {
    /// The stable lowercase label used by serialized specs.
    pub fn label(&self) -> &'static str {
        match self {
            PayloadDef::ExchangeIds => "exchange-ids",
            PayloadDef::FloodBroadcast { .. } => "flood-broadcast",
            PayloadDef::LeaderElection => "leader-election",
            PayloadDef::TokenDissemination { .. } => "token-dissemination",
        }
    }

    /// Check the payload against one concrete grid graph — the front-loaded
    /// half of the contract: [`Campaign::from_spec`](crate::Campaign::from_spec)
    /// validates the payload against **every** graph of the grid, so a spec
    /// that would panic inside a worker (a flood source beyond the smallest
    /// graph's node count) is a typed [`SpecError`] before anything runs.
    pub fn validate(&self, graph_name: &str, graph: &Graph) -> Result<(), SpecError> {
        match *self {
            PayloadDef::FloodBroadcast { source, .. } if source >= graph.node_count() => {
                Err(SpecError::Invalid {
                    reason: format!(
                        "payload flood-broadcast source {source} is not a node of `{graph_name}` \
                         ({} nodes)",
                        graph.node_count()
                    ),
                })
            }
            _ => Ok(()),
        }
    }

    /// Build a fresh payload instance for one cell's graph.
    pub fn build(&self, graph: &Graph) -> BoxedAlgorithm {
        use congest_algorithms::{FloodBroadcast, LeaderElection, TokenDissemination};
        match *self {
            PayloadDef::ExchangeIds => {
                Box::new(congest_sim::scenario::doctest_payload(graph.clone()))
            }
            PayloadDef::FloodBroadcast { source, value } => {
                Box::new(FloodBroadcast::new(graph.clone(), source, value))
            }
            PayloadDef::LeaderElection => Box::new(LeaderElection::new(graph.clone())),
            PayloadDef::TokenDissemination { batch } => Box::new(TokenDissemination::new(
                graph.clone(),
                (0..graph.node_count() as u64).collect(),
                batch,
            )),
        }
    }
}

/// The grid axes of a campaign: what runs against what.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// The graph axis.
    pub graphs: Vec<GraphDef>,
    /// The adversary axis.
    pub adversaries: Vec<AdversaryDef>,
    /// The compiler axis.
    pub compilers: Vec<CompilerDef>,
    /// The payload every cell runs.
    pub payload: PayloadDef,
}

/// The plain-data form of a whole campaign: everything `Campaign::from_spec`
/// needs to reconstruct the grid, and nothing it doesn't (thread count is an
/// execution knob, not part of the experiment's identity).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The campaign base seed (drives every per-cell seed).
    pub seed: u64,
    /// Seed repetitions per grid cell.
    pub repetitions: usize,
    /// The grid axes.
    pub grid: GridSpec,
}

impl CampaignSpec {
    /// Total number of cells the described campaign will run.
    pub fn cell_count(&self) -> usize {
        self.grid.graphs.len()
            * self.grid.adversaries.len()
            * self.grid.compilers.len()
            * self.repetitions.max(1)
    }

    /// Encode the spec as multi-line JSON (one grid entry per line — stable,
    /// diffable, and the canonical input to [`CampaignSpec::fingerprint`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"kind\": \"campaign-spec\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"repetitions\": {},\n", self.repetitions));
        out.push_str("  \"grid\": {\n");
        out.push_str("    \"graphs\": [\n");
        for (i, def) in self.grid.graphs.iter().enumerate() {
            let sep = if i + 1 < self.grid.graphs.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("      {}{sep}\n", graph_to_json(def)));
        }
        out.push_str("    ],\n");
        out.push_str("    \"adversaries\": [\n");
        for (i, def) in self.grid.adversaries.iter().enumerate() {
            let sep = if i + 1 < self.grid.adversaries.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("      {}{sep}\n", adversary_to_json(def)));
        }
        out.push_str("    ],\n");
        out.push_str("    \"compilers\": [\n");
        for (i, def) in self.grid.compilers.iter().enumerate() {
            let sep = if i + 1 < self.grid.compilers.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("      {}{sep}\n", compiler_to_json(def)));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"payload\": {}\n",
            payload_to_json(&self.grid.payload)
        ));
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a spec from JSON (the inverse of [`CampaignSpec::to_json`];
    /// whitespace and field order inside each def are free).
    pub fn from_json(input: &str) -> Result<CampaignSpec, SpecError> {
        let doc = json::parse(input)?;
        if let Some(kind) = doc.get("kind").and_then(JsonValue::as_str) {
            if kind != "campaign-spec" {
                return Err(SpecError::Invalid {
                    reason: format!("document kind is `{kind}`, expected `campaign-spec`"),
                });
            }
        }
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| missing("seed"))?;
        let repetitions = doc
            .get("repetitions")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| missing("repetitions"))?;
        let grid = doc.get("grid").ok_or_else(|| missing("grid"))?;
        let graphs = grid
            .get("graphs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| missing("grid.graphs"))?
            .iter()
            .map(graph_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let adversaries = grid
            .get("adversaries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| missing("grid.adversaries"))?
            .iter()
            .map(adversary_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let compilers = grid
            .get("compilers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| missing("grid.compilers"))?
            .iter()
            .map(compiler_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let payload =
            payload_from_json(grid.get("payload").ok_or_else(|| missing("grid.payload"))?)?;
        let spec = CampaignSpec {
            seed,
            repetitions,
            grid: GridSpec {
                graphs,
                adversaries,
                compilers,
                payload,
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation: every axis non-empty, at least one repetition.
    pub fn validate(&self) -> Result<(), SpecError> {
        for (axis, len) in [
            ("graphs", self.grid.graphs.len()),
            ("adversaries", self.grid.adversaries.len()),
            ("compilers", self.grid.compilers.len()),
        ] {
            if len == 0 {
                return Err(SpecError::Invalid {
                    reason: format!("grid.{axis} is empty"),
                });
            }
        }
        if self.repetitions == 0 {
            return Err(SpecError::Invalid {
                reason: "repetitions must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the spec (FNV-1a over the canonical
    /// [`CampaignSpec::to_json`] form), rendered as 16 hex digits.  Two specs
    /// fingerprint equal iff they describe the same campaign; trajectory
    /// files are keyed by it so `--resume` never mixes campaigns.
    pub fn fingerprint(&self) -> String {
        json::fnv1a_hex(self.to_json().bytes())
    }
}

// ---------------------------------------------------------------------------
// Per-def JSON encoding: one object per def, compact, field order stable.
// ---------------------------------------------------------------------------

/// Encode one [`GraphDef`] as a compact one-line JSON object (the form
/// [`CampaignSpec::to_json`] embeds; field order is stable).
pub fn graph_to_json(def: &GraphDef) -> String {
    let mut fields = vec![
        (
            "family".to_string(),
            JsonValue::Str(def.family.label().into()),
        ),
        ("n".to_string(), JsonValue::from_u64(def.n as u64)),
    ];
    for (name, value) in &def.params {
        fields.push((name.clone(), JsonValue::from_f64(*value)));
    }
    if def.seed != 0 {
        fields.push(("seed".to_string(), JsonValue::from_u64(def.seed)));
    }
    JsonValue::Obj(fields).to_string()
}

/// Parse one [`GraphDef`] from its JSON object form.
pub fn graph_from_json(v: &JsonValue) -> Result<GraphDef, SpecError> {
    let label = v
        .get("family")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| missing("graphs[].family"))?;
    let family = GraphFamily::from_label(label).ok_or_else(|| SpecError::UnknownLabel {
        registry: "graph family",
        label: label.into(),
    })?;
    let n = v
        .get("n")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| missing("graphs[].n"))?;
    let mut def = GraphDef::new(family, n);
    for (key, value) in v.as_object().into_iter().flatten() {
        match key.as_str() {
            "family" | "n" => {}
            "seed" => {
                def.seed = value.as_u64().ok_or_else(|| missing("graphs[].seed"))?;
            }
            param => {
                let value = value
                    .as_f64()
                    .ok_or_else(|| missing(format!("graphs[].{param}")))?;
                def.params.push((param.to_string(), value));
            }
        }
    }
    Ok(def)
}

/// Encode a [`CorruptionMode`] (string label, or `{\"constant\": w}`).
pub fn mode_to_json(mode: CorruptionMode) -> JsonValue {
    match mode {
        CorruptionMode::ReplaceRandom => JsonValue::Str("replace-random".into()),
        CorruptionMode::FlipLowBit => JsonValue::Str("flip-low-bit".into()),
        CorruptionMode::Drop => JsonValue::Str("drop".into()),
        CorruptionMode::Constant(w) => {
            JsonValue::Obj(vec![("constant".to_string(), JsonValue::from_u64(w))])
        }
    }
}

/// Parse a [`CorruptionMode`] from its JSON form.
pub fn mode_from_json(v: &JsonValue) -> Result<CorruptionMode, SpecError> {
    if let Some(w) = v.get("constant").and_then(JsonValue::as_u64) {
        return Ok(CorruptionMode::Constant(w));
    }
    match v.as_str() {
        Some("replace-random") => Ok(CorruptionMode::ReplaceRandom),
        Some("flip-low-bit") => Ok(CorruptionMode::FlipLowBit),
        Some("drop") => Ok(CorruptionMode::Drop),
        Some(other) => Err(SpecError::UnknownLabel {
            registry: "corruption mode",
            label: other.into(),
        }),
        None => Err(missing("adversaries[].mode")),
    }
}

/// Encode one [`AdversaryDef`] as a compact one-line JSON object.
pub fn adversary_to_json(def: &AdversaryDef) -> String {
    let mut fields = vec![(
        "kind".to_string(),
        JsonValue::Str(
            match def {
                AdversaryDef::RandomMobile { .. } => "random-mobile",
                AdversaryDef::SweepMobile { .. } => "sweep-mobile",
                AdversaryDef::GreedyHeaviest { .. } => "greedy-heaviest",
                AdversaryDef::AdaptiveHeaviest { .. } => "adaptive-heaviest",
                AdversaryDef::Eclipse { .. } => "eclipse",
                AdversaryDef::Burst { .. } => "burst",
                AdversaryDef::Eavesdropper { .. } => "eavesdropper",
                AdversaryDef::Synthesized { .. } => "synthesized",
            }
            .into(),
        ),
    )];
    let mut num = |name: &str, v: u64| fields.push((name.to_string(), JsonValue::from_u64(v)));
    match def {
        AdversaryDef::RandomMobile { f }
        | AdversaryDef::SweepMobile { f }
        | AdversaryDef::AdaptiveHeaviest { f }
        | AdversaryDef::Eavesdropper { f } => num("f", *f as u64),
        AdversaryDef::GreedyHeaviest { f, mode } => {
            num("f", *f as u64);
            fields.push(("mode".to_string(), mode_to_json(*mode)));
        }
        AdversaryDef::Eclipse { node, f, mode } => {
            num("node", *node as u64);
            num("f", *f as u64);
            fields.push(("mode".to_string(), mode_to_json(*mode)));
        }
        AdversaryDef::Burst {
            quiet,
            burst,
            per_round,
            total,
        } => {
            num("quiet", *quiet as u64);
            num("burst", *burst as u64);
            num("per_round", *per_round as u64);
            num("total", *total as u64);
        }
        AdversaryDef::Synthesized { schedule, mode } => {
            fields.push((
                "schedule".to_string(),
                JsonValue::Arr(
                    schedule
                        .iter()
                        .map(|round| {
                            JsonValue::Arr(
                                round
                                    .iter()
                                    .map(|&e| JsonValue::from_u64(e as u64))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ));
            fields.push(("mode".to_string(), mode_to_json(*mode)));
        }
    }
    JsonValue::Obj(fields).to_string()
}

/// Parse one [`AdversaryDef`] from its JSON object form (omitted optional
/// fields default to the identically-named zoo adversary's values).
pub fn adversary_from_json(v: &JsonValue) -> Result<AdversaryDef, SpecError> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| missing("adversaries[].kind"))?;
    let req = |name: &str| {
        v.get(name)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| missing(format!("adversaries[].{name}")))
    };
    let mode = |default: CorruptionMode| match v.get("mode") {
        Some(m) => mode_from_json(m),
        None => Ok(default),
    };
    match kind {
        "random-mobile" => Ok(AdversaryDef::RandomMobile { f: req("f")? }),
        "sweep-mobile" => Ok(AdversaryDef::SweepMobile { f: req("f")? }),
        // When `mode` is omitted, default to what the identically-named zoo
        // adversary uses (`adversary_zoo_defs`) — the display name in every
        // report is the same either way, so a silent behavioural divergence
        // from the hand-built zoo would be invisible.
        "greedy-heaviest" => Ok(AdversaryDef::GreedyHeaviest {
            f: req("f")?,
            mode: mode(CorruptionMode::FlipLowBit)?,
        }),
        "adaptive-heaviest" => Ok(AdversaryDef::AdaptiveHeaviest { f: req("f")? }),
        "eclipse" => Ok(AdversaryDef::Eclipse {
            node: req("node")?,
            f: req("f")?,
            mode: mode(CorruptionMode::Drop)?,
        }),
        "burst" => Ok(AdversaryDef::Burst {
            quiet: req("quiet")?,
            burst: req("burst")?,
            per_round: req("per_round")?,
            total: req("total")?,
        }),
        "eavesdropper" => Ok(AdversaryDef::Eavesdropper { f: req("f")? }),
        "synthesized" => {
            let schedule = v
                .get("schedule")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| missing("adversaries[].schedule"))?
                .iter()
                .enumerate()
                .map(|(i, round)| {
                    round
                        .as_array()
                        .ok_or_else(|| missing(format!("adversaries[].schedule[{i}]")))?
                        .iter()
                        .map(|e| {
                            e.as_usize()
                                .ok_or_else(|| missing(format!("adversaries[].schedule[{i}][]")))
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(AdversaryDef::Synthesized {
                schedule,
                // Omitted mode defaults to the minimal hard-to-detect
                // corruption the red-team search aims for.
                mode: mode(CorruptionMode::FlipLowBit)?,
            })
        }
        other => Err(SpecError::UnknownLabel {
            registry: "adversary kind",
            label: other.into(),
        }),
    }
}

/// Encode one [`CompilerDef`] as a compact one-line JSON object.
pub fn compiler_to_json(def: &CompilerDef) -> String {
    let mut fields = vec![("id".to_string(), JsonValue::Str(def.label().into()))];
    if let CompilerDef::Async { schedule } = def {
        schedule_to_fields(schedule, &mut fields);
        return JsonValue::Obj(fields).to_string();
    }
    let mut num = |name: &str, v: u64| fields.push((name.to_string(), JsonValue::from_u64(v)));
    match *def {
        CompilerDef::Uncompiled | CompilerDef::FaultFree | CompilerDef::Async { .. } => {}
        CompilerDef::Clique { f, seed } | CompilerDef::Rewind { f, seed } => {
            num("f", f as u64);
            num("seed", seed);
        }
        CompilerDef::TreePacking {
            f,
            trees,
            seed,
            packing,
        } => {
            num("f", f as u64);
            if let Some(k) = trees {
                num("trees", k as u64);
            }
            num("seed", seed);
            fields.push((
                "packing".to_string(),
                JsonValue::Str(packing.label().into()),
            ));
        }
        CompilerDef::CycleCover { f } => num("f", f as u64),
        CompilerDef::Expander {
            f,
            k,
            bfs_rounds,
            seed,
        } => {
            num("f", f as u64);
            num("k", k as u64);
            num("bfs_rounds", bfs_rounds as u64);
            num("seed", seed);
        }
        CompilerDef::StaticToMobile { t, words, seed } => {
            num("t", t as u64);
            num("words", words as u64);
            num("seed", seed);
        }
        CompilerDef::CongestionSensitive { f, words, seed } => {
            num("f", f as u64);
            num("words", words as u64);
            num("seed", seed);
        }
    }
    JsonValue::Obj(fields).to_string()
}

/// Append a [`ScheduleDef`]'s non-default parts to a compiler object's
/// fields.  The synchronous default encodes as nothing at all, so
/// `{"id": "async"}` round-trips to `ScheduleDef::synchronous()`.
fn schedule_to_fields(schedule: &ScheduleDef, fields: &mut Vec<(String, JsonValue)>) {
    match schedule.latency {
        LatencyModel::Synchronous => {}
        LatencyModel::Fixed { ticks } => {
            fields.push(("latency".to_string(), JsonValue::Str("fixed".into())));
            fields.push(("ticks".to_string(), JsonValue::from_u64(ticks)));
        }
        LatencyModel::Uniform { min, max } => {
            fields.push(("latency".to_string(), JsonValue::Str("uniform".into())));
            fields.push(("min".to_string(), JsonValue::from_u64(min)));
            fields.push(("max".to_string(), JsonValue::from_u64(max)));
        }
    }
    if schedule.reorder_window > 0 {
        fields.push((
            "reorder".to_string(),
            JsonValue::from_u64(schedule.reorder_window),
        ));
    }
    if let DropModel::EveryKth { k } = schedule.drops {
        fields.push(("drop_every".to_string(), JsonValue::from_u64(k)));
    }
    if !schedule.partitions.is_empty() {
        let windows = schedule
            .partitions
            .iter()
            .map(|p| {
                JsonValue::Obj(vec![
                    ("from".to_string(), JsonValue::from_u64(p.from)),
                    ("until".to_string(), JsonValue::from_u64(p.until)),
                    (
                        "island".to_string(),
                        JsonValue::Arr(
                            p.island
                                .iter()
                                .map(|&v| JsonValue::from_u64(v as u64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        fields.push(("partitions".to_string(), JsonValue::Arr(windows)));
    }
    if !schedule.crashes.is_empty() {
        let windows = schedule
            .crashes
            .iter()
            .map(|c| {
                JsonValue::Obj(vec![
                    ("node".to_string(), JsonValue::from_u64(c.node as u64)),
                    ("from".to_string(), JsonValue::from_u64(c.from)),
                    ("until".to_string(), JsonValue::from_u64(c.until)),
                ])
            })
            .collect();
        fields.push(("crashes".to_string(), JsonValue::Arr(windows)));
    }
}

/// Parse a [`ScheduleDef`] out of an `{"id": "async", ...}` compiler object;
/// every field is optional and defaults to the synchronous schedule's value.
fn schedule_from_json(v: &JsonValue) -> Result<ScheduleDef, SpecError> {
    let mut schedule = ScheduleDef::synchronous();
    let num = |obj: &JsonValue, name: &str, path: &str| {
        obj.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| missing(format!("{path}.{name}")))
    };
    match v.get("latency").map(|l| {
        l.as_str()
            .ok_or_else(|| missing("compilers[].latency"))
            .map(str::to_string)
    }) {
        None => {}
        Some(label) => match label?.as_str() {
            "fixed" => {
                schedule.latency = LatencyModel::Fixed {
                    ticks: num(v, "ticks", "compilers[]")?,
                }
            }
            "uniform" => {
                schedule.latency = LatencyModel::Uniform {
                    min: num(v, "min", "compilers[]")?,
                    max: num(v, "max", "compilers[]")?,
                }
            }
            other => {
                return Err(SpecError::UnknownLabel {
                    registry: "latency model",
                    label: other.into(),
                })
            }
        },
    }
    if let Some(w) = v.get("reorder") {
        schedule.reorder_window = w.as_u64().ok_or_else(|| missing("compilers[].reorder"))?;
    }
    if let Some(k) = v.get("drop_every") {
        schedule.drops = DropModel::EveryKth {
            k: k.as_u64()
                .ok_or_else(|| missing("compilers[].drop_every"))?,
        };
    }
    if let Some(parts) = v.get("partitions") {
        let arr = parts
            .as_array()
            .ok_or_else(|| missing("compilers[].partitions"))?;
        for p in arr {
            let island = p
                .get("island")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| missing("compilers[].partitions[].island"))?
                .iter()
                .map(|n| {
                    n.as_usize()
                        .ok_or_else(|| missing("compilers[].partitions[].island[]"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            schedule.partitions.push(PartitionWindow {
                from: num(p, "from", "compilers[].partitions[]")?,
                until: num(p, "until", "compilers[].partitions[]")?,
                island,
            });
        }
    }
    if let Some(crashes) = v.get("crashes") {
        let arr = crashes
            .as_array()
            .ok_or_else(|| missing("compilers[].crashes"))?;
        for c in arr {
            schedule.crashes.push(CrashWindow {
                node: c
                    .get("node")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| missing("compilers[].crashes[].node"))?,
                from: num(c, "from", "compilers[].crashes[]")?,
                until: num(c, "until", "compilers[].crashes[]")?,
            });
        }
    }
    Ok(schedule)
}

/// Parse one [`CompilerDef`] from its JSON object form.
pub fn compiler_from_json(v: &JsonValue) -> Result<CompilerDef, SpecError> {
    let id = v
        .get("id")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| missing("compilers[].id"))?;
    let req = |name: &str| {
        v.get(name)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| missing(format!("compilers[].{name}")))
    };
    let seed = || {
        v.get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| missing("compilers[].seed"))
    };
    match id {
        "uncompiled" => Ok(CompilerDef::Uncompiled),
        "async" => Ok(CompilerDef::Async {
            schedule: schedule_from_json(v)?,
        }),
        "fault-free" => Ok(CompilerDef::FaultFree),
        "clique" => Ok(CompilerDef::Clique {
            f: req("f")?,
            seed: seed()?,
        }),
        "tree-packing" => Ok(CompilerDef::TreePacking {
            f: req("f")?,
            trees: match v.get("trees") {
                Some(t) => Some(t.as_usize().ok_or_else(|| missing("compilers[].trees"))?),
                None => None,
            },
            seed: seed()?,
            // Omitted means the adapter default (v2), matching
            // `TreePackingAdapter::new`.
            packing: match v.get("packing") {
                None => netgraph::PackingVersion::default(),
                Some(p) => {
                    let label = p.as_str().ok_or_else(|| missing("compilers[].packing"))?;
                    netgraph::PackingVersion::from_label(label).ok_or_else(|| {
                        SpecError::UnknownLabel {
                            registry: "packing version",
                            label: label.into(),
                        }
                    })?
                }
            },
        }),
        "cycle-cover" => Ok(CompilerDef::CycleCover { f: req("f")? }),
        "expander" => Ok(CompilerDef::Expander {
            f: req("f")?,
            k: req("k")?,
            bfs_rounds: req("bfs_rounds")?,
            seed: seed()?,
        }),
        "rewind" => Ok(CompilerDef::Rewind {
            f: req("f")?,
            seed: seed()?,
        }),
        "static-to-mobile" => Ok(CompilerDef::StaticToMobile {
            t: req("t")?,
            words: req("words")?,
            seed: seed()?,
        }),
        "congestion-sensitive" => Ok(CompilerDef::CongestionSensitive {
            f: req("f")?,
            words: req("words")?,
            seed: seed()?,
        }),
        other => Err(SpecError::UnknownLabel {
            registry: "compiler id",
            label: other.into(),
        }),
    }
}

/// Encode one [`PayloadDef`] as a compact one-line JSON object.
pub fn payload_to_json(def: &PayloadDef) -> String {
    let mut fields = vec![("kind".to_string(), JsonValue::Str(def.label().into()))];
    match *def {
        PayloadDef::ExchangeIds | PayloadDef::LeaderElection => {}
        PayloadDef::FloodBroadcast { source, value } => {
            fields.push(("source".to_string(), JsonValue::from_u64(source as u64)));
            fields.push(("value".to_string(), JsonValue::from_u64(value)));
        }
        PayloadDef::TokenDissemination { batch } => {
            fields.push(("batch".to_string(), JsonValue::from_u64(batch as u64)));
        }
    }
    JsonValue::Obj(fields).to_string()
}

/// Parse one [`PayloadDef`] from its JSON object form.
pub fn payload_from_json(v: &JsonValue) -> Result<PayloadDef, SpecError> {
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| missing("grid.payload.kind"))?;
    match kind {
        "exchange-ids" => Ok(PayloadDef::ExchangeIds),
        "flood-broadcast" => Ok(PayloadDef::FloodBroadcast {
            source: v
                .get("source")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| missing("grid.payload.source"))?,
            value: v
                .get("value")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing("grid.payload.value"))?,
        }),
        "leader-election" => Ok(PayloadDef::LeaderElection),
        "token-dissemination" => Ok(PayloadDef::TokenDissemination {
            batch: v
                .get("batch")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| missing("grid.payload.batch"))?,
        }),
        other => Err(SpecError::UnknownLabel {
            registry: "payload kind",
            label: other.into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        CampaignSpec {
            seed: 2024,
            repetitions: 2,
            grid: GridSpec {
                graphs: vec![
                    GraphDef::complete(8),
                    GraphDef::circulant(10, 2),
                    GraphDef::watts_strogatz(20, 4, 0.25, 99),
                ],
                adversaries: vec![
                    AdversaryDef::RandomMobile { f: 1 },
                    AdversaryDef::GreedyHeaviest {
                        f: 1,
                        mode: CorruptionMode::Constant(424242),
                    },
                    AdversaryDef::Eclipse {
                        node: 3,
                        f: 2,
                        mode: CorruptionMode::Drop,
                    },
                    AdversaryDef::Burst {
                        quiet: 6,
                        burst: 2,
                        per_round: 4,
                        total: 12,
                    },
                    AdversaryDef::Eavesdropper { f: 2 },
                ],
                compilers: vec![
                    CompilerDef::Uncompiled,
                    CompilerDef::Clique { f: 1, seed: 5 },
                    CompilerDef::TreePacking {
                        f: 1,
                        trees: Some(9),
                        seed: 5,
                        packing: netgraph::PackingVersion::V2Augmented,
                    },
                    CompilerDef::Expander {
                        f: 1,
                        k: 5,
                        bfs_rounds: 6,
                        seed: 13,
                    },
                    CompilerDef::StaticToMobile {
                        t: 4,
                        words: 2,
                        seed: 5,
                    },
                ],
                payload: PayloadDef::FloodBroadcast {
                    source: 0,
                    value: 4242,
                },
            },
        }
    }

    #[test]
    fn spec_json_round_trips_exactly() {
        let spec = sample_spec();
        let parsed = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        // Idempotent: format(parse(format(spec))) == format(spec).
        assert_eq!(parsed.to_json(), spec.to_json());
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_specs() {
        let spec = sample_spec();
        assert_eq!(spec.fingerprint(), spec.fingerprint());
        assert_eq!(spec.fingerprint().len(), 16);
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(spec.fingerprint(), other.fingerprint());
    }

    #[test]
    fn unknown_labels_are_typed_errors() {
        let bad_family = r#"{"kind":"campaign-spec","seed":1,"repetitions":1,"grid":{
            "graphs":[{"family":"moebius","n":8}],
            "adversaries":[{"kind":"random-mobile","f":1}],
            "compilers":[{"id":"uncompiled"}],
            "payload":{"kind":"exchange-ids"}}}"#;
        assert!(matches!(
            CampaignSpec::from_json(bad_family),
            Err(SpecError::UnknownLabel {
                registry: "graph family",
                ..
            })
        ));
        let bad_compiler = bad_family
            .replace("moebius", "complete")
            .replace("uncompiled", "quantum");
        assert!(matches!(
            CampaignSpec::from_json(&bad_compiler),
            Err(SpecError::UnknownLabel {
                registry: "compiler id",
                ..
            })
        ));
    }

    #[test]
    fn missing_fields_and_empty_axes_are_typed_errors() {
        assert!(matches!(
            CampaignSpec::from_json(r#"{"repetitions":1,"grid":{}}"#),
            Err(SpecError::Missing { .. })
        ));
        let empty_axis = r#"{"kind":"campaign-spec","seed":1,"repetitions":1,"grid":{
            "graphs":[],
            "adversaries":[{"kind":"random-mobile","f":1}],
            "compilers":[{"id":"uncompiled"}],
            "payload":{"kind":"exchange-ids"}}}"#;
        assert!(matches!(
            CampaignSpec::from_json(empty_axis),
            Err(SpecError::Invalid { .. })
        ));
        assert!(matches!(
            CampaignSpec::from_json("not json"),
            Err(SpecError::Json(_))
        ));
    }

    #[test]
    fn payload_defs_build_runnable_instances() {
        let g = netgraph::generators::complete(5);
        for def in [
            PayloadDef::ExchangeIds,
            PayloadDef::FloodBroadcast {
                source: 0,
                value: 7,
            },
            PayloadDef::LeaderElection,
            PayloadDef::TokenDissemination { batch: 5 },
        ] {
            let payload = def.build(&g);
            assert!(payload.rounds() > 0, "{} has rounds", def.label());
        }
    }

    #[test]
    fn payload_validation_catches_out_of_range_sources() {
        let g = netgraph::generators::complete(8);
        let def = PayloadDef::FloodBroadcast {
            source: 50,
            value: 1,
        };
        assert!(matches!(
            def.validate("K8", &g),
            Err(SpecError::Invalid { .. })
        ));
        assert!(PayloadDef::FloodBroadcast {
            source: 7,
            value: 1
        }
        .validate("K8", &g)
        .is_ok());
    }

    #[test]
    fn omitted_adversary_mode_defaults_to_the_zoo_mode() {
        // `{"kind":"greedy-heaviest","f":1}` must mean the SAME adversary as
        // the zoo's greedy-heaviest — the display names are identical, so a
        // different default mode would diverge invisibly.
        let spec = CampaignSpec::from_json(
            r#"{"kind":"campaign-spec","seed":1,"repetitions":1,"grid":{
                "graphs":[{"family":"complete","n":6}],
                "adversaries":[{"kind":"greedy-heaviest","f":1},
                               {"kind":"eclipse","node":0,"f":1}],
                "compilers":[{"id":"uncompiled"}],
                "payload":{"kind":"exchange-ids"}}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.grid.adversaries[0],
            AdversaryDef::GreedyHeaviest {
                f: 1,
                mode: CorruptionMode::FlipLowBit,
            }
        );
        assert_eq!(
            spec.grid.adversaries[1],
            AdversaryDef::Eclipse {
                node: 0,
                f: 1,
                mode: CorruptionMode::Drop,
            }
        );
    }
}
