//! The deterministic parallel executor: a self-scheduling worker pool over
//! `std::thread` + channels.
//!
//! Workers steal cell indices from a shared atomic counter (the cheapest
//! possible work-stealing queue: every idle worker grabs the next unclaimed
//! index, so a slow cell never blocks the rest of the grid) and stream
//! `(index, result)` pairs back over an mpsc channel.  The collector slots
//! results by index, so the output order is the enumeration order regardless
//! of which worker finished first.
//!
//! Determinism is by construction, not by locking: a job must be a pure
//! function of its index (the campaign layer derives every cell's RNG seed
//! from `(campaign_seed, cell_index)`), so the result vector is byte-identical
//! at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Number of workers to use when the caller does not pin one: the machine's
/// available parallelism (falling back to 1 when it cannot be queried).
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `job(0..count)` on `threads` workers and return the results in index
/// order.
///
/// `job` is shared by reference across workers, so it must be `Sync`; each
/// invocation builds whatever per-cell state it needs locally, which is why
/// non-`Send` values (boxed strategies, payload instances) never cross a
/// thread boundary.  With `threads <= 1` (or a single cell) the pool is
/// bypassed entirely and the jobs run inline on the caller's thread — the
/// single-threaded facade and the parallel path share this one entry point.
pub fn run_indexed<T, F>(threads: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    if threads == 1 {
        return (0..count).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count || tx.send((i, job(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every cell index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(threads, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_cells_is_fine() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let out = run_indexed(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
