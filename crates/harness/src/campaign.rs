//! Campaigns: batched grids of graph × adversary × compiler × seed-repetition
//! cells, executed deterministically in parallel and aggregated into
//! campaign-level summaries with a JSONL export.

use crate::artifact_cache::ArtifactCache;
use crate::engine;
use crate::json::{json_num, json_str};
use crate::spec::{CampaignSpec, SpecError};
use crate::stats::StatSummary;
use congest_sim::scenario::matrix::{run_cell_artifacts, AdversarySpec, CompilerSpec, GraphSpec};
use congest_sim::scenario::{BoxedAlgorithm, RunReport, ScenarioError};
use netgraph::Graph;
use std::sync::Arc;

/// A shareable payload factory: receives the cell's graph, returns a fresh
/// boxed payload instance.
pub type SharedPayload = Arc<dyn Fn(&Graph) -> BoxedAlgorithm + Send + Sync>;

/// Mix a per-cell seed out of the campaign seed and the cell index: the
/// SplitMix64 finalizer applied to
/// `campaign_seed + 0x9E3779B97F4A7C15 + index · 0xBF58476D1CE4E5B9`
/// (all wrapping).
///
/// The seed depends only on the cell's position in the enumeration order —
/// never on which worker thread claims it or when — so campaign results are
/// byte-identical at any thread count.
pub fn cell_seed(campaign_seed: u64, cell_index: usize) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((cell_index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A batched experiment grid: every graph × adversary × compiler cell of the
/// campaign runs `repetitions` times with per-repetition seeds, fanned across
/// worker threads by the deterministic engine.
///
/// See the crate docs for a runnable end-to-end example.
pub struct Campaign {
    graphs: Vec<GraphSpec>,
    adversaries: Vec<AdversarySpec>,
    compilers: Vec<CompilerSpec>,
    payload: Option<SharedPayload>,
    repetitions: usize,
    seed: u64,
    threads: usize,
    shard: Option<(usize, usize)>,
    trace: obs::TraceSpec,
    /// The shared compile-artifact cache, if this campaign runs cached.
    cache: Option<Arc<ArtifactCache>>,
    /// Canonical cache keys per `(graph, compiler)` pair, `gi * n_c + ci`
    /// order.  Only spec-built campaigns know their defs and get keys;
    /// hand-built campaigns run uncached.
    pair_keys: Option<Vec<String>>,
}

impl Campaign {
    /// Start a campaign with the given base seed.
    pub fn new(seed: u64) -> Self {
        Campaign {
            graphs: Vec::new(),
            adversaries: Vec::new(),
            compilers: Vec::new(),
            payload: None,
            repetitions: 1,
            seed,
            threads: 0,
            shard: None,
            trace: obs::TraceSpec::off(),
            cache: None,
            pair_keys: None,
        }
    }

    /// Reconstruct a campaign from its serializable data form: every
    /// [`GraphDef`](netgraph::GraphDef) is resolved through
    /// `netgraph::generators`, every
    /// [`AdversaryDef`](congest_sim::scenario::matrix::AdversaryDef) and
    /// [`CompilerDef`](mobile_congest_core::adapters::CompilerDef) through
    /// its registry, and the payload through
    /// [`PayloadDef`](crate::spec::PayloadDef) — the same entry points the
    /// hand-built zoos use, so the resulting report is **byte-identical** to
    /// the equivalent hand-built campaign at any thread count.
    pub fn from_spec(spec: &CampaignSpec) -> Result<Campaign, SpecError> {
        spec.validate()?;
        let graphs = spec
            .grid
            .graphs
            .iter()
            .map(GraphSpec::from_def)
            .collect::<Result<Vec<_>, _>>()?;
        // Front-load payload × graph validation too: a flood source beyond
        // some grid graph's node count must be a typed error here, not a
        // panic inside a worker thread.
        for gspec in &graphs {
            spec.grid.payload.validate(&gspec.name, &gspec.graph)?;
        }
        let payload = spec.grid.payload.clone();
        // The spec layer knows the defs behind every axis, so spec-built
        // campaigns get artifact-cache keys (canonical def JSON — collision
        // free) and a per-campaign cache, shared or disabled via
        // [`Campaign::artifact_cache`] / [`Campaign::without_artifact_cache`].
        let graph_jsons: Vec<String> = spec
            .grid
            .graphs
            .iter()
            .map(crate::spec::graph_to_json)
            .collect();
        let compiler_jsons: Vec<String> = spec
            .grid
            .compilers
            .iter()
            .map(crate::spec::compiler_to_json)
            .collect();
        let mut pair_keys = Vec::with_capacity(graph_jsons.len() * compiler_jsons.len());
        for gj in &graph_jsons {
            for cj in &compiler_jsons {
                pair_keys.push(ArtifactCache::pair_key(gj, cj));
            }
        }
        let mut campaign = Campaign::new(spec.seed)
            .graphs(graphs)
            .adversaries(spec.grid.adversaries.iter().map(|d| d.to_spec()).collect())
            .compilers(spec.grid.compilers.iter().map(|d| d.to_spec()).collect())
            .payload(move |g: &Graph| payload.build(g))
            .repetitions(spec.repetitions);
        campaign.pair_keys = Some(pair_keys);
        campaign.cache = Some(Arc::new(ArtifactCache::new()));
        Ok(campaign)
    }

    /// The graph axis of the grid.
    pub fn graphs(mut self, graphs: Vec<GraphSpec>) -> Self {
        self.graphs = graphs;
        self
    }

    /// The adversary axis of the grid.
    pub fn adversaries(mut self, adversaries: Vec<AdversarySpec>) -> Self {
        self.adversaries = adversaries;
        self
    }

    /// The compiler axis of the grid.
    pub fn compilers(mut self, compilers: Vec<CompilerSpec>) -> Self {
        self.compilers = compilers;
        self
    }

    /// The payload factory: receives the cell's graph, returns a fresh boxed
    /// instance on every call.
    pub fn payload<P>(mut self, payload: P) -> Self
    where
        P: Fn(&Graph) -> BoxedAlgorithm + Send + Sync + 'static,
    {
        self.payload = Some(Arc::new(payload));
        self
    }

    /// Seed repetitions per grid cell (clamped to at least 1; default 1).
    /// Each repetition gets its own derived seed, so the aggregated summaries
    /// measure seed-to-seed spread.
    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }

    /// Worker threads to fan the cells across (`0`, the default, uses the
    /// machine's available parallelism).  The thread count never changes the
    /// results, only the wall clock.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Per-cell tracing (default [`obs::TraceSpec::off`]).  Cells record into
    /// ring sinks inside the workers — no I/O on the worker threads — and the
    /// harvested event streams and per-phase profiles ride back on each
    /// cell's [`RunReport`].  Streams carry virtual time only, so they are
    /// byte-identical at any thread count; only the out-of-band wall-clock
    /// profile varies run to run.
    pub fn trace(mut self, trace: obs::TraceSpec) -> Self {
        self.trace = trace;
        self
    }

    /// Share an existing [`ArtifactCache`] — the form `campaignd` uses so
    /// every batch and job of a daemon reuses one cache.  Only campaigns
    /// built by [`Campaign::from_spec`] consult it (hand-built campaigns
    /// have no def-derived keys), and traced runs always bypass it so every
    /// cell's event stream still carries its packing spans.
    pub fn artifact_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Disable the compile-artifact cache: every cell prepares its own
    /// artifacts, exactly as a hand-built campaign does.  Reports are
    /// byte-identical either way; this exists for measurement (bench E16f)
    /// and as the CLI `--no-cache` escape hatch.
    pub fn without_artifact_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The campaign's artifact cache, if it has one — read the hit/miss
    /// counters from here after [`Campaign::run`].
    pub fn artifact_cache_handle(&self) -> Option<&Arc<ArtifactCache>> {
        self.cache.as_ref()
    }

    /// Restrict the campaign to shard `index` of `of`: cell `i` belongs to
    /// shard `i % of`.  Cells keep their **global** index and therefore their
    /// seed, so the union of all `of` shard runs (see
    /// [`CampaignReport::merged`]) is byte-identical to the unsharded run —
    /// the partition is safe for multi-machine fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `of` is zero or `index >= of`.
    pub fn shard(mut self, index: usize, of: usize) -> Self {
        assert!(of > 0, "shard count must be at least 1");
        assert!(
            index < of,
            "shard index {index} out of range for {of} shards"
        );
        self.shard = Some((index, of));
        self
    }

    /// Total number of cells in the full (unsharded) grid.
    pub fn cell_count(&self) -> usize {
        self.graphs.len() * self.adversaries.len() * self.compilers.len() * self.repetitions
    }

    /// The global cell indices this campaign will run: the full enumeration,
    /// filtered down to the configured [`Campaign::shard`] if any.
    pub fn cell_indices(&self) -> Vec<usize> {
        let all = 0..self.cell_count();
        match self.shard {
            None => all.collect(),
            Some((index, of)) => all.filter(|i| i % of == index).collect(),
        }
    }

    /// Execute every cell of the campaign across the worker pool and collect
    /// the report.
    ///
    /// Cells are enumerated graph-major, then adversary, then compiler, with
    /// repetitions innermost; each cell's RNG seed is [`cell_seed`]`(campaign
    /// seed, cell index)` and the whole cell is built and run inside the
    /// worker via [`matrix::run_cell_artifacts`](congest_sim::scenario::matrix::run_cell_artifacts),
    /// so the report is byte-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if no payload factory was configured.
    pub fn run(&self) -> CampaignReport {
        self.run_cells(&self.cell_indices())
    }

    /// Execute exactly the given **global** cell indices (out-of-range ones
    /// are ignored) — the entry point [`Campaign::run`], sharded runs and
    /// cell-level resume share.  Each cell's seed depends only on its global
    /// index, so any subset reproduces the same cells the full run would.
    ///
    /// # Panics
    ///
    /// Panics if no payload factory was configured.
    pub fn run_cells(&self, indices: &[usize]) -> CampaignReport {
        let payload = Arc::clone(
            self.payload
                .as_ref()
                .expect("Campaign::payload must be configured before run()"),
        );
        let reps = self.repetitions;
        let (n_a, n_c) = (self.adversaries.len(), self.compilers.len());
        let indices: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| i < self.cell_count())
            .collect();
        let threads = if self.threads == 0 {
            engine::default_threads()
        } else {
            self.threads
        };
        // The cache is consulted only when (a) this campaign has one, (b) it
        // was spec-built and therefore knows its def-derived keys, and (c)
        // tracing is off — `prepare` emits packing spans into the cell's
        // event stream, and a cache hit would elide them from every cell but
        // the first, changing traced fingerprints.
        let cache = match (&self.cache, &self.pair_keys) {
            (Some(cache), Some(keys)) if !self.trace.enabled => Some((cache, keys)),
            _ => None,
        };

        let cells = engine::run_indexed(threads, indices.len(), |slot| {
            let index = indices[slot];
            // Invert the enumeration order: repetition innermost.
            let rep = index % reps;
            let ci = (index / reps) % n_c;
            let ai = (index / (reps * n_c)) % n_a;
            let gi = index / (reps * n_c * n_a);
            let (gspec, aspec, cspec) =
                (&self.graphs[gi], &self.adversaries[ai], &self.compilers[ci]);
            let seed = cell_seed(self.seed, index);
            let cell_payload = {
                let p = Arc::clone(&payload);
                move |g: &Graph| p(g)
            };
            // A failed `prepare` is cached as the typed error and surfaces
            // here as `None`: the cell then runs the uncached path, whose
            // validation reproduces the identical error inline.
            let artifacts = cache.and_then(|(cache, keys)| {
                cache
                    .get_or_prepare(&keys[gi * n_c + ci], || {
                        let compiler = cspec.instantiate();
                        let mut tracer = obs::TraceSpec::off().build_tracer();
                        compiler.prepare(&gspec.graph, &mut tracer)
                    })
                    .ok()
            });
            CampaignCell {
                index,
                graph: gspec.name.clone(),
                adversary: aspec.name.clone(),
                compiler: cspec.name.clone(),
                repetition: rep,
                seed,
                outcome: run_cell_artifacts(
                    gspec,
                    aspec,
                    cspec,
                    &cell_payload,
                    seed,
                    self.trace,
                    artifacts,
                ),
            }
        });
        CampaignReport { cells }
    }
}

/// One executed campaign cell.
#[derive(Debug)]
pub struct CampaignCell {
    /// Position in the campaign's enumeration order (drives the seed).
    pub index: usize,
    /// Graph name.
    pub graph: String,
    /// Adversary name.
    pub adversary: String,
    /// Compiler name.
    pub compiler: String,
    /// Repetition number within the grid cell.
    pub repetition: usize,
    /// The derived per-cell seed.
    pub seed: u64,
    /// The run report, or the typed reason the cell could not run.
    pub outcome: Result<RunReport, ScenarioError>,
}

impl CampaignCell {
    /// Whether the cell was skipped by validation (structurally incompatible
    /// configuration) as opposed to having failed at runtime.
    pub fn skipped(&self) -> bool {
        matches!(&self.outcome, Err(e) if e.is_validation_error())
    }

    /// `ok` / `skipped` / `failed`, for the JSONL export.
    pub fn status(&self) -> &'static str {
        match &self.outcome {
            Ok(_) => "ok",
            Err(_) if self.skipped() => "skipped",
            Err(_) => "failed",
        }
    }
}

/// Aggregated view of one grid cell (graph × adversary × compiler) over its
/// repetitions.
#[derive(Debug)]
pub struct GroupSummary {
    /// Graph name.
    pub graph: String,
    /// Adversary name.
    pub adversary: String,
    /// Compiler name.
    pub compiler: String,
    /// Repetitions that executed to a report.
    pub executed: usize,
    /// Repetitions skipped by validation.
    pub skipped: usize,
    /// Repetitions that failed at runtime.
    pub failed: usize,
    /// Executed repetitions whose outputs diverged from the fault-free
    /// reference.
    pub disagreements: usize,
    /// Five-number summaries per facet, in stable order: the shared run
    /// metrics (`network_rounds`, `payload_rounds`, `overhead`,
    /// `corrupted_edge_rounds`) followed by the compiler's typed
    /// [`CompilerNotes`](congest_sim::scenario::CompilerNotes) metrics
    /// (`rewinds`, `fully_corrected`, `key_rounds`,
    /// `good_trees`, …).
    pub stats: Vec<(String, StatSummary)>,
    /// Per-phase wall-time aggregate over the group's executed repetitions:
    /// `(phase name, closed spans, total milliseconds)`, in [`obs::Phase`]
    /// order, phases with no spans omitted.  Empty unless the campaign ran
    /// with tracing enabled ([`Campaign::trace`]); wall times are measurement,
    /// not data — they never enter fingerprints or cell JSONL lines.
    pub profile: Vec<(String, u64, f64)>,
}

impl GroupSummary {
    /// Look up one facet summary by name.
    pub fn stat(&self, name: &str) -> Option<&StatSummary> {
        self.stats.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// Everything a campaign produced, in enumeration order.
#[derive(Debug)]
pub struct CampaignReport {
    /// All cells, ordered by [`CampaignCell::index`].
    pub cells: Vec<CampaignCell>,
}

impl CampaignReport {
    /// Merge shard (or resume) reports back into one, re-establishing the
    /// global enumeration order.  The union of all [`Campaign::shard`] runs
    /// merged this way is byte-identical to the unsharded run.  Overlapping
    /// shards are tolerated: cells sharing a global index are deduplicated
    /// (first occurrence wins), which is sound because a cell's seed — and
    /// therefore its entire execution — depends only on its global index.
    pub fn merged(reports: impl IntoIterator<Item = CampaignReport>) -> CampaignReport {
        let mut cells: Vec<CampaignCell> = reports.into_iter().flat_map(|r| r.cells).collect();
        cells.sort_by_key(|c| c.index);
        cells.dedup_by_key(|c| c.index);
        CampaignReport { cells }
    }

    /// Cells that executed rather than being skipped by validation.
    pub fn executed(&self) -> impl Iterator<Item = &CampaignCell> {
        self.cells.iter().filter(|c| !c.skipped())
    }

    /// Number of validation-skipped cells.
    pub fn skipped_count(&self) -> usize {
        self.cells.iter().filter(|c| c.skipped()).count()
    }

    /// Whether every executed non-baseline cell produced outputs that agree
    /// with the fault-free reference (mirrors
    /// `matrix::MatrixReport::all_protected_cells_agree`).
    pub fn all_protected_cells_agree(&self) -> bool {
        self.executed().all(|cell| match &cell.outcome {
            Ok(report) => report.protected_cell_ok(),
            Err(_) => false,
        })
    }

    /// Aggregate the repetitions of every grid cell into summaries
    /// (mean/stddev plus the order statistics), in enumeration order.
    ///
    /// The aggregation itself (grouping on the grid-cell key
    /// `index - repetition`, facet extraction, the stats) is shared with the
    /// serializable record form ([`crate::report::summaries_of`]) — a summary
    /// recomputed from stored [`CellRecord`](crate::report::CellRecord)s is
    /// byte-identical to this one.  On top, the live path overlays the
    /// per-group wall-clock [`GroupSummary::profile`] harvested from the
    /// in-memory reports of traced runs; wall times are measurement, not
    /// data, and never enter the record form.
    pub fn summaries(&self) -> Vec<GroupSummary> {
        let records: Vec<crate::report::CellRecord> = self
            .cells
            .iter()
            .map(crate::report::CellRecord::of)
            .collect();
        let mut summaries = crate::report::summaries_of(&records);
        for (summary, members) in summaries
            .iter_mut()
            .zip(crate::report::grouped_indices(&records))
        {
            let mut profile = obs::PhaseProfile::default();
            for &i in &members {
                if let Ok(report) = &self.cells[i].outcome {
                    profile.merge(&report.trace.profile);
                }
            }
            summary.profile = profile
                .rows()
                .into_iter()
                .map(|(name, spans, nanos)| (name.to_string(), spans, nanos as f64 / 1.0e6))
                .collect();
        }
        summaries
    }

    /// The JSONL export for the bench trajectory: one `kind:"cell"` line per
    /// cell (status, run metrics, typed notes) followed by one
    /// `kind:"summary"` line per grid cell (the mean/min/max/p50/p99
    /// aggregates).  Deterministic byte-for-byte at any thread count.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_with(&self.summaries())
    }

    /// [`CampaignReport::to_jsonl`] with a precomputed [`summaries`] result,
    /// so callers that also print the summaries aggregate only once.
    ///
    /// [`summaries`]: CampaignReport::summaries
    pub fn to_jsonl_with(&self, summaries: &[GroupSummary]) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell_json(cell));
            out.push('\n');
        }
        for summary in summaries {
            out.push_str(&summary_json(summary));
            out.push('\n');
        }
        out
    }

    /// A canonical serialization of every cell (debug-formatted reports and
    /// errors, in enumeration order).  Two campaigns are byte-identical iff
    /// their fingerprints are — this is what the determinism regression test
    /// compares across thread counts.
    pub fn fingerprint(&self) -> String {
        format!("{:?}", self.cells)
    }

    /// A formatted per-group summary table.
    pub fn to_table(&self) -> String {
        self.to_table_with(&self.summaries())
    }

    /// [`CampaignReport::to_table`] with a precomputed [`summaries`] result.
    ///
    /// [`summaries`]: CampaignReport::summaries
    pub fn to_table_with(&self, summaries: &[GroupSummary]) -> String {
        let mut out = format!(
            "{:<12} {:<22} {:<22} {:>5} {:>9} {:>9} {:>8} {:>9} {:>8}\n",
            "graph",
            "adversary",
            "compiler",
            "reps",
            "net p50",
            "net p99",
            "net sd",
            "overhead",
            "agree"
        );
        for s in summaries {
            if s.executed == 0 {
                out.push_str(&format!(
                    "{:<12} {:<22} {:<22} {:>5} skipped={} failed={}\n",
                    s.graph, s.adversary, s.compiler, 0, s.skipped, s.failed
                ));
                continue;
            }
            let net = s.stat("network_rounds");
            out.push_str(&format!(
                "{:<12} {:<22} {:<22} {:>5} {:>9} {:>9} {:>8.1} {:>9.1} {:>8}{}\n",
                s.graph,
                s.adversary,
                s.compiler,
                s.executed,
                net.map(|v| v.p50).unwrap_or(0.0),
                net.map(|v| v.p99).unwrap_or(0.0),
                net.map(|v| v.stddev).unwrap_or(0.0),
                s.stat("overhead").map(|v| v.mean).unwrap_or(0.0),
                if s.disagreements == 0 { "yes" } else { "NO" },
                // A group can agree on its executed repetitions and still
                // have runtime failures — don't let them hide.
                if s.failed > 0 {
                    format!("  failed={}", s.failed)
                } else {
                    String::new()
                },
            ));
        }
        out
    }
}

/// One `kind:"cell"` JSONL line (shared by [`CampaignReport::to_jsonl`] and
/// the campaign CLI's resumable trajectory files — a cell's line depends
/// only on the cell, never on which run produced it).
pub fn cell_json(cell: &CampaignCell) -> String {
    let mut line = format!(
        "{{\"kind\":\"cell\",\"index\":{},\"graph\":{},\"adversary\":{},\"compiler\":{},\"repetition\":{},\"seed\":{},\"status\":{}",
        cell.index,
        json_str(&cell.graph),
        json_str(&cell.adversary),
        json_str(&cell.compiler),
        cell.repetition,
        cell.seed,
        json_str(cell.status()),
    );
    match &cell.outcome {
        Ok(report) => {
            line.push_str(&format!(
                ",\"payload_rounds\":{},\"network_rounds\":{},\"overhead\":{},\"corrupted_edge_rounds\":{},\"agrees\":{}",
                report.payload_rounds,
                report.network_rounds,
                json_num(report.overhead()),
                report.metrics.corrupted_edge_rounds,
                match report.agrees_with_fault_free() {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                },
            ));
            line.push_str(&format!(
                ",\"notes\":{{\"type\":{}",
                json_str(report.notes.label())
            ));
            for (name, value) in report.notes.metrics() {
                line.push_str(&format!(",{}:{}", json_str(name), json_num(value)));
            }
            line.push_str("}}");
        }
        Err(e) => {
            line.push_str(&format!(",\"error\":{}}}", json_str(&e.to_string())));
        }
    }
    line
}

/// One `kind:"summary"` JSONL line per grid cell (shared by
/// [`CampaignReport::to_jsonl`] and the campaign CLI's machine-parseable
/// stdout).  The `profile` object appears only on traced runs.
pub fn summary_json(s: &GroupSummary) -> String {
    let mut line = format!(
        "{{\"kind\":\"summary\",\"graph\":{},\"adversary\":{},\"compiler\":{},\"executed\":{},\"skipped\":{},\"failed\":{},\"disagreements\":{},\"stats\":{{",
        json_str(&s.graph),
        json_str(&s.adversary),
        json_str(&s.compiler),
        s.executed,
        s.skipped,
        s.failed,
        s.disagreements,
    );
    for (i, (name, stat)) in s.stats.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{}:{{\"mean\":{},\"stddev\":{},\"min\":{},\"max\":{},\"p10\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_str(name),
            json_num(stat.mean),
            json_num(stat.stddev),
            json_num(stat.min),
            json_num(stat.max),
            json_num(stat.p10),
            json_num(stat.p50),
            json_num(stat.p90),
            json_num(stat.p99),
        ));
    }
    line.push('}');
    // Wall-clock profile: present only on traced runs, so untraced summary
    // lines stay byte-identical to pre-tracing output.
    if !s.profile.is_empty() {
        line.push_str(",\"profile\":{");
        for (i, (name, spans, ms)) in s.profile.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "{}:{{\"spans\":{},\"ms\":{}}}",
                json_str(name),
                spans,
                json_num(*ms),
            ));
        }
        line.push('}');
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_a_pure_function_of_campaign_seed_and_index() {
        assert_eq!(cell_seed(7, 3), cell_seed(7, 3));
        assert_ne!(cell_seed(7, 3), cell_seed(7, 4));
        assert_ne!(cell_seed(7, 3), cell_seed(8, 3));
    }

    #[test]
    fn shard_indices_partition_the_cell_space() {
        use congest_sim::scenario::matrix::{CompilerSpec, GraphSpec};
        use congest_sim::scenario::Uncompiled;
        use netgraph::generators;

        let make = || {
            Campaign::new(1)
                .graphs(vec![
                    GraphSpec::new("K4", generators::complete(4)),
                    GraphSpec::new("K5", generators::complete(5)),
                ])
                .adversaries(vec![AdversarySpec::new(
                    "none",
                    congest_sim::adversary::AdversaryRole::Byzantine,
                    congest_sim::adversary::CorruptionBudget::None,
                    |_| Box::new(congest_sim::adversary::NoAdversary),
                )])
                .compilers(vec![CompilerSpec::of(Uncompiled)])
                .repetitions(3)
        };
        let full = make().cell_indices();
        assert_eq!(full, (0..6).collect::<Vec<_>>());
        let mut union: Vec<usize> = (0..3)
            .flat_map(|i| make().shard(i, 3).cell_indices())
            .collect();
        union.sort_unstable();
        assert_eq!(union, full, "shards must partition the index space");
    }

    #[test]
    fn same_named_compiler_specs_are_summarised_separately() {
        use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
        use congest_sim::scenario::matrix::{AdversarySpec, CompilerSpec, GraphSpec};
        use congest_sim::scenario::{doctest_payload, Uncompiled};
        use netgraph::generators;

        // Two specs rendering to the identical display name ("uncompiled"):
        // grouping must follow the grid structure, not the names.
        let report = Campaign::new(5)
            .graphs(vec![GraphSpec::new("K5", generators::complete(5))])
            .adversaries(vec![AdversarySpec::new(
                "random-mobile",
                AdversaryRole::Byzantine,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            )])
            .compilers(vec![
                CompilerSpec::of(Uncompiled),
                CompilerSpec::of(Uncompiled),
            ])
            .payload(|g| Box::new(doctest_payload(g.clone())) as BoxedAlgorithm)
            .repetitions(2)
            .threads(1)
            .run();

        let summaries = report.summaries();
        assert_eq!(
            summaries.len(),
            2,
            "one summary per grid cell, not per name"
        );
        assert!(summaries.iter().all(|s| s.executed == 2));
    }
}
