//! One audited, hand-rolled JSON implementation shared by the campaign JSONL
//! export and the spec serializer (the workspace is offline — no serde).
//!
//! The write side is the pair of helpers that used to live inside
//! `campaign.rs` ([`json_str`], [`json_num`]); the read side is a minimal
//! recursive-descent parser into [`JsonValue`].  Numbers keep their **raw
//! token text** (`JsonValue::Num` holds the string), so 64-bit seeds round
//! trip exactly instead of being squeezed through an `f64`.

/// A parsed JSON value.
///
/// Objects preserve key order (a `Vec` of pairs, not a map): the spec layer
/// compares and re-serializes values, and order stability keeps those
/// operations deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text (parse on access via
    /// [`JsonValue::as_f64`] / [`JsonValue::as_u64`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A number value from a `u64` (exact — no float round trip).
    pub fn from_u64(v: u64) -> JsonValue {
        JsonValue::Num(v.to_string())
    }

    /// A number value from an `f64` (rendered via [`json_num`]).
    pub fn from_f64(v: f64) -> JsonValue {
        JsonValue::Num(json_num(v))
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a non-negative integer
    /// number token (seeds and counts; no float detour).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// [`JsonValue::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in key order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl core::fmt::Display for JsonValue {
    /// Compact canonical rendering: [`json_str`] escaping, raw number
    /// tokens, no whitespace.  `parse(format(v)) == v` for every value this
    /// module produces.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(true) => f.write_str("true"),
            JsonValue::Bool(false) => f.write_str("false"),
            JsonValue::Num(raw) => f.write_str(raw),
            JsonValue::Str(s) => f.write_str(&json_str(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", json_str(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, trailing data not).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(value)
}

/// Nesting depth cap — specs are a few levels deep; this only guards against
/// pathological inputs blowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), JsonError> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", ch as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let token = &self.bytes[self.pos..self.pos + 4];
        let text = core::str::from_utf8(token).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (the common case).
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            continue; // hex4 advanced past the escape already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = core::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(JsonValue::Num(raw))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The FNV-1a hash of a byte stream, rendered as 16 hex digits — the one
/// fingerprint function of the workspace (spec fingerprints, report-record
/// fingerprints, the campaign server's job keys all use it).
pub fn fnv1a_hex(bytes: impl Iterator<Item = u8>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Format an f64 the way JSON expects (no NaN/inf ever reaches this point).
pub fn json_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn json_numbers_render_integers_without_fraction() {
        assert_eq!(json_num(3.0), "3");
        assert_eq!(json_num(3.5), "3.5");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(JsonValue::as_array).unwrap().len(), 3);
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seed = u64::MAX - 1;
        let v = JsonValue::from_u64(seed);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let original = "quote\" slash\\ tab\t newline\n nul\u{1} emoji😀 high\u{10FFFF}";
        let rendered = json_str(original);
        let back = parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            parse(r#""\u0041\ud83d\ude00""#).unwrap().as_str(),
            Some("A😀")
        );
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"abc",
            "01x",
            "[1]]",
            "\"\\ud800\"",
            "-",
            "1.",
            "1e",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn display_is_compact_and_reparseable() {
        let v = parse(r#" { "k" : [ 1 , 2.5 , "s" ] , "n" : null } "#).unwrap();
        let compact = v.to_string();
        assert_eq!(compact, r#"{"k":[1,2.5,"s"],"n":null}"#);
        assert_eq!(parse(&compact).unwrap(), v);
    }
}
