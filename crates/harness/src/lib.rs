//! `mobile-congest-harness` — the deterministic parallel experiment engine
//! (re-exported as `mobile_congest::harness`).
//!
//! A [`Campaign`] is a batched grid of graph × adversary × compiler ×
//! seed-repetition cells.  The engine fans the cells across a self-scheduling
//! worker pool built on `std::thread` + channels ([`engine::run_indexed`]),
//! derives every cell's RNG seed from `(campaign_seed, cell_index)`
//! ([`cell_seed`]), and collects the results in enumeration order — so a
//! campaign's report is **byte-identical at any thread count** (covered by a
//! regression test that compares 1-, 2- and 8-worker fingerprints).
//!
//! Each cell runs through the same `Scenario` pipeline as
//! `congest_sim::scenario::matrix::sweep` (the single-threaded facade over
//! the shared [`run_cell`](congest_sim::scenario::matrix::run_cell) entry
//! point), so typed validation skips, [`RunReport`]s and the per-compiler
//! [`CompilerNotes`] diagnostics all flow through unchanged.  On top, the
//! report aggregates every numeric facet — run metrics plus the typed notes
//! (rewinds, correction verdicts, key rounds, packing quality) — into
//! mean/min/max/p50/p99 summaries per grid cell, and exports the whole
//! trajectory as JSONL for the bench harness.
//!
//! A small two-worker campaign on a clique:
//!
//! ```
//! use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
//! use congest_sim::scenario::matrix::{AdversarySpec, CompilerSpec, GraphSpec};
//! use congest_sim::scenario::{doctest_payload, BoxedAlgorithm, Uncompiled};
//! use mobile_congest_harness::Campaign;
//! use netgraph::generators;
//!
//! let report = Campaign::new(7)
//!     .graphs(vec![GraphSpec::new("K6", generators::complete(6))])
//!     .adversaries(vec![AdversarySpec::new(
//!         "random-mobile",
//!         AdversaryRole::Byzantine,
//!         CorruptionBudget::Mobile { f: 1 },
//!         |seed| Box::new(RandomMobile::new(1, seed)),
//!     )])
//!     .compilers(vec![CompilerSpec::of(Uncompiled)])
//!     .payload(|g| Box::new(doctest_payload(g.clone())) as BoxedAlgorithm)
//!     .repetitions(2)
//!     .threads(2)
//!     .run();
//!
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.cells.iter().all(|cell| cell.outcome.is_ok()));
//! let summaries = report.summaries();
//! assert_eq!(summaries.len(), 1);
//! assert_eq!(summaries[0].stat("network_rounds").unwrap().count, 2);
//! assert!(report.to_jsonl().lines().count() >= 3); // 2 cells + 1 summary
//! ```
//!
//! Campaigns are also first-class **data**: a serializable [`CampaignSpec`]
//! (the [`spec`] module) describes the whole grid as
//! `GraphDef` × `AdversaryDef` × `CompilerDef` axes plus a [`PayloadDef`],
//! with hand-rolled JSON encode/parse in [`json`].
//! [`Campaign::from_spec`] resolves a spec through the same registries the
//! hand-built zoos use, so the resulting report is byte-identical to the
//! equivalent hand-built campaign; [`Campaign::shard`] partitions the cell
//! index space for multi-machine runs, and the `campaign` CLI binary of the
//! umbrella crate drives spec files with cell-level resume.
//!
//! [`RunReport`]: congest_sim::scenario::RunReport
//! [`CompilerNotes`]: congest_sim::scenario::CompilerNotes

#![warn(missing_docs)]

pub mod artifact_cache;
pub mod campaign;
pub mod engine;
pub mod json;
pub mod report;
pub mod spec;
pub mod stats;

pub use artifact_cache::ArtifactCache;
pub use campaign::{
    cell_seed, Campaign, CampaignCell, CampaignReport, GroupSummary, SharedPayload,
};
pub use engine::{default_threads, run_indexed};
pub use report::{CellRecord, RecordOutcome, ReportRecord};
pub use spec::{CampaignSpec, GridSpec, PayloadDef, SpecError};
pub use stats::StatSummary;
