//! The campaign-report codec: flat, serializable per-cell records with a
//! lossless JSON round trip.
//!
//! A [`CellRecord`] is the plain-data form of one executed
//! [`CampaignCell`]: the cell's grid coordinates plus
//! exactly the facet values the summary aggregation consumes — no live
//! `RunReport`, no outputs, no traces.  A [`ReportRecord`] is a whole
//! campaign report in that form.  Three properties make it the storage format
//! of the campaign server (`crates/campaignd`):
//!
//! * **lossless round trip** — `from_jsonl(to_jsonl(r)) == r` for every
//!   record (property-tested in `tests/report_proptests.rs`; numbers ride the
//!   exact-token [`crate::json`] layer, so `u64` seeds and shortest-form
//!   `f64` facets survive byte-for-byte);
//! * **fingerprint-stable** — [`ReportRecord::fingerprint`] is FNV-1a over
//!   the canonical JSONL form, so two reports fingerprint equal iff they
//!   carry the same cells, no matter which process (CLI run, server worker,
//!   store replay) produced them;
//! * **summary-exact** — [`ReportRecord::summaries`] and
//!   [`CampaignReport::summaries`](crate::CampaignReport::summaries) share
//!   one implementation ([`summaries_of`]), so a summary recomputed from
//!   stored records is byte-identical to the one the live run printed.
//!
//! The per-cell trajectory line of the campaign CLI
//! ([`cell_json`](crate::campaign::cell_json)) is derivable from a record
//! ([`CellRecord::cell_line`]), which is what lets a server-side store answer
//! `GET /jobs/{fp}/trajectory` with the exact bytes a one-shot CLI run would
//! have written.

use crate::campaign::{summary_json, CampaignCell, CampaignReport, GroupSummary};
use crate::json::{self, fnv1a_hex, JsonValue};
use crate::spec::{CampaignSpec, SpecError};
use crate::stats::StatSummary;

/// How one recorded cell ended: the executed facets, or the typed reason it
/// did not run.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordOutcome {
    /// The cell executed to a report.
    Ok {
        /// Rounds of the uncompiled payload.
        payload_rounds: usize,
        /// Network rounds the compiled execution consumed.
        network_rounds: usize,
        /// Edge-rounds the adversary corrupted.
        corrupted_edge_rounds: usize,
        /// 99th-percentile per-arc congestion.
        cong_p99: f64,
        /// Mean of the top-3 per-arc congestion values.
        cong_topk: f64,
        /// Agreement with the fault-free reference (`None` when the
        /// reference run was disabled).
        agrees: Option<bool>,
        /// The [`CompilerNotes`](congest_sim::scenario::CompilerNotes) label.
        notes_type: String,
        /// The typed notes metrics, in their canonical emission order.
        notes: Vec<(String, f64)>,
    },
    /// The cell was skipped by validation (structurally incompatible
    /// configuration).
    Skipped {
        /// The typed error, rendered.
        error: String,
    },
    /// The cell failed at runtime.
    Failed {
        /// The typed error, rendered.
        error: String,
    },
}

/// The plain-data form of one campaign cell: grid coordinates plus the facet
/// values the summaries are computed from.  See the module docs for the
/// round-trip / fingerprint / summary contracts.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Position in the campaign's global enumeration order.
    pub index: usize,
    /// Graph display name.
    pub graph: String,
    /// Adversary display name.
    pub adversary: String,
    /// Compiler display name.
    pub compiler: String,
    /// Repetition number within the grid cell.
    pub repetition: usize,
    /// The derived per-cell seed.
    pub seed: u64,
    /// How the cell ended.
    pub outcome: RecordOutcome,
}

impl CellRecord {
    /// Flatten one executed campaign cell into its record form.
    pub fn of(cell: &CampaignCell) -> CellRecord {
        let outcome = match &cell.outcome {
            Ok(report) => {
                let cong = report.metrics.congestion_summary(3);
                RecordOutcome::Ok {
                    payload_rounds: report.payload_rounds,
                    network_rounds: report.network_rounds,
                    corrupted_edge_rounds: report.metrics.corrupted_edge_rounds,
                    cong_p99: cong.p99 as f64,
                    cong_topk: cong.topk_mean(),
                    agrees: report.agrees_with_fault_free(),
                    notes_type: report.notes.label().to_string(),
                    notes: report
                        .notes
                        .metrics()
                        .into_iter()
                        .map(|(name, value)| (name.to_string(), value))
                        .collect(),
                }
            }
            Err(e) if cell.skipped() => RecordOutcome::Skipped {
                error: e.to_string(),
            },
            Err(e) => RecordOutcome::Failed {
                error: e.to_string(),
            },
        };
        CellRecord {
            index: cell.index,
            graph: cell.graph.clone(),
            adversary: cell.adversary.clone(),
            compiler: cell.compiler.clone(),
            repetition: cell.repetition,
            seed: cell.seed,
            outcome,
        }
    }

    /// `ok` / `skipped` / `failed` (mirrors
    /// [`CampaignCell::status`](crate::CampaignCell::status)).
    pub fn status(&self) -> &'static str {
        match self.outcome {
            RecordOutcome::Ok { .. } => "ok",
            RecordOutcome::Skipped { .. } => "skipped",
            RecordOutcome::Failed { .. } => "failed",
        }
    }

    /// The facet samples this record contributes to its group summary
    /// (empty unless the cell executed) — the single extraction point the
    /// live path reuses through [`summaries_of`].
    pub fn facets(&self) -> Vec<(String, f64)> {
        let RecordOutcome::Ok {
            payload_rounds,
            network_rounds,
            corrupted_edge_rounds,
            cong_p99,
            cong_topk,
            ref notes,
            ..
        } = self.outcome
        else {
            return Vec::new();
        };
        let mut facets = vec![
            ("network_rounds".to_string(), network_rounds as f64),
            ("payload_rounds".to_string(), payload_rounds as f64),
            (
                "overhead".to_string(),
                network_rounds as f64 / payload_rounds.max(1) as f64,
            ),
            (
                "corrupted_edge_rounds".to_string(),
                corrupted_edge_rounds as f64,
            ),
            ("cong_p99".to_string(), cong_p99),
            ("cong_topk".to_string(), cong_topk),
        ];
        facets.extend(notes.iter().cloned());
        facets
    }

    /// Encode as one canonical `kind:"cell-record"` JSON line.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("kind".to_string(), JsonValue::Str("cell-record".into())),
            ("index".to_string(), JsonValue::from_u64(self.index as u64)),
            ("graph".to_string(), JsonValue::Str(self.graph.clone())),
            (
                "adversary".to_string(),
                JsonValue::Str(self.adversary.clone()),
            ),
            (
                "compiler".to_string(),
                JsonValue::Str(self.compiler.clone()),
            ),
            (
                "repetition".to_string(),
                JsonValue::from_u64(self.repetition as u64),
            ),
            ("seed".to_string(), JsonValue::from_u64(self.seed)),
            ("status".to_string(), JsonValue::Str(self.status().into())),
        ];
        match &self.outcome {
            RecordOutcome::Ok {
                payload_rounds,
                network_rounds,
                corrupted_edge_rounds,
                cong_p99,
                cong_topk,
                agrees,
                notes_type,
                notes,
            } => {
                fields.push((
                    "payload_rounds".to_string(),
                    JsonValue::from_u64(*payload_rounds as u64),
                ));
                fields.push((
                    "network_rounds".to_string(),
                    JsonValue::from_u64(*network_rounds as u64),
                ));
                fields.push((
                    "corrupted_edge_rounds".to_string(),
                    JsonValue::from_u64(*corrupted_edge_rounds as u64),
                ));
                fields.push(("cong_p99".to_string(), JsonValue::from_f64(*cong_p99)));
                fields.push(("cong_topk".to_string(), JsonValue::from_f64(*cong_topk)));
                fields.push((
                    "agrees".to_string(),
                    match agrees {
                        Some(b) => JsonValue::Bool(*b),
                        None => JsonValue::Null,
                    },
                ));
                let mut notes_fields =
                    vec![("type".to_string(), JsonValue::Str(notes_type.clone()))];
                notes_fields.push((
                    "metrics".to_string(),
                    JsonValue::Obj(
                        notes
                            .iter()
                            .map(|(name, value)| (name.clone(), JsonValue::from_f64(*value)))
                            .collect(),
                    ),
                ));
                fields.push(("notes".to_string(), JsonValue::Obj(notes_fields)));
            }
            RecordOutcome::Skipped { error } | RecordOutcome::Failed { error } => {
                fields.push(("error".to_string(), JsonValue::Str(error.clone())));
            }
        }
        JsonValue::Obj(fields).to_string()
    }

    /// Parse one record from its [`CellRecord::to_json`] line.
    pub fn from_json(line: &str) -> Result<CellRecord, SpecError> {
        let v = json::parse(line)?;
        Self::from_value(&v)
    }

    /// Parse one record from an already-parsed JSON value.
    pub fn from_value(v: &JsonValue) -> Result<CellRecord, SpecError> {
        let missing = |field: &str| SpecError::Missing {
            field: format!("cell-record.{field}"),
        };
        if v.get("kind").and_then(JsonValue::as_str) != Some("cell-record") {
            return Err(SpecError::Invalid {
                reason: "not a cell-record line".into(),
            });
        }
        let str_field = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(name))
        };
        let num_field = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| missing(name))
        };
        let status = str_field("status")?;
        let outcome = match status.as_str() {
            "ok" => {
                let notes_obj = v.get("notes").ok_or_else(|| missing("notes"))?;
                let notes = notes_obj
                    .get("metrics")
                    .and_then(JsonValue::as_object)
                    .ok_or_else(|| missing("notes.metrics"))?
                    .iter()
                    .map(|(name, value)| {
                        value
                            .as_f64()
                            .map(|f| (name.clone(), f))
                            .ok_or_else(|| missing("notes.metrics[]"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                RecordOutcome::Ok {
                    payload_rounds: num_field("payload_rounds")?,
                    network_rounds: num_field("network_rounds")?,
                    corrupted_edge_rounds: num_field("corrupted_edge_rounds")?,
                    cong_p99: v
                        .get("cong_p99")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| missing("cong_p99"))?,
                    cong_topk: v
                        .get("cong_topk")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| missing("cong_topk"))?,
                    agrees: match v.get("agrees").ok_or_else(|| missing("agrees"))? {
                        JsonValue::Null => None,
                        other => Some(other.as_bool().ok_or_else(|| missing("agrees"))?),
                    },
                    notes_type: notes_obj
                        .get("type")
                        .and_then(JsonValue::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| missing("notes.type"))?,
                    notes,
                }
            }
            "skipped" => RecordOutcome::Skipped {
                error: str_field("error")?,
            },
            "failed" => RecordOutcome::Failed {
                error: str_field("error")?,
            },
            other => {
                return Err(SpecError::Invalid {
                    reason: format!("unknown cell-record status `{other}`"),
                })
            }
        };
        Ok(CellRecord {
            index: num_field("index")?,
            graph: str_field("graph")?,
            adversary: str_field("adversary")?,
            compiler: str_field("compiler")?,
            repetition: num_field("repetition")?,
            seed: v
                .get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing("seed"))?,
            outcome,
        })
    }

    /// The `kind:"cell"` trajectory line this record stands for —
    /// byte-identical to [`cell_json`](crate::campaign::cell_json) on the
    /// live cell it was flattened from, so a store can serve the exact
    /// trajectory a CLI run writes.
    pub fn cell_line(&self) -> String {
        let mut line = format!(
            "{{\"kind\":\"cell\",\"index\":{},\"graph\":{},\"adversary\":{},\"compiler\":{},\"repetition\":{},\"seed\":{},\"status\":{}",
            self.index,
            json::json_str(&self.graph),
            json::json_str(&self.adversary),
            json::json_str(&self.compiler),
            self.repetition,
            self.seed,
            json::json_str(self.status()),
        );
        match &self.outcome {
            RecordOutcome::Ok {
                payload_rounds,
                network_rounds,
                corrupted_edge_rounds,
                agrees,
                notes_type,
                notes,
                ..
            } => {
                line.push_str(&format!(
                    ",\"payload_rounds\":{},\"network_rounds\":{},\"overhead\":{},\"corrupted_edge_rounds\":{},\"agrees\":{}",
                    payload_rounds,
                    network_rounds,
                    json::json_num(*network_rounds as f64 / (*payload_rounds).max(1) as f64),
                    corrupted_edge_rounds,
                    match agrees {
                        Some(true) => "true",
                        Some(false) => "false",
                        None => "null",
                    },
                ));
                line.push_str(&format!(
                    ",\"notes\":{{\"type\":{}",
                    json::json_str(notes_type)
                ));
                for (name, value) in notes {
                    line.push_str(&format!(
                        ",{}:{}",
                        json::json_str(name),
                        json::json_num(*value)
                    ));
                }
                line.push_str("}}");
            }
            RecordOutcome::Skipped { error } | RecordOutcome::Failed { error } => {
                line.push_str(&format!(",\"error\":{}}}", json::json_str(error)));
            }
        }
        line
    }
}

/// A whole campaign report in record form: the serializable product of a run
/// (see the module docs for the codec contracts).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportRecord {
    /// The cell records, ordered by [`CellRecord::index`].
    pub cells: Vec<CellRecord>,
}

impl ReportRecord {
    /// Flatten a live campaign report.
    pub fn of(report: &CampaignReport) -> ReportRecord {
        ReportRecord {
            cells: report.cells.iter().map(CellRecord::of).collect(),
        }
    }

    /// Encode as canonical JSONL: one [`CellRecord::to_json`] line per cell,
    /// in index order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell.to_json());
            out.push('\n');
        }
        out
    }

    /// Parse a report from its [`ReportRecord::to_jsonl`] form (blank lines
    /// allowed; any other malformed line is a typed error).  Cells are
    /// re-sorted by index, with exact duplicates deduplicated — the same
    /// normalization [`ReportRecord::merged`] applies.
    pub fn from_jsonl(text: &str) -> Result<ReportRecord, SpecError> {
        let mut cells = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            cells.push(CellRecord::from_json(line)?);
        }
        Ok(ReportRecord::merged([ReportRecord { cells }]))
    }

    /// Merge shard / resume / store-segment reports into one, re-establishing
    /// the global enumeration order.  Cells sharing an index are deduplicated
    /// (first occurrence wins) — by the campaign determinism contract, two
    /// records of the same global index describe the same execution.
    pub fn merged(reports: impl IntoIterator<Item = ReportRecord>) -> ReportRecord {
        let mut cells: Vec<CellRecord> = reports.into_iter().flat_map(|r| r.cells).collect();
        cells.sort_by_key(|c| c.index);
        cells.dedup_by_key(|c| c.index);
        ReportRecord { cells }
    }

    /// Aggregate into per-grid-cell summaries — the same bytes
    /// [`CampaignReport::summaries`](crate::CampaignReport::summaries)
    /// produces for the live report these records were flattened from
    /// (untraced runs; the wall-clock profile is measurement, not data, and
    /// is never recorded).
    pub fn summaries(&self) -> Vec<GroupSummary> {
        summaries_of(&self.cells)
    }

    /// The `kind:"summary"` JSONL block (one line per grid cell) — the
    /// machine-parseable stdout of a CLI run, recomputed from records.
    pub fn summary_jsonl(&self) -> String {
        let mut out = String::new();
        for summary in self.summaries() {
            out.push_str(&summary_json(&summary));
            out.push('\n');
        }
        out
    }

    /// The trajectory body: one [`CellRecord::cell_line`] per cell.
    pub fn cell_lines(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell.cell_line());
            out.push('\n');
        }
        out
    }

    /// Stable 64-bit fingerprint (FNV-1a over the canonical
    /// [`ReportRecord::to_jsonl`] form), rendered as 16 hex digits.  Two
    /// reports fingerprint equal iff they carry the same cell records —
    /// the acceptance check "a server-run campaign is byte-identical to the
    /// one-shot CLI run" compares exactly this.
    pub fn fingerprint(&self) -> String {
        fnv1a_hex(self.to_jsonl().bytes())
    }

    /// Executed / skipped / failed / disagreeing cell counts, in that order.
    pub fn outcome_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for cell in &self.cells {
            match &cell.outcome {
                RecordOutcome::Ok { agrees, .. } => {
                    counts.0 += 1;
                    if *agrees == Some(false) {
                        counts.3 += 1;
                    }
                }
                RecordOutcome::Skipped { .. } => counts.1 += 1,
                RecordOutcome::Failed { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

/// The `kind:"campaign"` trajectory header keying a trajectory to its spec —
/// shared by the campaign CLI's `--out` files and the campaign server's
/// `GET /jobs/{fp}/trajectory`, so the two artifacts are byte-comparable.
pub fn trajectory_header(spec: &CampaignSpec) -> String {
    format!(
        "{{\"kind\":\"campaign\",\"fingerprint\":\"{}\",\"seed\":{},\"repetitions\":{},\"cells\":{}}}",
        spec.fingerprint(),
        spec.seed,
        spec.repetitions,
        spec.cell_count(),
    )
}

/// Group member indices per grid cell, in enumeration order.  Records are
/// grouped on the key `index - repetition` (the global index of the grid
/// cell's repetition 0) over contiguous runs — the same rule the live
/// summaries use, so non-contiguous subsets (shards, resumed or partially
/// stored jobs) aggregate per grid cell and never glue repetitions onto a
/// neighbouring cell.
pub fn grouped_indices(records: &[CellRecord]) -> Vec<Vec<usize>> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, record) in records.iter().enumerate() {
        let key = record.index - record.repetition;
        match groups.last_mut() {
            Some((k, members)) if *k == key => members.push(i),
            _ => groups.push((key, vec![i])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Aggregate records into per-grid-cell [`GroupSummary`]s — the single
/// summary implementation behind both
/// [`CampaignReport::summaries`](crate::CampaignReport::summaries) (which
/// overlays wall-clock profiles on top) and [`ReportRecord::summaries`].
pub fn summaries_of(records: &[CellRecord]) -> Vec<GroupSummary> {
    grouped_indices(records)
        .into_iter()
        .map(|members| {
            let first = &records[members[0]];
            let mut stats: Vec<(String, Vec<f64>)> = Vec::new();
            let mut executed = 0usize;
            let mut skipped = 0usize;
            let mut failed = 0usize;
            let mut disagreements = 0usize;
            for &i in &members {
                let record = &records[i];
                match &record.outcome {
                    RecordOutcome::Ok { agrees, .. } => {
                        executed += 1;
                        if *agrees == Some(false) {
                            disagreements += 1;
                        }
                        for (name, value) in record.facets() {
                            match stats.iter_mut().find(|(n, _)| *n == name) {
                                Some((_, samples)) => samples.push(value),
                                None => stats.push((name, vec![value])),
                            }
                        }
                    }
                    RecordOutcome::Skipped { .. } => skipped += 1,
                    RecordOutcome::Failed { .. } => failed += 1,
                }
            }
            GroupSummary {
                graph: first.graph.clone(),
                adversary: first.adversary.clone(),
                compiler: first.compiler.clone(),
                executed,
                skipped,
                failed,
                disagreements,
                stats: stats
                    .into_iter()
                    .filter_map(|(name, samples)| StatSummary::of(&samples).map(|s| (name, s)))
                    .collect(),
                profile: Vec::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_record(index: usize, repetition: usize) -> CellRecord {
        CellRecord {
            index,
            graph: "K8".into(),
            adversary: "random-mobile".into(),
            compiler: "clique(f=1)".into(),
            repetition,
            seed: 0xDEAD_BEEF_u64,
            outcome: RecordOutcome::Ok {
                payload_rounds: 3,
                network_rounds: 10,
                corrupted_edge_rounds: 4,
                cong_p99: 7.0,
                cong_topk: 6.333333333333333,
                agrees: Some(true),
                notes_type: "resilient".into(),
                notes: vec![("fully_corrected".into(), 1.0), ("good_trees".into(), 9.0)],
            },
        }
    }

    #[test]
    fn record_json_round_trips() {
        for record in [
            ok_record(5, 1),
            CellRecord {
                outcome: RecordOutcome::Skipped {
                    error: "pairing \"x\" unsupported".into(),
                },
                ..ok_record(0, 0)
            },
            CellRecord {
                outcome: RecordOutcome::Failed {
                    error: "boom\nline2".into(),
                },
                ..ok_record(7, 0)
            },
        ] {
            let line = record.to_json();
            let back = CellRecord::from_json(&line).unwrap();
            assert_eq!(back, record);
            assert_eq!(back.to_json(), line, "encode must be idempotent");
        }
    }

    #[test]
    fn report_jsonl_round_trips_and_fingerprints_stably() {
        let report = ReportRecord {
            cells: vec![ok_record(0, 0), ok_record(1, 1), ok_record(2, 0)],
        };
        let text = report.to_jsonl();
        let back = ReportRecord::from_jsonl(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.fingerprint(), report.fingerprint());
        assert_eq!(report.fingerprint().len(), 16);
    }

    #[test]
    fn merged_sorts_and_dedups_by_index() {
        let a = ReportRecord {
            cells: vec![ok_record(2, 0), ok_record(0, 0)],
        };
        let b = ReportRecord {
            cells: vec![ok_record(1, 1), ok_record(2, 0)],
        };
        let merged = ReportRecord::merged([a, b]);
        let indices: Vec<usize> = merged.cells.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(CellRecord::from_json("{\"kind\":\"cell\"}").is_err());
        assert!(CellRecord::from_json("{").is_err());
        assert!(ReportRecord::from_jsonl("{\"kind\":\"cell-record\"}\n").is_err());
        // Blank lines are tolerated (the store's segment writer ends files
        // with a newline).
        assert_eq!(
            ReportRecord::from_jsonl("\n\n").unwrap(),
            ReportRecord::default()
        );
    }

    #[test]
    fn grouping_follows_the_grid_key_not_names() {
        // Two grid cells with identical display names: repetition resets the
        // key, so they stay separate groups.
        let records = vec![ok_record(0, 0), ok_record(1, 1), ok_record(2, 0)];
        let groups = grouped_indices(&records);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
        let summaries = summaries_of(&records);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].executed, 2);
        assert_eq!(summaries[0].stat("network_rounds").unwrap().count, 2);
    }
}
