//! Summary statistics over campaign repetitions: mean/min/max/p50/p99.

/// Five-number summary of one numeric facet over a group of repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct StatSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank; equals the max for small samples).
    pub p99: f64,
}

impl StatSummary {
    /// Summarise a non-empty sample set; returns `None` for an empty one.
    pub fn of(samples: &[f64]) -> Option<StatSummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("campaign metrics are never NaN"));
        let sum: f64 = sorted.iter().sum();
        Some(StatSummary {
            count: sorted.len(),
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
        })
    }
}

/// Nearest-rank percentile over an already-sorted sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert_eq!(StatSummary::of(&[]), None);
    }

    #[test]
    fn five_numbers_of_a_known_sample() {
        let s = StatSummary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 4.0);
    }

    #[test]
    fn singleton_collapses_to_the_value() {
        let s = StatSummary::of(&[7.0]).unwrap();
        assert_eq!(
            (s.mean, s.min, s.max, s.p50, s.p99),
            (7.0, 7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn p99_picks_the_tail_of_a_large_sample() {
        let samples: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let s = StatSummary::of(&samples).unwrap();
        assert_eq!(s.p50, 100.0);
        assert_eq!(s.p99, 198.0);
    }
}
