//! Summary statistics over campaign repetitions: mean/stddev plus the
//! min/p10/p50/p90/p99/max order statistics.

/// Summary of one numeric facet over a group of repetitions: central
/// tendency (mean), dispersion (sample standard deviation) and the
/// min/p10/p50/p90/p99/max order statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; `0.0` for a single
    /// sample).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 10th percentile (nearest-rank; equals the min for small samples).
    pub p10: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank; equals the max for small samples).
    pub p99: f64,
}

impl StatSummary {
    /// Summarise a non-empty sample set; returns `None` for an empty one.
    pub fn of(samples: &[f64]) -> Option<StatSummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("campaign metrics are never NaN"));
        let n = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let ss: f64 = sorted.iter().map(|v| (v - mean) * (v - mean)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        Some(StatSummary {
            count: n,
            mean,
            stddev,
            min: sorted[0],
            max: sorted[n - 1],
            p10: percentile(&sorted, 10.0),
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
        })
    }
}

/// Nearest-rank percentile over an already-sorted sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert_eq!(StatSummary::of(&[]), None);
    }

    #[test]
    fn summary_of_a_known_sample() {
        let s = StatSummary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 4.0);
        // Sample stddev of {1,2,3,4}: sqrt(5/3).
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn singleton_collapses_to_the_value_with_zero_spread() {
        let s = StatSummary::of(&[7.0]).unwrap();
        assert_eq!(
            (s.mean, s.min, s.max, s.p10, s.p50, s.p90, s.p99),
            (7.0, 7.0, 7.0, 7.0, 7.0, 7.0, 7.0)
        );
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn constant_samples_have_zero_stddev() {
        let s = StatSummary::of(&[3.0; 10]).unwrap();
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentiles_pick_the_tails_of_a_large_sample() {
        let samples: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let s = StatSummary::of(&samples).unwrap();
        assert_eq!(s.p10, 20.0);
        assert_eq!(s.p50, 100.0);
        assert_eq!(s.p90, 180.0);
        assert_eq!(s.p99, 198.0);
        // Uniform 1..=200: sample stddev is close to 200/sqrt(12) ≈ 57.9.
        assert!((s.stddev - 57.879).abs() < 0.01);
    }
}
