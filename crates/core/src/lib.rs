//! `mobile-congest-core` — the compilers of *Distributed CONGEST Algorithms
//! against Mobile Adversaries* (Fischer & Parter, PODC 2023).
//!
//! The crate turns arbitrary round-by-round CONGEST algorithms
//! ([`congest_sim::CongestAlgorithm`]) into algorithms that stay **secure**
//! against mobile eavesdroppers or **correct** against mobile byzantine edge
//! adversaries, running on the `congest-sim` network simulator:
//!
//! | Module | Paper result |
//! |---|---|
//! | [`secure::keys`] | Lemma A.1 — pad pools from Vandermonde bit extraction |
//! | [`secure::static_to_mobile`] | Theorem 1.2 — static-secure → mobile-secure simulation |
//! | [`secure::unicast`] | Lemma A.3 — mobile-secure unicast / multicast |
//! | [`secure::broadcast`] | Theorem A.4 + Theorem 1.3 — secure broadcast and the congestion-sensitive compiler |
//! | [`resilient::safe_broadcast`] | Lemma 3.6 — `ECCSafeBroadcast` |
//! | [`resilient::correction`] | Section 3.2.2 / Lemma 4.2 — sketch-based message correction |
//! | [`resilient::tree_compiler`] | Theorems 3.5 & 1.6 — tree-packing compiler, CONGESTED CLIQUE compiler |
//! | [`resilient::expander`] | Theorem 1.7 / Lemma 3.10 — expander compiler with packing built under attack |
//! | [`resilient::cycle_cover`] | Theorems 1.4 / 5.5 — FT-cycle-cover compiler |
//! | [`rate::rewind`] | Theorem 4.1 — round-error-rate rewind compiler |
//!
//! # Quick example
//!
//! ```
//! use congest_algorithms::FloodBroadcast;
//! use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
//! use congest_sim::network::Network;
//! use congest_sim::run_fault_free;
//! use mobile_congest_core::resilient::CliqueCompiler;
//! use netgraph::generators;
//!
//! let g = generators::complete(12);
//! let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 7));
//! let f = 1;
//! let mut net = Network::new(
//!     g.clone(),
//!     AdversaryRole::Byzantine,
//!     Box::new(RandomMobile::new(f, 42)),
//!     CorruptionBudget::Mobile { f },
//!     42,
//! );
//! let compiler = CliqueCompiler::new(&g, f, 1);
//! let (out, report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, 7), &mut net);
//! assert_eq!(out, expected);
//! assert!(report.fully_corrected);
//! ```

pub mod adapters;
pub mod rate;
pub mod registry;
pub mod resilient;
pub mod secure;

pub use adapters::{
    CliqueAdapter, CompilerDef, CongestionSensitiveAdapter, CycleCoverAdapter, ExpanderAdapter,
    RewindAdapter, StaticToMobileAdapter, TreePackingAdapter,
};
