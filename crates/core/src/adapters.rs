//! Thin [`Compiler`] adapters: the paper's seven compilers behind the unified
//! `scenario` execution API.
//!
//! Each adapter is a cheap, `Clone` parameter holder; everything derived from
//! the graph (star packings, greedy tree packings, cycle covers, key pools)
//! is built inside `compile` from `net.graph()`.  That makes one adapter
//! value reusable across a whole [`congest_sim::scenario::matrix`] sweep, and
//! turns the constructors' former panics and `Option` returns into typed
//! [`ScenarioError`]s at validation time:
//!
//! | Adapter | Wraps | Paper result |
//! |---|---|---|
//! | [`CliqueAdapter`] | `CliqueCompiler` | Theorem 1.6 |
//! | [`TreePackingAdapter`] | `MobileByzantineCompiler` | Theorem 3.5 |
//! | [`CycleCoverAdapter`] | `CycleCoverCompiler` | Theorems 1.4 / 5.5 |
//! | [`ExpanderAdapter`] | `run_expander_compiled` | Theorem 1.7 |
//! | [`RewindAdapter`] | `RewindCompiler` | Theorem 4.1 |
//! | [`StaticToMobileAdapter`] | `StaticToMobileCompiler` | Theorem 1.2 |
//! | [`CongestionSensitiveAdapter`] | `CongestionSensitiveCompiler` | Theorem 1.3 |

use async_exec::ScheduleDef;

use crate::rate::RewindCompiler;
use crate::resilient::{
    rs_error_capacity, run_expander_compiled, CliqueCompiler, CorrectionVariant,
    CycleCoverCompiler, MobileByzantineCompiler,
};
use crate::secure::{CongestionSensitiveCompiler, StaticToMobileCompiler};
use congest_sim::network::Network;
use congest_sim::scenario::matrix::CompilerSpec;
use congest_sim::scenario::{
    validate_role, BoxedAlgorithm, CompileArtifacts, Compiler, CompilerKind, CompilerNotes,
    ScenarioError,
};
use congest_sim::traffic::Output;
use congest_sim::AdversaryRole;
use netgraph::connectivity::edge_connectivity;
use netgraph::tree_packing::{
    augmented_low_depth_packing_traced, greedy_low_depth_packing, load_floor, star_packing,
    TreePacking,
};
use netgraph::{Graph, NodeId, PackingVersion};

/// Whether `g` is the complete graph on its node set.
fn is_complete(g: &Graph) -> bool {
    let n = g.node_count();
    g.edge_count() == n * n.saturating_sub(1) / 2
}

/// Shared sizing for greedy packings.  Validation certifies exactly what the
/// v2 packing delivers, so passing it *predicts* correction strength:
///
/// * edge connectivity `λ ≥ 2f + 1` (the information-theoretic floor),
/// * `k (n-1) <= 2 eta m` edge capacity (enough room for the trees at all),
/// * the graph's [`load_floor`] — the best max-edge-load any `k`-tree packing
///   can achieve — stays within the correction code's [`rs_error_capacity`],
///   since a heaviest-edge mobile adversary fails every tree scheduled over
///   one edge at once.
fn validate_packing_feasible(
    compiler: &str,
    g: &Graph,
    k: usize,
    eta: usize,
    f: usize,
) -> Result<(), ScenarioError> {
    let lambda = edge_connectivity(g);
    if lambda < 2 * f + 1 {
        return Err(ScenarioError::InsufficientConnectivity {
            compiler: compiler.to_string(),
            needed: 2 * f + 1,
            found: lambda,
        });
    }
    let n = g.node_count();
    if k * n.saturating_sub(1) > 2 * eta * g.edge_count() {
        return Err(ScenarioError::UnsupportedGraph {
            compiler: compiler.to_string(),
            reason: format!(
                "too sparse to pack {k} trees at load {eta}: {} edges for {} nodes",
                g.edge_count(),
                n
            ),
        });
    }
    let floor = load_floor(g, k);
    let capacity = rs_error_capacity(k);
    if floor > capacity {
        return Err(ScenarioError::UnsupportedGraph {
            compiler: compiler.to_string(),
            reason: format!(
                "every {k}-tree packing has an edge of load >= {floor}, beyond the \
                 correction code's error capacity {capacity}"
            ),
        });
    }
    Ok(())
}

/// The information-theoretic floor lambda >= 2f+1, specialised to complete
/// graphs where lambda = n - 1.
fn validate_clique_floor(compiler: &str, g: &Graph, f: usize) -> Result<(), ScenarioError> {
    let lambda = g.node_count().saturating_sub(1);
    if lambda < 2 * f + 1 {
        return Err(ScenarioError::InsufficientConnectivity {
            compiler: compiler.to_string(),
            needed: 2 * f + 1,
            found: lambda,
        });
    }
    Ok(())
}

/// Build the packing the byzantine-resilient adapters share: the `(n, 2, 2)`
/// star packing on cliques; elsewhere the Appendix-C greedy packing (v1) or
/// its augmenting-path repaired successor (v2) per the selected
/// [`PackingVersion`].  A pure function of `(g, k, version)` — the tracer
/// only carries phase spans — which is what makes the packing cacheable
/// across seeds and adversaries.
fn resilient_packing_on(
    g: &Graph,
    tracer: &mut obs::Tracer,
    k: usize,
    version: PackingVersion,
) -> TreePacking {
    tracer.span_open(obs::Phase::Packing);
    let packing = if is_complete(g) {
        star_packing(g, 0)
    } else {
        match version {
            PackingVersion::V1Greedy => greedy_low_depth_packing(g, 0, k, 2),
            PackingVersion::V2Augmented => {
                augmented_low_depth_packing_traced(g, 0, k, 2, None, tracer)
            }
        }
    };
    tracer.span_close(obs::Phase::Packing);
    packing
}

/// [`resilient_packing_on`] against a network's own graph and tracer (the
/// single-phase `compile` path).
fn resilient_packing(net: &mut Network, k: usize, version: PackingVersion) -> TreePacking {
    let (g, tracer) = net.graph_and_tracer();
    resilient_packing_on(g, tracer, k, version)
}

/// The number of trees the majority argument needs against `f` mobile faults
/// at load `eta` (`k > 2 · t_RS · c_RS · f · η`).
fn default_tree_count(f: usize) -> usize {
    2 * interactive_coding::T_RS * interactive_coding::C_RS * f.max(1) * 2 + 1
}

/// Fold a [`ByzantineCompilerReport`] correction trace into the typed notes
/// channel (shared by the clique, tree-packing and expander adapters).
fn resilient_notes(report: &crate::resilient::ByzantineCompilerReport) -> CompilerNotes {
    let q = &report.packing_quality;
    CompilerNotes::Resilient {
        fully_corrected: report.fully_corrected,
        mismatches_before: report.per_round.iter().map(|r| r.mismatches_before).sum(),
        mismatches_after: report.per_round.iter().map(|r| r.mismatches_after).sum(),
        failed_trees: report.per_round.iter().map(|r| r.failed_trees).sum(),
        packing_trees: q.trees,
        packing_good_trees: q.good_trees,
        packing_max_load: q.max_edge_load,
        packing_load_floor: q.load_floor,
        packing_min_cut_usage: q.min_cut_usage,
    }
}

/// Theorem 1.6: the CONGESTED CLIQUE compiler (star packing over `K_n`).
#[derive(Debug, Clone, Copy)]
pub struct CliqueAdapter {
    /// The mobile fault bound to withstand.
    pub f: usize,
    /// Compiler randomness seed.
    pub seed: u64,
    /// Correction procedure.
    pub variant: CorrectionVariant,
}

impl CliqueAdapter {
    /// Adapter for an `f`-mobile byzantine adversary.
    pub fn new(f: usize, seed: u64) -> Self {
        CliqueAdapter {
            f,
            seed,
            variant: CorrectionVariant::SparseMajority,
        }
    }

    /// Select the correction variant (default: sparse majority).
    pub fn with_variant(mut self, variant: CorrectionVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Build the wrapped compiler (star packing and all) under a packing span.
    fn build_compiler(&self, g: &Graph, tracer: &mut obs::Tracer) -> CliqueCompiler {
        tracer.span_open(obs::Phase::Packing);
        let compiler = CliqueCompiler::new(g, self.f, self.seed).with_variant(self.variant);
        tracer.span_close(obs::Phase::Packing);
        compiler
    }
}

impl Compiler for CliqueAdapter {
    fn name(&self) -> String {
        format!("clique(f={})", self.f)
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Resilient
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        if !is_complete(graph) {
            return Err(ScenarioError::UnsupportedGraph {
                compiler: self.name(),
                reason: "the clique compiler requires the complete graph".into(),
            });
        }
        // Note: `CliqueCompiler::max_tolerable_f` is the far stricter
        // *worst-case* majority envelope; runs beyond it can still succeed
        // against non-adversarial strategies, so it is reported in
        // experiments rather than enforced.
        validate_clique_floor(&self.name(), graph, self.f)
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        validate_role(self, net.role())?;
        let compiler = {
            let (g, tracer) = net.graph_and_tracer();
            self.build_compiler(g, tracer)
        };
        let (out, report) = compiler.run(&mut *payload, net);
        Ok((out, resilient_notes(&report)))
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // `CliqueCompiler::new` asserts completeness; surface the same typed
        // error `validate` gives so caching over arbitrary grids never panics.
        if !is_complete(graph) {
            return Err(ScenarioError::UnsupportedGraph {
                compiler: self.name(),
                reason: "the clique compiler requires the complete graph".into(),
            });
        }
        let compiler = self.build_compiler(graph, tracer);
        Ok(CompileArtifacts::with_payload(graph, compiler))
    }
    fn execute(
        &self,
        artifacts: &CompileArtifacts,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let Some(compiler) = artifacts.payload::<CliqueCompiler>() else {
            return self.compile(payload, net);
        };
        validate_role(self, net.role())?;
        let (out, report) = compiler.run(&mut *payload, net);
        Ok((out, resilient_notes(&report)))
    }
}

/// Theorem 3.5: the general-graph compiler over a low-depth tree packing —
/// the greedy construction (v1) or its augmenting-path repaired successor
/// (v2, the default; see `netgraph::tree_packing::improve_packing`).
#[derive(Debug, Clone, Copy)]
pub struct TreePackingAdapter {
    /// The mobile fault bound to withstand.
    pub f: usize,
    /// Number of trees to pack (default: the majority-argument minimum).
    pub k: usize,
    /// Compiler randomness seed.
    pub seed: u64,
    /// Correction procedure.
    pub variant: CorrectionVariant,
    /// Which packing construction to use (default: v2).
    pub packing: PackingVersion,
}

impl TreePackingAdapter {
    /// Adapter for an `f`-mobile byzantine adversary with the default tree
    /// count `k = 2·t_RS·c_RS·f·η + 1` and the v2 augmented packing.
    pub fn new(f: usize, seed: u64) -> Self {
        TreePackingAdapter {
            f,
            k: default_tree_count(f),
            seed,
            variant: CorrectionVariant::SparseMajority,
            packing: PackingVersion::default(),
        }
    }

    /// Override the number of packed trees.  On complete graphs the
    /// `(n, 2, 2)` star packing is used instead and `k` has no effect.
    pub fn with_trees(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Select the correction variant (default: sparse majority).
    pub fn with_variant(mut self, variant: CorrectionVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Select the packing construction (default: v2 augmented) — the knob
    /// campaign grids use to A/B the two packings on identical cells.
    pub fn with_packing(mut self, packing: PackingVersion) -> Self {
        self.packing = packing;
        self
    }
}

impl Compiler for TreePackingAdapter {
    fn name(&self) -> String {
        format!(
            "tree-packing(f={},k={},{})",
            self.f,
            self.k,
            self.packing.label()
        )
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Resilient
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        if is_complete(graph) {
            // The star packing is always feasible; only the lambda floor applies.
            return validate_clique_floor(&self.name(), graph, self.f);
        }
        validate_packing_feasible(&self.name(), graph, self.k, 2, self.f)
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        // Full graph validation runs once at `ScenarioBuilder::build`; here
        // only the cheap role check guards direct trait callers.
        validate_role(self, net.role())?;
        let packing = resilient_packing(net, self.k, self.packing);
        let compiler =
            MobileByzantineCompiler::new(packing, self.f, self.seed).with_variant(self.variant);
        let (out, report) = compiler.run(&mut *payload, net);
        Ok((out, resilient_notes(&report)))
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // The packing (and therefore the whole wrapped compiler — its seed is
        // the adapter's own parameter) is a pure function of the graph, and so
        // is the correction context (schedule plan, spanning flags, broadcast
        // code, quality measurement) prepared alongside it.
        let packing = resilient_packing_on(graph, tracer, self.k, self.packing);
        let compiler = MobileByzantineCompiler::new(packing, self.f, self.seed)
            .with_variant(self.variant)
            .contextualize(graph);
        Ok(CompileArtifacts::with_payload(graph, compiler))
    }
    fn execute(
        &self,
        artifacts: &CompileArtifacts,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let Some(compiler) = artifacts.payload::<MobileByzantineCompiler>() else {
            return self.compile(payload, net);
        };
        validate_role(self, net.role())?;
        let (out, report) = compiler.run(&mut *payload, net);
        Ok((out, resilient_notes(&report)))
    }
}

/// Theorems 1.4 / 5.5: the FT-cycle-cover compiler for `(2f+1)`-edge-connected
/// graphs.
#[derive(Debug, Clone, Copy)]
pub struct CycleCoverAdapter {
    /// The mobile fault bound to withstand.
    pub f: usize,
}

impl CycleCoverAdapter {
    /// Adapter for an `f`-mobile byzantine adversary.
    pub fn new(f: usize) -> Self {
        CycleCoverAdapter { f }
    }

    /// Build the wrapped compiler (cover construction included), surfacing
    /// insufficient connectivity as the same typed error `validate` gives.
    fn build_compiler(&self, g: &Graph) -> Result<CycleCoverCompiler, ScenarioError> {
        CycleCoverCompiler::new(g, self.f).ok_or_else(|| ScenarioError::InsufficientConnectivity {
            compiler: self.name(),
            needed: 2 * self.f + 1,
            found: edge_connectivity(g),
        })
    }

    /// Fold a cover report into the typed notes channel.
    fn cover_notes(report: &crate::resilient::CycleCoverReport) -> CompilerNotes {
        CompilerNotes::CycleCover {
            paths_per_edge: report.paths_per_edge,
            dilation: report.dilation,
            congestion: report.congestion,
            colors: report.colors,
        }
    }
}

impl Compiler for CycleCoverAdapter {
    fn name(&self) -> String {
        format!("cycle-cover(f={})", self.f)
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Resilient
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        let needed = 2 * self.f + 1;
        let found = edge_connectivity(graph);
        if found < needed {
            return Err(ScenarioError::InsufficientConnectivity {
                compiler: self.name(),
                needed,
                found,
            });
        }
        Ok(())
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        validate_role(self, net.role())?;
        let compiler = self.build_compiler(net.graph())?;
        let (out, report) = compiler.run(&mut *payload, net);
        Ok((out, Self::cover_notes(&report)))
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // The FT cycle cover is deterministic in the graph; the wrapped
        // compiler carries no seed at all.
        let _ = tracer;
        let compiler = self.build_compiler(graph)?;
        Ok(CompileArtifacts::with_payload(graph, compiler))
    }
    fn execute(
        &self,
        artifacts: &CompileArtifacts,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let Some(compiler) = artifacts.payload::<CycleCoverCompiler>() else {
            return self.compile(payload, net);
        };
        validate_role(self, net.role())?;
        let (out, report) = compiler.run(&mut *payload, net);
        Ok((out, Self::cover_notes(&report)))
    }
}

/// Theorem 1.7: the expander compiler — the weak packing is built while the
/// adversary is already attacking.
#[derive(Debug, Clone, Copy)]
pub struct ExpanderAdapter {
    /// The mobile fault bound to withstand.
    pub f: usize,
    /// Number of edge colours / candidate trees.
    pub k: usize,
    /// BFS propagation rounds (use `Θ(log n / φ)`).
    pub bfs_rounds: usize,
    /// Compiler randomness seed.
    pub seed: u64,
}

impl ExpanderAdapter {
    /// Adapter for an `f`-mobile byzantine adversary, with `k` colour classes
    /// and `bfs_rounds` propagation rounds.
    pub fn new(f: usize, k: usize, bfs_rounds: usize, seed: u64) -> Self {
        ExpanderAdapter {
            f,
            k,
            bfs_rounds,
            seed,
        }
    }
}

impl Compiler for ExpanderAdapter {
    fn name(&self) -> String {
        format!("expander(f={},k={})", self.f, self.k)
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Resilient
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        // Every colour class must stay above the spanning threshold: average
        // per-colour degree d/k well clear of ~ln n.
        if graph.min_degree() < 4 * self.k {
            return Err(ScenarioError::UnsupportedGraph {
                compiler: self.name(),
                reason: format!(
                    "min degree {} is too small for {} colour classes",
                    graph.min_degree(),
                    self.k
                ),
            });
        }
        Ok(())
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        validate_role(self, net.role())?;
        let (out, report) = run_expander_compiled(
            &mut *payload,
            net,
            self.f,
            self.k,
            self.bfs_rounds,
            self.seed,
        );
        let notes = CompilerNotes::Expander {
            trees: report.packing.k,
            good_trees: report.packing.good_trees,
            packing_rounds: report.packing.rounds,
            fully_corrected: report.compilation.fully_corrected,
            mismatches_after: report
                .compilation
                .per_round
                .iter()
                .map(|r| r.mismatches_after)
                .sum(),
        };
        Ok((out, notes))
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // Theorem 1.7's whole point is that the weak packing is *built while
        // the adversary attacks* — it depends on the seed and the adversary,
        // so only the warmed graph is seed-independent and cacheable.
        let _ = tracer;
        Ok(CompileArtifacts::graph_only(graph))
    }
}

/// Theorem 4.1: the round-error-rate rewind compiler.  Needs a replayable
/// payload, so it only runs through [`Compiler::compile_replayable`] (the
/// `Scenario` pipeline always does).
#[derive(Debug, Clone, Copy)]
pub struct RewindAdapter {
    /// The average per-round corruption bound to withstand.
    pub f: usize,
    /// Compiler randomness seed.
    pub seed: u64,
}

impl RewindAdapter {
    /// Adapter for an `f`-average-rate byzantine adversary.
    pub fn new(f: usize, seed: u64) -> Self {
        RewindAdapter { f, seed }
    }

    /// Drive the wrapped [`RewindCompiler`] over `packing` and fold its
    /// report into the typed notes channel.
    fn run_rewind(
        &self,
        packing: TreePacking,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let compiler = RewindCompiler::new(packing, self.f, self.seed);
        let (out, report) = compiler.run(make, net);
        if !report.completed {
            return Err(ScenarioError::IncompleteRun {
                compiler: self.name(),
                detail: format!(
                    "committed only {} rounds after {} rewinds in {} global rounds",
                    report.committed_rounds, report.rewinds, report.global_rounds
                ),
            });
        }
        let notes = CompilerNotes::Rewind {
            rewinds: report.rewinds,
            committed_rounds: report.committed_rounds,
            global_rounds: report.global_rounds,
            completed: report.completed,
        };
        Ok((out, notes))
    }
}

impl Compiler for RewindAdapter {
    fn name(&self) -> String {
        format!("rewind(f={})", self.f)
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::RateResilient
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        if is_complete(graph) {
            return validate_clique_floor(&self.name(), graph, self.f);
        }
        validate_packing_feasible(&self.name(), graph, default_tree_count(self.f), 2, self.f)
    }
    fn compile(
        &self,
        _payload: BoxedAlgorithm,
        _net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        Err(ScenarioError::ReplayRequired {
            compiler: self.name(),
        })
    }
    fn compile_replayable(
        &self,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        // Full graph validation runs once at `ScenarioBuilder::build`; here
        // only the cheap role check guards direct trait callers.
        validate_role(self, net.role())?;
        let packing = resilient_packing(net, default_tree_count(self.f), PackingVersion::default());
        self.run_rewind(packing, make, net)
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // Only the packing is seed-independent (the rewind schedule itself
        // reacts to the adversary), so the artifacts carry the bare packing.
        let packing = resilient_packing_on(
            graph,
            tracer,
            default_tree_count(self.f),
            PackingVersion::default(),
        );
        Ok(CompileArtifacts::with_payload(graph, packing))
    }
    fn execute_replayable(
        &self,
        artifacts: &CompileArtifacts,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let Some(packing) = artifacts.payload::<TreePacking>() else {
            return self.compile_replayable(make, net);
        };
        validate_role(self, net.role())?;
        self.run_rewind(packing.clone(), make, net)
    }
}

/// Theorem 1.2: the static→mobile secrecy compiler (one-time pads from
/// Vandermonde bit extraction).
#[derive(Debug, Clone, Copy)]
pub struct StaticToMobileAdapter {
    /// Slack parameter `t` (more key rounds, more tolerated mobility).
    pub t: usize,
    /// Maximum payload width in words.
    pub words_per_message: usize,
    /// Node-randomness seed.
    pub seed: u64,
}

impl StaticToMobileAdapter {
    /// Adapter with slack `t` protecting messages of up to
    /// `words_per_message` words.
    pub fn new(t: usize, words_per_message: usize, seed: u64) -> Self {
        StaticToMobileAdapter {
            t,
            words_per_message,
            seed,
        }
    }
}

impl Compiler for StaticToMobileAdapter {
    fn name(&self) -> String {
        format!("static-to-mobile(t={})", self.t)
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Secure
    }
    fn validate(&self, _graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        if self.words_per_message == 0 {
            return Err(ScenarioError::InvalidParameter {
                compiler: self.name(),
                reason: "words_per_message must be at least 1".into(),
            });
        }
        Ok(())
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        self.validate(net.graph(), net.role())?;
        let compiler = StaticToMobileCompiler::new(self.t, self.words_per_message, self.seed);
        let (out, report) = compiler.run(&mut *payload, net);
        let notes = CompilerNotes::Secure {
            key_rounds: report.key_rounds,
            simulation_rounds: report.simulation_rounds,
        };
        Ok((out, notes))
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // Key schedules are exchanged *over the network* per run (the pads
        // depend on node randomness the eavesdropper races against), so only
        // the warmed graph is seed-independent and cacheable.
        let _ = tracer;
        Ok(CompileArtifacts::graph_only(graph))
    }
}

/// Theorem 1.3: the congestion-sensitive secrecy compiler (dummy traffic on
/// silent edges, tagged and padded real traffic elsewhere).
#[derive(Debug, Clone, Copy)]
pub struct CongestionSensitiveAdapter {
    /// The mobile eavesdropping bound to defend against.
    pub f: usize,
    /// Maximum payload width in words.
    pub words_per_message: usize,
    /// Node-randomness seed.
    pub seed: u64,
    /// Source node for the global secret exchange.
    pub source: NodeId,
}

impl CongestionSensitiveAdapter {
    /// Adapter for an `f`-mobile eavesdropper, global exchange rooted at
    /// node 0.
    pub fn new(f: usize, words_per_message: usize, seed: u64) -> Self {
        CongestionSensitiveAdapter {
            f,
            words_per_message,
            seed,
            source: 0,
        }
    }

    /// Root the global secret exchange elsewhere.
    pub fn with_source(mut self, source: NodeId) -> Self {
        self.source = source;
        self
    }
}

impl Compiler for CongestionSensitiveAdapter {
    fn name(&self) -> String {
        format!("congestion-sensitive(f={})", self.f)
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Secure
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        if self.source >= graph.node_count() {
            return Err(ScenarioError::InvalidParameter {
                compiler: self.name(),
                reason: format!(
                    "source {} is not a node of the {}-node graph",
                    self.source,
                    graph.node_count()
                ),
            });
        }
        if self.words_per_message == 0 {
            return Err(ScenarioError::InvalidParameter {
                compiler: self.name(),
                reason: "words_per_message must be at least 1".into(),
            });
        }
        Ok(())
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        self.validate(net.graph(), net.role())?;
        let compiler = CongestionSensitiveCompiler::new(self.f, self.words_per_message, self.seed);
        let (out, report) = compiler.run(&mut *payload, net, self.source);
        let notes = CompilerNotes::CongestionSensitive {
            local_key_rounds: report.local_key_rounds,
            global_key_rounds: report.global_key_rounds,
            simulation_rounds: report.simulation_rounds,
            congestion: report.congestion,
        };
        Ok((out, notes))
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // Both the local and the global key exchanges run over the live
        // (eavesdropped) network, so nothing beyond the warmed graph is
        // seed-independent.
        let _ = tracer;
        Ok(CompileArtifacts::graph_only(graph))
    }
}

/// A serializable description of one compiler configuration — the adapter
/// registry as *data*.  Each variant names one adapter (or the built-in
/// baseline/reference compilers) together with its parameters; resolve it
/// with [`CompilerDef::build`] (one boxed instance) or
/// [`CompilerDef::to_spec`] (a grid-ready factory).
///
/// | Def | Adapter | Kind |
/// |---|---|---|
/// | `Uncompiled` | [`congest_sim::scenario::Uncompiled`] | `Baseline` |
/// | `FaultFree` | [`congest_sim::scenario::FaultFree`] | `Reference` |
/// | `Clique` | [`CliqueAdapter`] | `Resilient` |
/// | `TreePacking` | [`TreePackingAdapter`] | `Resilient` |
/// | `CycleCover` | [`CycleCoverAdapter`] | `Resilient` |
/// | `Expander` | [`ExpanderAdapter`] | `Resilient` |
/// | `Rewind` | [`RewindAdapter`] | `RateResilient` |
/// | `StaticToMobile` | [`StaticToMobileAdapter`] | `Secure` |
/// | `CongestionSensitive` | [`CongestionSensitiveAdapter`] | `Secure` |
/// | `Async` | [`async_exec::AsyncExecutor`] | `Baseline` |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompilerDef {
    /// The no-defence baseline.
    Uncompiled,
    /// The asynchronous execution runtime ([`async_exec::AsyncExecutor`]):
    /// the uncompiled payload run under a virtual-time delivery schedule.
    Async {
        /// Delivery behaviour (latency, reorder, drops, partitions, crashes).
        schedule: ScheduleDef,
    },
    /// The network-less reference run.
    FaultFree,
    /// Theorem 1.6 ([`CliqueAdapter`]).
    Clique {
        /// Mobile fault bound.
        f: usize,
        /// Compiler randomness seed.
        seed: u64,
    },
    /// Theorem 3.5 ([`TreePackingAdapter`]).
    TreePacking {
        /// Mobile fault bound.
        f: usize,
        /// Packed tree count; `None` uses the majority-argument default.
        trees: Option<usize>,
        /// Compiler randomness seed.
        seed: u64,
        /// Packing construction (v1 greedy / v2 augmented).
        packing: PackingVersion,
    },
    /// Theorems 1.4 / 5.5 ([`CycleCoverAdapter`]).
    CycleCover {
        /// Mobile fault bound.
        f: usize,
    },
    /// Theorem 1.7 ([`ExpanderAdapter`]).
    Expander {
        /// Mobile fault bound.
        f: usize,
        /// Colour classes / candidate trees.
        k: usize,
        /// BFS propagation rounds.
        bfs_rounds: usize,
        /// Compiler randomness seed.
        seed: u64,
    },
    /// Theorem 4.1 ([`RewindAdapter`]).
    Rewind {
        /// Average per-round corruption bound.
        f: usize,
        /// Compiler randomness seed.
        seed: u64,
    },
    /// Theorem 1.2 ([`StaticToMobileAdapter`]).
    StaticToMobile {
        /// Slack parameter (more key rounds, more tolerated mobility).
        t: usize,
        /// Maximum payload width in words.
        words: usize,
        /// Node-randomness seed.
        seed: u64,
    },
    /// Theorem 1.3 ([`CongestionSensitiveAdapter`]).
    CongestionSensitive {
        /// Mobile eavesdropping bound.
        f: usize,
        /// Maximum payload width in words.
        words: usize,
        /// Node-randomness seed.
        seed: u64,
    },
}

impl CompilerDef {
    /// The stable lowercase label used by serialized specs (the registry
    /// key, together with the per-variant parameters).
    pub fn label(&self) -> &'static str {
        match self {
            CompilerDef::Uncompiled => "uncompiled",
            CompilerDef::Async { .. } => "async",
            CompilerDef::FaultFree => "fault-free",
            CompilerDef::Clique { .. } => "clique",
            CompilerDef::TreePacking { .. } => "tree-packing",
            CompilerDef::CycleCover { .. } => "cycle-cover",
            CompilerDef::Expander { .. } => "expander",
            CompilerDef::Rewind { .. } => "rewind",
            CompilerDef::StaticToMobile { .. } => "static-to-mobile",
            CompilerDef::CongestionSensitive { .. } => "congestion-sensitive",
        }
    }

    /// What the described compiler defends against.
    pub fn kind(&self) -> CompilerKind {
        match self {
            CompilerDef::Uncompiled | CompilerDef::Async { .. } => CompilerKind::Baseline,
            CompilerDef::FaultFree => CompilerKind::Reference,
            CompilerDef::Clique { .. }
            | CompilerDef::TreePacking { .. }
            | CompilerDef::CycleCover { .. }
            | CompilerDef::Expander { .. } => CompilerKind::Resilient,
            CompilerDef::Rewind { .. } => CompilerKind::RateResilient,
            CompilerDef::StaticToMobile { .. } | CompilerDef::CongestionSensitive { .. } => {
                CompilerKind::Secure
            }
        }
    }

    /// Resolve the def into one boxed compiler instance (delegates to
    /// [`crate::registry::instantiate`], the single def → adapter path).
    pub fn build(&self) -> Box<dyn Compiler> {
        crate::registry::instantiate(self)
    }

    /// Resolve the def into a grid-ready [`CompilerSpec`] whose display name
    /// matches the adapter's own (`clique(f=1)`, `tree-packing(f=1,k=41)`,
    /// …), so spec-built and hand-built campaigns agree byte-for-byte.
    pub fn to_spec(&self) -> CompilerSpec {
        let def = self.clone();
        CompilerSpec::new(self.build().name(), move || def.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{FloodBroadcast, LeaderElection};
    use congest_sim::adversary::{CorruptionBudget, RandomMobile};
    use congest_sim::scenario::Scenario;
    use netgraph::generators;

    #[test]
    fn clique_adapter_rejects_non_cliques_and_eavesdroppers() {
        let adapter = CliqueAdapter::new(1, 7);
        let cycle = generators::cycle(6);
        assert!(matches!(
            adapter.validate(&cycle, AdversaryRole::Byzantine),
            Err(ScenarioError::UnsupportedGraph { .. })
        ));
        let clique = generators::complete(8);
        assert!(matches!(
            adapter.validate(&clique, AdversaryRole::Eavesdropper),
            Err(ScenarioError::RoleMismatch { .. })
        ));
        assert!(adapter.validate(&clique, AdversaryRole::Byzantine).is_ok());
    }

    #[test]
    fn cycle_cover_adapter_reports_connectivity() {
        let adapter = CycleCoverAdapter::new(1);
        let err = adapter
            .validate(&generators::cycle(6), AdversaryRole::Byzantine)
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::InsufficientConnectivity {
                compiler: adapter.name(),
                needed: 3,
                found: 2,
            }
        );
        assert!(adapter
            .validate(&generators::circulant(9, 2), AdversaryRole::Byzantine)
            .is_ok());
    }

    #[test]
    fn direct_compile_checks_the_networks_real_role() {
        // Bypassing the builder must not bypass role validation: the network
        // knows its role and the adapter consults it.
        let g = generators::complete(8);
        let mut eaves = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(1, 2)),
            CorruptionBudget::Mobile { f: 1 },
            2,
        );
        let err = CliqueAdapter::new(1, 3)
            .compile(Box::new(LeaderElection::new(g.clone())), &mut eaves)
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::RoleMismatch {
                role: AdversaryRole::Eavesdropper,
                ..
            }
        ));
    }

    #[test]
    fn rewind_adapter_requires_replay() {
        let g = generators::complete(8);
        let adapter = RewindAdapter::new(1, 3);
        let mut net = Network::fault_free(g.clone());
        let gg = g.clone();
        let err = adapter
            .compile(Box::new(LeaderElection::new(gg)), &mut net)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::ReplayRequired { .. }));
    }

    #[test]
    fn clique_scenario_end_to_end_through_the_adapter() {
        let g = generators::complete(12);
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(gg.clone(), 0, 4242))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(2, 13),
                CorruptionBudget::Mobile { f: 2 },
            )
            .seed(13)
            .compiled_with(CliqueAdapter::new(2, 7))
            .run()
            .unwrap();
        assert_eq!(report.agrees_with_fault_free(), Some(true));
        assert!(report.network_rounds > report.payload_rounds);
    }

    #[test]
    fn clique_adapter_honours_the_correction_variant() {
        let g = generators::complete(20);
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(gg.clone(), 0, 99))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 9),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(9)
            .compiled_with(CliqueAdapter::new(1, 3).with_variant(CorrectionVariant::L0Threshold))
            .run()
            .unwrap();
        assert_eq!(report.agrees_with_fault_free(), Some(true));
        // The l0-threshold variant iterates sampling phases, so its round
        // footprint differs from the single-shot sparse-majority default —
        // proof the variant actually reached the compiler.
        let gg = g.clone();
        let default_report = Scenario::on(g)
            .payload(move || FloodBroadcast::new(gg.clone(), 0, 99))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 9),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(9)
            .compiled_with(CliqueAdapter::new(1, 3))
            .run()
            .unwrap();
        assert_ne!(report.network_rounds, default_report.network_rounds);
    }

    #[test]
    fn compiler_defs_resolve_to_the_same_names_kinds_and_parameters() {
        let defs: Vec<(CompilerDef, Box<dyn Compiler>)> = vec![
            (
                CompilerDef::Uncompiled,
                Box::new(congest_sim::scenario::Uncompiled),
            ),
            (
                CompilerDef::FaultFree,
                Box::new(congest_sim::scenario::FaultFree),
            ),
            (
                CompilerDef::Clique { f: 2, seed: 7 },
                Box::new(CliqueAdapter::new(2, 7)),
            ),
            (
                CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: PackingVersion::V2Augmented,
                },
                Box::new(TreePackingAdapter::new(1, 5)),
            ),
            (
                CompilerDef::TreePacking {
                    f: 1,
                    trees: Some(9),
                    seed: 5,
                    packing: PackingVersion::V1Greedy,
                },
                Box::new(
                    TreePackingAdapter::new(1, 5)
                        .with_trees(9)
                        .with_packing(PackingVersion::V1Greedy),
                ),
            ),
            (
                CompilerDef::CycleCover { f: 1 },
                Box::new(CycleCoverAdapter::new(1)),
            ),
            (
                CompilerDef::Expander {
                    f: 1,
                    k: 5,
                    bfs_rounds: 6,
                    seed: 13,
                },
                Box::new(ExpanderAdapter::new(1, 5, 6, 13)),
            ),
            (
                CompilerDef::Rewind { f: 1, seed: 3 },
                Box::new(RewindAdapter::new(1, 3)),
            ),
            (
                CompilerDef::StaticToMobile {
                    t: 4,
                    words: 2,
                    seed: 5,
                },
                Box::new(StaticToMobileAdapter::new(4, 2, 5)),
            ),
            (
                CompilerDef::CongestionSensitive {
                    f: 1,
                    words: 2,
                    seed: 17,
                },
                Box::new(CongestionSensitiveAdapter::new(1, 2, 17)),
            ),
        ];
        for (def, adapter) in defs {
            let built = def.build();
            assert_eq!(built.name(), adapter.name(), "registry name drift");
            assert_eq!(built.kind(), adapter.kind(), "registry kind drift");
            assert_eq!(def.kind(), adapter.kind());
            assert_eq!(def.to_spec().name, adapter.name());
        }
    }

    #[test]
    fn secure_adapter_scenario_records_the_view() {
        let g = generators::grid(3, 3);
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || FloodBroadcast::new(gg.clone(), 0, 321))
            .adversary(
                AdversaryRole::Eavesdropper,
                RandomMobile::new(2, 7),
                CorruptionBudget::Mobile { f: 2 },
            )
            .seed(7)
            .compiled_with(StaticToMobileAdapter::new(4, 2, 99))
            .run()
            .unwrap();
        assert_eq!(report.agrees_with_fault_free(), Some(true));
        assert!(!report.view.is_empty());
        assert!(!report.view_contains_any(&[321]));
    }
}
