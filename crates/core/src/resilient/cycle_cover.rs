//! The fault-tolerant-cycle-cover compiler (Theorems 1.4 / 5.5).
//!
//! For graphs that are only `(2f+1)`-edge-connected (too sparse for the
//! tree-packing machinery) and small `f`, every round of the protected
//! algorithm is simulated by flooding each message over the `2f+1`
//! edge-disjoint paths of its edge's path system, for a window of
//! `2·f·dilation + dilation + 1` rounds, and taking the majority at the
//! receiver (Lemma 5.6).  Path systems are processed colour class by colour
//! class using the good cycle colouring of Lemma 5.2, so that systems handled
//! together never share an edge.

use congest_sim::network::Network;
use congest_sim::traffic::{Output, Payload, Traffic};
use congest_sim::CongestAlgorithm;
use netgraph::cycle_cover::FtCycleCover;
use netgraph::{EdgeId, Graph, NodeId};
use std::collections::{BTreeMap, HashMap};

/// Report of a cycle-cover-compiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleCoverReport {
    /// Paths per edge (`2f + 1`).
    pub paths_per_edge: usize,
    /// Dilation of the cover.
    pub dilation: usize,
    /// Congestion of the cover.
    pub congestion: usize,
    /// Number of colour classes processed per simulated round.
    pub colors: usize,
    /// Total network rounds consumed.
    pub network_rounds: usize,
    /// Rounds of the protected algorithm.
    pub payload_rounds: usize,
}

/// The Theorem 1.4 compiler.
#[derive(Debug, Clone)]
pub struct CycleCoverCompiler {
    cover: FtCycleCover,
    coloring: BTreeMap<EdgeId, usize>,
    f: usize,
}

impl CycleCoverCompiler {
    /// Build the compiler for an `f`-mobile adversary on a `(2f+1)`-edge-connected
    /// graph.  Returns `None` if the graph is not sufficiently connected.
    pub fn new(g: &Graph, f: usize) -> Option<Self> {
        let cover = FtCycleCover::build(g, 2 * f + 1)?;
        let coloring = cover.good_coloring(g);
        Some(CycleCoverCompiler { cover, coloring, f })
    }

    /// The underlying cover.
    pub fn cover(&self) -> &FtCycleCover {
        &self.cover
    }

    /// Run the compiled algorithm on the network.
    pub fn run<A: CongestAlgorithm + ?Sized>(
        &self,
        alg: &mut A,
        net: &mut Network,
    ) -> (Vec<Output>, CycleCoverReport) {
        let g = net.graph().clone();
        let start = net.round();
        let r = alg.rounds();
        let dilation = self.cover.dilation().max(1);
        let window = 2 * self.f * dilation + dilation + 1;
        let num_colors = self
            .coloring
            .values()
            .copied()
            .max()
            .map(|c| c + 1)
            .unwrap_or(0);

        for round in 0..r {
            let sent = alg.send(round);
            let mut corrected = Traffic::new(&g);
            // Process colour classes one after the other; within a class all
            // path systems are edge-disjoint, so all their floods share rounds.
            for colour in 0..num_colors {
                let mut instances: Vec<FloodInstance> = Vec::new();
                for (&eid, paths) in &self.cover.paths {
                    if self.coloring.get(&eid) != Some(&colour) {
                        continue;
                    }
                    let edge = g.edge(eid);
                    for (from, to) in [(edge.u, edge.v), (edge.v, edge.u)] {
                        if let Some(payload) = sent.get(&g, from, to) {
                            let oriented: Vec<Vec<NodeId>> = paths
                                .iter()
                                .map(|p| {
                                    if p[0] == from {
                                        p.clone()
                                    } else {
                                        p.iter().rev().copied().collect()
                                    }
                                })
                                .collect();
                            instances.push(FloodInstance {
                                from,
                                to,
                                payload: payload.to_vec(),
                                paths: oriented,
                            });
                        }
                    }
                }
                if instances.is_empty() {
                    continue;
                }
                let decided = flood_instances(net, &instances, window);
                for (inst, value) in instances.iter().zip(decided) {
                    if let Some(v) = value {
                        corrected.send(&g, inst.from, inst.to, v);
                    }
                }
            }
            alg.receive(round, &corrected);
        }

        (
            alg.outputs(),
            CycleCoverReport {
                paths_per_edge: self.cover.paths_per_edge(),
                dilation,
                congestion: self.cover.congestion(&g),
                colors: num_colors,
                network_rounds: net.round() - start,
                payload_rounds: r,
            },
        )
    }
}

struct FloodInstance {
    from: NodeId,
    to: NodeId,
    payload: Payload,
    paths: Vec<Vec<NodeId>>,
}

/// Flood several (edge-disjoint-by-construction) instances simultaneously:
/// every path keeps forwarding its current value every round for
/// `dilation + window` rounds; the target takes the majority of everything that
/// arrived over the last hops.
fn flood_instances(
    net: &mut Network,
    instances: &[FloodInstance],
    window: usize,
) -> Vec<Option<Payload>> {
    let g = net.graph().clone();
    let dilation = instances
        .iter()
        .flat_map(|i| i.paths.iter().map(|p| p.len() - 1))
        .max()
        .unwrap_or(0);
    let total_rounds = dilation + window;
    // holder[instance][path][hop] = value currently held at that hop.
    let mut holder: Vec<Vec<Vec<Option<Payload>>>> = instances
        .iter()
        .map(|inst| {
            inst.paths
                .iter()
                .map(|p| {
                    let mut h = vec![None; p.len()];
                    h[0] = Some(inst.payload.clone());
                    h
                })
                .collect()
        })
        .collect();
    let mut arrived: Vec<Vec<Payload>> = vec![Vec::new(); instances.len()];

    let mut traffic = Traffic::new(&g);
    for _ in 0..total_rounds {
        traffic.begin_round(&g);
        for (ii, inst) in instances.iter().enumerate() {
            for (pi, path) in inst.paths.iter().enumerate() {
                for hop in 0..path.len() - 1 {
                    if let Some(val) = &holder[ii][pi][hop] {
                        traffic.send(&g, path[hop], path[hop + 1], val);
                    }
                }
            }
        }
        net.exchange_in_place(&mut traffic);
        for (ii, inst) in instances.iter().enumerate() {
            for (pi, path) in inst.paths.iter().enumerate() {
                for hop in (0..path.len() - 1).rev() {
                    if holder[ii][pi][hop].is_some() {
                        if let Some(msg) = traffic.get(&g, path[hop], path[hop + 1]) {
                            if hop + 1 == path.len() - 1 {
                                arrived[ii].push(msg.to_vec());
                            } else {
                                holder[ii][pi][hop + 1] = Some(msg.to_vec());
                            }
                        }
                    }
                }
            }
        }
    }

    arrived
        .into_iter()
        .map(|values| {
            if values.is_empty() {
                return None;
            }
            let mut counts: HashMap<&Payload, usize> = HashMap::new();
            for v in &values {
                *counts.entry(v).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(v, _)| v.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{FloodBroadcast, LeaderElection};
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, CorruptionMode, RandomMobile};
    use congest_sim::run_fault_free;
    use netgraph::generators;

    fn byz_net(g: Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, seed).with_mode(CorruptionMode::Constant(13))),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn insufficient_connectivity_is_rejected() {
        let g = generators::cycle(6); // 2-edge-connected: f = 1 needs 3
        assert!(CycleCoverCompiler::new(&g, 1).is_none());
        assert!(CycleCoverCompiler::new(&g, 0).is_some());
    }

    #[test]
    fn cycle_cover_compiler_on_circulant_f1() {
        let g = generators::circulant(9, 2); // 4-edge-connected ≥ 2f+1 for f=1
        let f = 1;
        let compiler = CycleCoverCompiler::new(&g, f).expect("sufficiently connected");
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 88));
        let mut net = byz_net(g.clone(), f, 3);
        let (out, report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, 88), &mut net);
        assert_eq!(out, expected);
        assert_eq!(report.paths_per_edge, 3);
        assert!(report.network_rounds > report.payload_rounds);
    }

    #[test]
    fn cycle_cover_compiler_leader_election_clique() {
        let g = generators::complete(7);
        let f = 1;
        let compiler = CycleCoverCompiler::new(&g, f).unwrap();
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let mut net = byz_net(g.clone(), f, 9);
        let (out, _) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected);
    }

    #[test]
    fn fault_free_run_has_zero_overpayment_in_correctness() {
        let g = generators::circulant(8, 2);
        let compiler = CycleCoverCompiler::new(&g, 1).unwrap();
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let mut net = Network::fault_free(g.clone());
        let (out, _) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected);
    }
}
