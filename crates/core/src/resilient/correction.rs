//! The message-correction procedure at the heart of the byzantine compilers
//! (Section 3.2.2, Steps 2–3, and Lemma 4.2).
//!
//! After a round's messages have been exchanged (Step 1), every node holds an
//! *estimate* of what it received, and at most `2f` ordered pairs hold a
//! mismatch.  The correction procedure views the round as a turnstile stream —
//! every sent word with frequency `+1`, every received word with frequency
//! `-1` — so correctly delivered words cancel and exactly the mismatched words
//! survive.  Each tree of the packing aggregates a mergeable sketch of the
//! stream, the (common) root combines the per-tree results, and the detected
//! corrections are broadcast back with [`super::safe_broadcast::ecc_safe_broadcast`].
//!
//! Two variants are provided, mirroring the paper:
//!
//! * [`sparse_majority_correction`] — the `Õ(D_TP + f)` variant: each tree
//!   aggregates an `s`-sparse recovery sketch (`s = Θ(f)`); the root takes the
//!   majority decoding across trees (a majority of RS-compiled instances end
//!   correctly, Lemma 3.3), learns the exact mismatch list and broadcasts it.
//! * [`l0_threshold_correction`] — the `Õ(D_TP)` variant: `O(log f)` iterations
//!   of ℓ0-sampling with support thresholds `Δ_j`, reproducing the geometric
//!   mismatch decay of Lemma 3.8 (instrumented so the experiments can plot
//!   `B_j`).

use crate::resilient::safe_broadcast::{ecc_safe_broadcast_ctx, BroadcastContext};
use congest_sim::network::Network;
use congest_sim::traffic::Traffic;
use interactive_coding::{RsScheduler, SchedulePlan};
use netgraph::spanning::RootedTree;
use netgraph::tree_packing::TreePacking;
use netgraph::{ArcId, Graph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sketches::{L0SamplerBank, SketchRandomness, SparseRecovery};
use std::collections::BTreeMap;

/// Maximum number of payload words per message the correction machinery can
/// track (word indices are packed into 8 bits; index 255 is the length record).
pub const MAX_WORDS: usize = 254;
/// Maximum word value representable in the 40-bit content lane of a sketch element.
pub const MAX_WORD_VALUE: u64 = (1 << 40) - 1;
/// Special word index carrying a message's length.
const LEN_INDEX: u64 = 255;

/// Pack `(arc, word index, content)` into a 64-bit sketch element.
///
/// # Panics
///
/// Panics if the arc id exceeds 16 bits, the index exceeds 8 bits or the value
/// exceeds 40 bits — the CONGEST model's `O(log n)`-bit messages always fit;
/// payloads with wider words cannot be protected by this compiler.
pub fn pack_element(arc: ArcId, index: u64, value: u64) -> u64 {
    assert!(arc < (1 << 16), "arc id {arc} exceeds 16 bits");
    assert!(index < 256, "word index {index} exceeds 8 bits");
    assert!(
        value <= MAX_WORD_VALUE,
        "payload word {value:#x} exceeds the 40-bit limit of the byzantine compiler"
    );
    ((arc as u64) << 48) | (index << 40) | value
}

/// Inverse of [`pack_element`].
pub fn unpack_element(element: u64) -> (ArcId, u64, u64) {
    (
        (element >> 48) as ArcId,
        (element >> 40) & 0xFF,
        element & MAX_WORD_VALUE,
    )
}

/// Feed one message (or its absence) into a sketch-updating closure as
/// `(element, ±1)` pairs.
///
/// Sent messages (`sign > 0`) must obey the compiler's packing limits (their
/// words come from the protected algorithm).  Received messages (`sign < 0`)
/// may contain arbitrary adversarial garbage; their words are truncated to the
/// 40-bit content lane, which is sound because negative records are only used
/// to *remove* a receiver's word at a given index, never to set a value.
fn stream_message<F: FnMut(u64, i64)>(arc: ArcId, payload: Option<&[u64]>, sign: i64, f: &mut F) {
    if let Some(words) = payload {
        let len = (words.len() as u64).min(LEN_INDEX - 1);
        // Words are tracked modulo 2^40 (the content lane of the packed element).
        // Honest CONGEST payloads are O(log n)-bit and fit exactly; adversarial
        // garbage — or payload state already poisoned by an earlier failed
        // correction — is truncated rather than crashing the run.
        let pack =
            |idx: u64, value: u64| pack_element(arc, idx.min(LEN_INDEX), value & MAX_WORD_VALUE);
        f(pack(LEN_INDEX, len), sign);
        for (i, &w) in words.iter().enumerate().take(MAX_WORDS) {
            f(pack(i as u64, w), sign);
        }
    }
}

/// The exact multiset difference between sent and received traffic, as sketch
/// elements with net frequencies.  This is the ground truth the sketches
/// estimate; it is exposed for tests and experiment instrumentation.
pub fn true_mismatch_elements(g: &Graph, sent: &Traffic, received: &Traffic) -> BTreeMap<u64, i64> {
    let mut freq: BTreeMap<u64, i64> = BTreeMap::new();
    let mut add = |el: u64, d: i64| {
        *freq.entry(el).or_insert(0) += d;
    };
    for arc in 0..g.arc_count() {
        stream_message(arc, sent.get_arc(arc), 1, &mut add);
        stream_message(arc, received.get_arc(arc), -1, &mut add);
    }
    freq.retain(|_, f| *f != 0);
    freq
}

/// Number of *ordered pairs* (arcs) whose message differs between two traffic
/// snapshots — the `B_j` quantity of Lemma 3.8.
pub fn mismatched_arc_count(g: &Graph, sent: &Traffic, received: &Traffic) -> usize {
    (0..g.arc_count())
        .filter(|&arc| sent.get_arc(arc) != received.get_arc(arc))
        .count()
}

/// Apply a list of correction elements to an estimate of the received traffic:
/// positive-frequency elements set words / lengths, negative-frequency elements
/// remove the receiver's spurious words.
pub fn apply_corrections(
    g: &Graph,
    estimate: &Traffic,
    corrections: &BTreeMap<u64, i64>,
) -> Traffic {
    // Build per-arc patch sets.
    let mut patches: BTreeMap<ArcId, Vec<(u64, u64, i64)>> = BTreeMap::new();
    for (&el, &f) in corrections {
        let (arc, idx, val) = unpack_element(el);
        patches.entry(arc).or_default().push((idx, val, f));
    }
    let mut out = estimate.clone();
    for (arc, patch) in patches {
        if arc >= g.arc_count() {
            continue;
        }
        let current: Vec<u64> = estimate
            .get_arc(arc)
            .map(<[u64]>::to_vec)
            .unwrap_or_default();
        // Determine the corrected length: positive length record wins; a purely
        // negative length record with no positive replacement means "no message".
        let mut length: Option<usize> = if estimate.get_arc(arc).is_some() {
            Some(current.len())
        } else {
            None
        };
        let mut words: BTreeMap<usize, u64> = current.iter().copied().enumerate().collect();
        let mut removed_entirely = false;
        for &(idx, val, f) in &patch {
            if idx == LEN_INDEX {
                if f > 0 {
                    length = Some(val as usize);
                } else if patch.iter().all(|&(i, _, pf)| i != LEN_INDEX || pf <= 0) {
                    removed_entirely = true;
                }
            } else if f > 0 {
                words.insert(idx as usize, val);
            } else {
                // Negative record: the receiver's word at this index was bogus;
                // drop it unless a positive record re-sets it.
                if !patch.iter().any(|&(i, _, pf)| i == idx && pf > 0) {
                    words.remove(&(idx as usize));
                }
            }
        }
        if removed_entirely && patch.iter().all(|&(i, _, f)| !(i == LEN_INDEX && f > 0)) {
            out.set_arc(arc, None);
            continue;
        }
        if let Some(len) = length {
            let rebuilt: Vec<u64> = (0..len).map(|i| *words.get(&i).unwrap_or(&0)).collect();
            out.set_arc(arc, Some(&rebuilt));
        }
    }
    out
}

/// Report of one correction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionReport {
    /// Network rounds consumed.
    pub rounds: usize,
    /// Mismatched arcs before correction.
    pub mismatches_before: usize,
    /// Mismatched arcs after correction.
    pub mismatches_after: usize,
    /// Tree instances that failed during sketch aggregation.
    pub failed_trees: usize,
    /// For the ℓ0 variant: the `B_j` sequence (mismatch count after each iteration).
    pub decay: Vec<usize>,
}

/// Precomputed, topology-only state for the correction procedures over a fixed
/// `(graph, packing)` pair: per-tree spanning flags, the Lemma 3.3
/// [`SchedulePlan`], and the [`BroadcastContext`] over the packing's spanning
/// subset.
///
/// The byzantine compilers run a correction per simulated round, and each
/// correction used to redo `O(k·n)` spanning walks, an `O(k·m)` schedule scan
/// and a Vandermonde inversion.  All of that is a pure function of the graph
/// and the packing, so the compilers build this once — in `Compiler::prepare`,
/// where the campaign artifact cache shares it across every `(seed, adversary)`
/// cell of a grid.  Correcting through a context is byte-identical to the
/// plain entry points.
///
/// # Panics
///
/// Construction panics if the packing is empty.
#[derive(Debug, Clone)]
pub struct CorrectionContext {
    /// Per tree of the *full* packing: does it span the graph?  (The voting
    /// rule deliberately ignores roots — a spanning tree aggregates sketches
    /// fine wherever it is rooted.)
    spanning: Vec<bool>,
    dtp: usize,
    eta: usize,
    plan: SchedulePlan,
    /// Broadcast state over the spanning subset (Definition 7 guarantees
    /// `0.9k` spanning trees; weak packings fall back to the full packing).
    bcast: BroadcastContext,
}

impl CorrectionContext {
    /// Precompute the correction state for `packing` over `g`.
    pub fn new(g: &Graph, packing: &TreePacking) -> Self {
        let spanning: Vec<bool> = packing.trees.iter().map(|t| t.is_spanning(g)).collect();
        let plan = SchedulePlan::new(g, packing);
        let subset: Vec<RootedTree> = packing
            .trees
            .iter()
            .zip(&spanning)
            .filter(|&(_, &s)| s)
            .map(|(t, _)| t.clone())
            .collect();
        let bcast_packing = if subset.len() >= 2 {
            TreePacking::new(subset)
        } else {
            packing.clone()
        };
        CorrectionContext {
            spanning,
            dtp: packing.max_height().max(1),
            eta: plan.eta(),
            plan,
            bcast: BroadcastContext::new(g, &bcast_packing),
        }
    }
}

/// The `Õ(D_TP + f)` correction: per-tree `s`-sparse recovery + majority over
/// trees + one safe broadcast of the mismatch list.
///
/// `sent` is the ground-truth traffic of the protected round (known piecewise
/// to the senders), `received` is what the adversary delivered.  Returns the
/// corrected received traffic and a report.
///
/// Builds a fresh [`CorrectionContext`] per call; callers correcting over the
/// same packing repeatedly should build the context once and use
/// [`sparse_majority_correction_ctx`].
pub fn sparse_majority_correction(
    net: &mut Network,
    packing: &TreePacking,
    sent: &Traffic,
    received: &Traffic,
    sparsity: usize,
    seed: u64,
) -> (Traffic, CorrectionReport) {
    let ctx = CorrectionContext::new(net.graph(), packing);
    sparse_majority_correction_ctx(net, &ctx, packing, sent, received, sparsity, seed)
}

/// [`sparse_majority_correction`] through a precomputed [`CorrectionContext`].
pub fn sparse_majority_correction_ctx(
    net: &mut Network,
    ctx: &CorrectionContext,
    packing: &TreePacking,
    sent: &Traffic,
    received: &Traffic,
    sparsity: usize,
    seed: u64,
) -> (Traffic, CorrectionReport) {
    let g = net.graph().clone();
    let start = net.round();
    let dtp = ctx.dtp;
    let k = packing.len();
    let mismatches_before = mismatched_arc_count(&g, sent, received);

    // Shared sketch randomness for this correction (broadcast by the root in
    // the real protocol; public once chosen, which is fine because the
    // adversary already committed its round-1 corruptions).
    let randomness = SketchRandomness::from_seed(seed ^ net.round() as u64);
    let sparsity = sparsity.max(4);

    // Fault-free per-tree result: the global sketch decode (aggregating every
    // node's local stream).  All trees compute the same ground truth; what
    // differs is whether their RS-compiled instance survived.
    let truth = true_mismatch_elements(&g, sent, received);
    let mut global = SparseRecovery::new(randomness, sparsity);
    for (&el, &f) in &truth {
        global.update(el, f);
    }
    net.tracer_mut().span_open(obs::Phase::Decode);
    let true_decode: Option<Vec<(u64, i64)>> = global.decode();
    net.tracer_mut().span_close(obs::Phase::Decode);

    // Aggregation cost per tree: D_TP hops, each carrying the (multi-word) sketch.
    let report = RsScheduler.run_planned(net, packing, &ctx.plan, dtp + sparsity);
    let failed_trees = k - report.success_count();

    // Collect per-tree lists at the root: surviving trees report the true
    // decode, failed trees report a coordinated adversarial list.  Only two
    // distinct lists can ever be reported, so the majority is a two-candidate
    // count rather than a map keyed by (cloned) lists.  Tie-breaking matches
    // the original map-based fold exactly: identical candidates merge into one
    // unanimous entry, and an even split goes to the lexicographically larger
    // list.
    let mut fake_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA_FE);
    let fake_list: Vec<(u64, i64)> = (0..sparsity.min(4))
        .map(|_| {
            let arc = fake_rng.gen_range(0..g.arc_count().max(1)) as ArcId;
            (
                pack_element(
                    arc.min((1 << 16) - 1),
                    0,
                    fake_rng.gen::<u64>() & MAX_WORD_VALUE,
                ),
                1,
            )
        })
        .collect();
    let true_list: Vec<(u64, i64)> = true_decode.clone().unwrap_or_default();
    let mut true_votes = 0usize;
    let mut fake_votes = 0usize;
    for tr in &report.per_tree {
        if tr.ok && ctx.spanning[tr.tree] {
            true_votes += 1;
        } else {
            fake_votes += 1;
        }
    }
    let majority_list = if report.per_tree.is_empty() {
        Vec::new()
    } else if true_list == fake_list || true_votes > fake_votes {
        true_list
    } else if fake_votes > true_votes {
        fake_list
    } else {
        std::cmp::max(true_list, fake_list)
    };

    // Broadcast the correction list resiliently and apply it.  Weak packings may
    // contain non-spanning trees; those are useless for the broadcast, so the
    // broadcast runs over the spanning subset (Definition 7 guarantees 0.9k of
    // them), and transient scheduler failures are absorbed by a bounded retry.
    let mut corrections: BTreeMap<u64, i64> = BTreeMap::new();
    if !majority_list.is_empty() {
        let words: Vec<u64> = majority_list
            .iter()
            .flat_map(|&(el, f)| [el, f as u64])
            .collect();
        for attempt in 0..3 {
            let (per_node, bcast) =
                ecc_safe_broadcast_ctx(net, &ctx.bcast, &words, seed ^ 0xB0 ^ attempt);
            if std::env::var("MC_DEBUG").is_ok() {
                eprintln!(
                    "[bcast attempt {attempt}] words={} node0_some={} node0_eq={} unanimous={} maxfail={}",
                    words.len(),
                    per_node[0].is_some(),
                    per_node[0].as_deref() == Some(&words[..]),
                    bcast.unanimous,
                    bcast.max_failed_trees
                );
            }
            if let Some(decoded) = &per_node[0] {
                corrections.clear();
                for pair in decoded.chunks(2) {
                    if pair.len() == 2 {
                        corrections.insert(pair[0], pair[1] as i64);
                    }
                }
            }
            if bcast.unanimous {
                break;
            }
        }
    }
    if std::env::var("MC_DEBUG").is_ok() {
        eprintln!(
            "[correction] truth={} decode_some={} majority_len={} corrections={}",
            truth.len(),
            true_decode.is_some(),
            majority_list.len(),
            corrections.len()
        );
    }
    let corrected = apply_corrections(&g, received, &corrections);
    let mismatches_after = mismatched_arc_count(&g, sent, &corrected);
    (
        corrected,
        CorrectionReport {
            rounds: net.round() - start,
            mismatches_before,
            mismatches_after,
            failed_trees,
            decay: vec![mismatches_before, mismatches_after],
        },
    )
}

/// The `Õ(D_TP)` correction: `O(log f)` iterations of per-tree ℓ0-sampling with
/// support thresholds (Algorithm `ImprovedMobileByznatineSim`, Steps 2–3).
///
/// Returns the corrected traffic and a report whose `decay` field records the
/// number of mismatched arcs after every iteration (the `B_j` of Lemma 3.8).
///
/// Builds a fresh [`CorrectionContext`] per call; callers correcting over the
/// same packing repeatedly should build the context once and use
/// [`l0_threshold_correction_ctx`].
pub fn l0_threshold_correction(
    net: &mut Network,
    packing: &TreePacking,
    sent: &Traffic,
    received: &Traffic,
    f: usize,
    samplers_per_tree: usize,
    seed: u64,
) -> (Traffic, CorrectionReport) {
    let ctx = CorrectionContext::new(net.graph(), packing);
    l0_threshold_correction_ctx(
        net,
        &ctx,
        packing,
        sent,
        received,
        f,
        samplers_per_tree,
        seed,
    )
}

/// [`l0_threshold_correction`] through a precomputed [`CorrectionContext`].
#[allow(clippy::too_many_arguments)]
pub fn l0_threshold_correction_ctx(
    net: &mut Network,
    ctx: &CorrectionContext,
    packing: &TreePacking,
    sent: &Traffic,
    received: &Traffic,
    f: usize,
    samplers_per_tree: usize,
    seed: u64,
) -> (Traffic, CorrectionReport) {
    let g = net.graph().clone();
    let start = net.round();
    let dtp = ctx.dtp;
    let k = packing.len();
    let eta = ctx.eta;
    let t = samplers_per_tree.max(2);
    let mismatches_before = mismatched_arc_count(&g, sent, received);
    let iterations = ((f.max(1) as f64).log2().ceil() as usize + 2).max(2);

    let mut estimate = received.clone();
    let mut decay = vec![mismatches_before];
    let mut total_failed = 0usize;
    let mut fake_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x10_77);

    for j in 1..=iterations {
        let truth = true_mismatch_elements(&g, sent, &estimate);
        if truth.is_empty() {
            decay.push(0);
            continue;
        }
        // Per-tree fault-free result: t independent ℓ0 samples of the current
        // mismatch multiset.
        let randomness =
            SketchRandomness::from_seed(seed ^ ((j as u64) << 32) ^ net.round() as u64);
        let mut bank = L0SamplerBank::new(randomness, t);
        for (&el, &fq) in &truth {
            bank.update(el, fq);
        }
        net.tracer_mut().span_open(obs::Phase::Decode);
        let true_samples = bank.query_all();
        net.tracer_mut().span_close(obs::Phase::Decode);

        let sched = RsScheduler.run_planned(net, packing, &ctx.plan, dtp + 2);
        let failed = k - sched.success_count();
        total_failed += failed;

        // Support counting across trees: surviving trees contribute honest
        // samples (re-drawn per tree via derived randomness), failed trees all
        // vote for the same fabricated mismatch (the worst case for thresholds).
        let fake_element = pack_element(
            fake_rng
                .gen_range(0..g.arc_count().max(1))
                .min((1 << 16) - 1),
            0,
            fake_rng.gen::<u64>() & MAX_WORD_VALUE,
        );
        let mut support: BTreeMap<u64, usize> = BTreeMap::new();
        for tr in &sched.per_tree {
            if tr.ok && ctx.spanning[tr.tree] {
                let tree_rand = SketchRandomness::from_seed(
                    randomness.seed() ^ (0x9E37 + tr.tree as u64).wrapping_mul(0x2545F4914F6CDD1D),
                );
                let mut tree_bank = L0SamplerBank::new(tree_rand, t);
                for (&el, &fq) in &truth {
                    tree_bank.update(el, fq);
                }
                for s in tree_bank.query_all() {
                    *support.entry(s).or_insert(0) += 1;
                }
            } else {
                *support.entry(fake_element).or_insert(0) += t;
            }
        }
        let _ = &true_samples;

        // Threshold Δ_j: fabricated mismatches can muster at most
        // `t · failure_bound` support; honest mismatches gather support from the
        // Ω(k) surviving trees once few mismatches remain.  We use the paper's
        // shape (growing geometrically in j) calibrated to the simulation scale.
        let failure_bound = RsScheduler::failure_bound(f, eta);
        let delta_j = (t * failure_bound + 1).max((t * k) >> (iterations + 2 - j).min(60));
        let dominating: BTreeMap<u64, i64> = support
            .into_iter()
            .filter(|&(_, s)| s >= delta_j)
            .map(|(el, _)| (el, *truth.get(&el).unwrap_or(&1)))
            .collect();

        // Broadcast the dominating mismatches and apply them.
        if !dominating.is_empty() {
            let words: Vec<u64> = dominating
                .iter()
                .flat_map(|(&el, &fq)| [el, fq as u64])
                .collect();
            for attempt in 0..2 {
                let (per_node, bcast) = ecc_safe_broadcast_ctx(
                    net,
                    &ctx.bcast,
                    &words,
                    seed ^ (j as u64) ^ (attempt << 8),
                );
                if let Some(decoded) = &per_node[0] {
                    let mut corrections = BTreeMap::new();
                    for pair in decoded.chunks(2) {
                        if pair.len() == 2 {
                            corrections.insert(pair[0], pair[1] as i64);
                        }
                    }
                    estimate = apply_corrections(&g, &estimate, &corrections);
                }
                if bcast.unanimous {
                    break;
                }
            }
        }
        decay.push(mismatched_arc_count(&g, sent, &estimate));
    }

    let mismatches_after = *decay.last().unwrap();
    (
        estimate,
        CorrectionReport {
            rounds: net.round() - start,
            mismatches_before,
            mismatches_after,
            failed_trees: total_failed,
            decay,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
    use netgraph::generators;
    use netgraph::tree_packing::star_packing;

    #[test]
    fn element_packing_roundtrip() {
        for (arc, idx, val) in [(0, 0, 0), (5, 3, 12345), (65535, 255, MAX_WORD_VALUE)] {
            let el = pack_element(arc, idx, val);
            assert_eq!(unpack_element(el), (arc, idx, val));
        }
    }

    #[test]
    #[should_panic]
    fn oversized_word_rejected() {
        let _ = pack_element(0, 0, 1 << 40);
    }

    fn traffic_with(g: &Graph, entries: &[(usize, usize, Vec<u64>)]) -> Traffic {
        let mut t = Traffic::new(g);
        for (u, v, p) in entries {
            t.send(g, *u, *v, p.clone());
        }
        t
    }

    #[test]
    fn true_mismatches_and_application() {
        let g = generators::complete(4);
        let sent = traffic_with(&g, &[(0, 1, vec![10, 20]), (2, 3, vec![7])]);
        // Received: (0,1) corrupted in word 1; (2,3) dropped; (1,2) fabricated.
        let received = traffic_with(&g, &[(0, 1, vec![10, 99]), (1, 2, vec![5])]);
        let truth = true_mismatch_elements(&g, &sent, &received);
        assert!(!truth.is_empty());
        assert_eq!(mismatched_arc_count(&g, &sent, &received), 3);
        let corrected = apply_corrections(&g, &received, &truth);
        assert!(
            corrected.agrees_with(&sent),
            "full truth must fully correct"
        );
        assert_eq!(mismatched_arc_count(&g, &sent, &corrected), 0);
    }

    #[test]
    fn sparse_correction_fixes_mobile_corruption() {
        let g = generators::complete(16);
        let packing = star_packing(&g, 0);
        let f = 2;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, 3)),
            CorruptionBudget::Mobile { f },
            3,
        );
        // Ground truth: every node sends its id+1 to every neighbour.
        let mut sent = Traffic::new(&g);
        for v in g.nodes() {
            for &(u, _) in g.neighbors(v) {
                sent.send(&g, v, u, vec![v as u64 + 1]);
            }
        }
        let received = net.exchange(sent.clone());
        let (corrected, report) =
            sparse_majority_correction(&mut net, &packing, &sent, &received, 8 * f, 11);
        assert_eq!(
            report.mismatches_after, 0,
            "correction left mismatches: before={} after={}",
            report.mismatches_before, report.mismatches_after
        );
        assert!(corrected.agrees_with(&sent));
    }

    #[test]
    fn sparse_correction_noop_when_clean() {
        let g = generators::complete(8);
        let packing = star_packing(&g, 0);
        let mut net = Network::fault_free(g.clone());
        let sent = traffic_with(&g, &[(0, 1, vec![5]), (3, 2, vec![9, 9])]);
        let received = sent.clone();
        let (corrected, report) =
            sparse_majority_correction(&mut net, &packing, &sent, &received, 8, 1);
        assert_eq!(report.mismatches_before, 0);
        assert_eq!(report.mismatches_after, 0);
        assert!(corrected.agrees_with(&sent));
    }

    #[test]
    fn l0_threshold_correction_decays_mismatches() {
        let g = generators::complete(20);
        let packing = star_packing(&g, 0);
        let f = 1;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, 5)),
            CorruptionBudget::Mobile { f },
            5,
        );
        let mut sent = Traffic::new(&g);
        for v in g.nodes() {
            for &(u, _) in g.neighbors(v) {
                sent.send(&g, v, u, vec![(v as u64) << 8 | u as u64]);
            }
        }
        let received = net.exchange(sent.clone());
        let (_, report) = l0_threshold_correction(&mut net, &packing, &sent, &received, f, 8, 17);
        assert!(
            report.mismatches_after <= report.mismatches_before,
            "decay: {:?}",
            report.decay
        );
        assert_eq!(*report.decay.first().unwrap(), report.mismatches_before);
    }
}
