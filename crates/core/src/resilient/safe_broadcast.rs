//! `ECCSafeBroadcast` (Lemma 3.6): byzantine-resilient broadcast of a root
//! message over a weak tree packing.
//!
//! The root Reed–Solomon-encodes its message into `k` symbols, ships symbol `j`
//! down tree `j` (all `k` RS-compiled tree broadcasts run in parallel via the
//! Lemma 3.3 scheduler), and every node decodes the nearest codeword from the
//! symbols it received.  As long as the number of failed tree instances stays
//! below the code's error capacity — which the scheduler guarantees for
//! `k = Ω(η·f)` — every node recovers the message exactly.

use coding::field::Field;
use coding::{Gf2_16, ReedSolomon};
use congest_sim::network::Network;
use interactive_coding::{RsScheduler, SchedulePlan};
use netgraph::tree_packing::TreePacking;
use netgraph::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Report of one safe broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafeBroadcastReport {
    /// Network rounds consumed.
    pub rounds: usize,
    /// Number of sequential Reed–Solomon chunks.
    pub chunks: usize,
    /// Tree instances that failed in the worst chunk.
    pub max_failed_trees: usize,
    /// Whether every node decoded the original message.
    pub unanimous: bool,
}

/// Number of 16-bit Reed–Solomon symbols per 64-bit message word.
const SYMBOLS_PER_WORD: usize = 4;

/// Data symbols per Reed–Solomon chunk over a `k`-tree packing (relative
/// distance ≥ 3/4 by construction).
pub fn rs_data_symbols(k: usize) -> usize {
    (k / 4).max(1)
}

/// How many failed (or non-spanning) tree instances the safe broadcast over a
/// `k`-tree packing tolerates per chunk: the error capacity
/// `⌊(k − ℓ)/2⌋` of the `RS(ℓ, k)` code with `ℓ =` [`rs_data_symbols`].
///
/// This is the number that turns packing quality into a correction
/// *prediction*: a heaviest-edge mobile adversary can fail every tree
/// scheduled over one edge, so correction survives focused attacks exactly
/// when the packing's maximum edge load stays at or below this capacity.
pub fn rs_error_capacity(k: usize) -> usize {
    k.saturating_sub(rs_data_symbols(k)) / 2
}

/// Precomputed, topology-only state for [`ecc_safe_broadcast`] over a fixed
/// `(graph, packing)` pair: which trees are usable (spanning with the common
/// root), the Lemma 3.3 [`SchedulePlan`], and the `RS(ℓ, k)` code with its
/// precomputed encode/decode matrices.
///
/// The correction layer broadcasts once per retry attempt per simulated round,
/// so building this per call repeats `O(k·n)` spanning walks and a Vandermonde
/// inversion every time.  Build it once per packing instead — in
/// `Compiler::prepare`, where the campaign artifact cache shares it across
/// cells.  The context is pure precomputation: broadcasting through it is
/// byte-identical to the plain entry point.
#[derive(Debug, Clone)]
pub struct BroadcastContext {
    packing: TreePacking,
    /// Per tree: spanning *and* rooted at the packing's common root.
    usable: Vec<bool>,
    plan: SchedulePlan,
    rs: ReedSolomon<Gf2_16>,
    dtp: usize,
    ell: usize,
}

impl BroadcastContext {
    /// Precompute the broadcast state for `packing` over `g`.
    ///
    /// # Panics
    ///
    /// Panics if the packing is empty.
    pub fn new(g: &Graph, packing: &TreePacking) -> Self {
        assert!(!packing.is_empty(), "tree packing must be non-empty");
        let k = packing.len();
        let ell = rs_data_symbols(k);
        let root = packing.trees[0].root;
        let usable = packing
            .trees
            .iter()
            .map(|t| t.is_spanning(g) && t.root == root)
            .collect();
        BroadcastContext {
            usable,
            plan: SchedulePlan::new(g, packing),
            rs: ReedSolomon::new(ell, k).expect("ℓ ≤ k by construction"),
            dtp: packing.max_height().max(1),
            ell,
            packing: packing.clone(),
        }
    }

    /// The packing this context was built for.
    pub fn packing(&self) -> &TreePacking {
        &self.packing
    }
}

/// Broadcast `message` from the packing's common root to all nodes, resiliently
/// against the byzantine adversary configured on `net`.
///
/// Returns each node's decoded message (`None` only if decoding failed, which
/// the Lemma 3.6 parameter regime rules out) and a report.
///
/// # Panics
///
/// Panics if the packing is empty or the message is empty.
pub fn ecc_safe_broadcast(
    net: &mut Network,
    packing: &TreePacking,
    message: &[u64],
    seed: u64,
) -> (Vec<Option<Vec<u64>>>, SafeBroadcastReport) {
    let ctx = BroadcastContext::new(net.graph(), packing);
    ecc_safe_broadcast_ctx(net, &ctx, message, seed)
}

/// [`ecc_safe_broadcast`] through a precomputed [`BroadcastContext`].
///
/// Beyond reusing the context's plan, flags, and code, this entry point decodes
/// each chunk **once** instead of once per node: the received word is built
/// from the family run report and the garbage stream, neither of which depends
/// on the receiving node, so all `n` decoders see identical input by
/// construction.  (That is the Lemma 3.6 worst case — the adversary coordinates
/// the garbage across nodes — and has been this module's semantics from the
/// start; the per-node decode was `n−1` redundant Berlekamp–Welch solves.)
///
/// # Panics
///
/// Panics if the message is empty.
pub fn ecc_safe_broadcast_ctx(
    net: &mut Network,
    ctx: &BroadcastContext,
    message: &[u64],
    seed: u64,
) -> (Vec<Option<Vec<u64>>>, SafeBroadcastReport) {
    assert!(!message.is_empty(), "message must be non-empty");
    let n = net.graph().node_count();
    let k = ctx.packing.len();
    let start = net.round();

    // Chunking: each chunk carries at most ℓ = max(1, k/4) symbols so the code
    // has relative distance ≥ 3/4 and error capacity ≥ 3k/8 — enough slack for
    // the Lemma 3.3 failure bound plus non-spanning trees of a weak packing.
    let ell = ctx.ell;
    let symbols: Vec<Gf2_16> = message
        .iter()
        .flat_map(|w| (0..SYMBOLS_PER_WORD).map(move |i| Gf2_16::from_u64(w >> (16 * i))))
        .collect();
    let chunks: Vec<&[Gf2_16]> = symbols.chunks(ell).collect();
    let mut fake_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xECC0_FFEE);

    // The decoded symbol stream (identical at every node, see above).
    let mut decoded: Vec<Gf2_16> = Vec::with_capacity(symbols.len());
    let mut decode_ok = true;
    let mut max_failed = 0usize;
    let mut received: Vec<Gf2_16> = Vec::with_capacity(k);

    for chunk in &chunks {
        let mut padded = chunk.to_vec();
        padded.resize(ell, Gf2_16::ZERO);
        let codeword = ctx.rs.encode(&padded).expect("length matches");

        // One RS-compiled DTP-hop broadcast per tree, scheduled in parallel.  The
        // per-instance round count (and with it the Theorem 3.2 corruption
        // threshold) is padded so that an adversary sweeping over consecutive
        // edge ids cannot fail a tree within a single scheduling window.
        let report = RsScheduler.run_planned(net, &ctx.packing, &ctx.plan, ctx.dtp + 16);
        max_failed = max_failed.max(k - report.success_count());

        // Fault-free semantics per instance: a successful tree delivers its
        // symbol to every node; a failed tree delivers adversarial garbage
        // (coordinated across nodes — the worst case for the decoder).
        let garbage: Vec<Gf2_16> = (0..k).map(|_| Gf2_16::from_u64(fake_rng.gen())).collect();
        received.clear();
        for (j, tree_report) in report.per_tree.iter().enumerate() {
            if tree_report.ok && ctx.usable[j] {
                received.push(codeword[j]);
            } else {
                received.push(garbage[j]);
            }
        }
        match ctx.rs.decode(&received) {
            Ok(msg) => decoded.extend_from_slice(&msg[..chunk.len().min(ell)]),
            Err(_) => decode_ok = false,
        }
    }

    // Reassemble words from symbols; every node holds the same stream.
    let node_output: Option<Vec<u64>> = if !decode_ok || decoded.len() < symbols.len() {
        None
    } else {
        Some(
            decoded[..symbols.len()]
                .chunks(SYMBOLS_PER_WORD)
                .map(|group| {
                    group
                        .iter()
                        .enumerate()
                        .fold(0u64, |acc, (i, s)| acc | (s.to_u64() << (16 * i)))
                })
                .collect(),
        )
    };
    let unanimous = node_output.as_deref() == Some(message);
    let outputs: Vec<Option<Vec<u64>>> = vec![node_output; n];
    let report = SafeBroadcastReport {
        rounds: net.round() - start,
        chunks: chunks.len(),
        max_failed_trees: max_failed,
        unanimous,
    };
    (outputs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, GreedyHeaviest, RandomMobile};
    use netgraph::generators;
    use netgraph::tree_packing::star_packing;

    fn byz_net(g: netgraph::Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, seed)),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn fault_free_safe_broadcast() {
        let g = generators::complete(10);
        let packing = star_packing(&g, 0);
        let mut net = Network::fault_free(g);
        let msg = vec![0xDEAD_BEEF_u64, 77, u64::MAX];
        let (out, report) = ecc_safe_broadcast(&mut net, &packing, &msg, 1);
        assert!(report.unanimous);
        assert!(out.iter().all(|o| o.as_deref() == Some(&msg[..])));
        assert_eq!(report.max_failed_trees, 0);
    }

    #[test]
    fn survives_mobile_adversary_on_clique() {
        let g = generators::complete(16);
        let packing = star_packing(&g, 0);
        let mut net = byz_net(g, 2, 9);
        let msg = vec![123456789u64, 42];
        let (_, report) = ecc_safe_broadcast(&mut net, &packing, &msg, 3);
        assert!(
            report.unanimous,
            "broadcast failed: {} trees failed (capacity {})",
            report.max_failed_trees,
            packing.len() / 3
        );
    }

    #[test]
    fn survives_traffic_targeting_adversary() {
        let g = generators::complete(16);
        let packing = star_packing(&g, 0);
        let f = 2;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(GreedyHeaviest::new(f)),
            CorruptionBudget::Mobile { f },
            5,
        );
        let msg = vec![0xABCDu64];
        let (_, report) = ecc_safe_broadcast(&mut net, &packing, &msg, 7);
        assert!(report.unanimous);
    }

    #[test]
    fn long_messages_are_chunked() {
        let g = generators::complete(12);
        let packing = star_packing(&g, 0);
        let mut net = Network::fault_free(g);
        let msg: Vec<u64> = (0..20).map(|i| i * 1_000_003).collect();
        let (out, report) = ecc_safe_broadcast(&mut net, &packing, &msg, 1);
        assert!(report.chunks > 1);
        assert!(report.unanimous);
        assert_eq!(out[5].as_deref(), Some(&msg[..]));
    }

    #[test]
    #[should_panic]
    fn empty_message_rejected() {
        let g = generators::complete(6);
        let packing = star_packing(&g, 0);
        let mut net = Network::fault_free(g);
        let _ = ecc_safe_broadcast(&mut net, &packing, &[], 1);
    }
}
