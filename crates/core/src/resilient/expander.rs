//! The expander compiler (Theorem 1.7, Lemma 3.10): computing a weak tree
//! packing *while under attack*, then compiling through it.
//!
//! Unlike the general-graph compiler, the expander compiler needs no trusted
//! preprocessing: every edge picks a random colour in `[k]`, every colour class
//! of a good expander is itself a (slightly worse) expander, and a max-id BFS
//! inside each colour class builds a shallow spanning tree.  A mobile adversary
//! controlling `f` edges per round can spoil at most `f·(rounds)` colours, so
//! with `k = Θ(f·log n/φ)` colours at least `0.9k` trees survive — a weak
//! packing (Definition 7) over which the Theorem 3.5 compiler runs.

use crate::resilient::tree_compiler::{ByzantineCompilerReport, MobileByzantineCompiler};
use congest_sim::network::Network;
use congest_sim::traffic::{Output, Traffic};
use congest_sim::CongestAlgorithm;
use netgraph::spanning::RootedTree;
use netgraph::tree_packing::TreePacking;
use netgraph::{Graph, NodeId};
use rand::Rng;

/// Report of the packing-construction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeakPackingReport {
    /// Number of colour classes / trees built.
    pub k: usize,
    /// Number of trees that are spanning trees rooted at the max-id node with
    /// height at most the BFS budget.
    pub good_trees: usize,
    /// Network rounds spent building the packing.
    pub rounds: usize,
    /// Height budget used for the BFS phase.
    pub depth_budget: usize,
}

/// Build a weak tree packing under the network's (byzantine) adversary by the
/// Lemma 3.10 edge-colouring + per-colour max-id BFS procedure.
///
/// `k` is the number of colours, `bfs_rounds` the number of propagation rounds
/// (use `Θ(log n / φ)`).  The packing is rooted at the maximum-id node `n - 1`.
pub fn weak_packing_under_attack(
    net: &mut Network,
    k: usize,
    bfs_rounds: usize,
    seed: u64,
) -> (TreePacking, WeakPackingReport) {
    let g = net.graph().clone();
    let n = g.node_count();
    let root: NodeId = n - 1;
    let start = net.round();
    net.tracer_mut().span_open(obs::Phase::Packing);
    let mut node_rngs: Vec<_> = g.nodes().map(|v| Network::node_rng(seed, v)).collect();

    // Round 1: the higher-id endpoint of every edge draws a colour and sends it
    // to the lower-id endpoint.  Each endpoint keeps its own belief of the
    // colour; a corrupted colour message simply spoils that colour class.
    let mut colour_belief: Vec<[Option<usize>; 2]> = vec![[None, None]; g.edge_count()];
    let mut traffic = Traffic::new(&g);
    for e in 0..g.edge_count() {
        let edge = g.edge(e);
        let (hi, lo) = (edge.v.max(edge.u), edge.v.min(edge.u));
        let colour = node_rngs[hi].gen_range(0..k);
        colour_belief[e][endpoint_slot(&g, e, hi)] = Some(colour);
        traffic.send(&g, hi, lo, vec![colour as u64]);
    }
    let delivered = net.exchange(traffic);
    for e in 0..g.edge_count() {
        let edge = g.edge(e);
        let (hi, lo) = (edge.v.max(edge.u), edge.v.min(edge.u));
        if let Some(msg) = delivered.get(&g, hi, lo) {
            let c = msg[0] as usize;
            if c < k {
                colour_belief[e][endpoint_slot(&g, e, lo)] = Some(c);
            }
        }
    }

    // BFS phase: every node tracks, per colour, the largest id it has heard and
    // the neighbour it heard it from.  One message per edge per round (an edge
    // carries its own colour's wave).
    let mut best_id: Vec<Vec<u64>> = (0..n).map(|v| vec![v as u64; k]).collect();
    let mut parent: Vec<Vec<Option<NodeId>>> = vec![vec![None; k]; n];
    let mut traffic = Traffic::new(&g);
    for _ in 0..bfs_rounds {
        traffic.begin_round(&g);
        for v in g.nodes() {
            for &(u, e) in g.neighbors(v) {
                if let Some(c) = colour_belief[e][endpoint_slot(&g, e, v)] {
                    traffic.send(&g, v, u, [c as u64, best_id[v][c]]);
                }
            }
        }
        net.exchange_in_place(&mut traffic);
        for v in g.nodes() {
            for (from, payload) in traffic.inbox(&g, v) {
                let e = g.edge_between(from, v).unwrap();
                let my_colour = colour_belief[e][endpoint_slot(&g, e, v)];
                if payload.len() < 2 {
                    continue;
                }
                let (c, claimed) = (payload[0] as usize, payload[1]);
                // Only accept the wave if both endpoints agree on the colour and
                // the claimed id is a plausible node id.
                if my_colour == Some(c) && c < k && claimed < n as u64 && claimed > best_id[v][c] {
                    best_id[v][c] = claimed;
                    parent[v][c] = Some(from);
                }
            }
        }
    }

    // Assemble one tree per colour from the parent pointers.
    let trees: Vec<RootedTree> = (0..k)
        .map(|c| {
            let parents: Vec<Option<NodeId>> = (0..n)
                .map(|v| if v == root { None } else { parent[v][c] })
                .collect();
            RootedTree::from_parents(&g, root, parents)
        })
        .collect();
    let packing = TreePacking::new(trees);
    net.tracer_mut().span_close(obs::Phase::Packing);
    let good = packing.count_good(&g, root, bfs_rounds);
    let report = WeakPackingReport {
        k,
        good_trees: good,
        rounds: net.round() - start,
        depth_budget: bfs_rounds,
    };
    (packing, report)
}

fn endpoint_slot(g: &Graph, e: usize, node: NodeId) -> usize {
    if g.edge(e).u == node {
        0
    } else {
        1
    }
}

/// Report of a full expander-compiler run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpanderCompilerReport {
    /// The packing-construction phase.
    pub packing: WeakPackingReport,
    /// The compilation phase.
    pub compilation: ByzantineCompilerReport,
}

/// The Theorem 1.7 compiler: build the weak packing under attack, then run the
/// Theorem 3.5 compiler over it.  `k` and `bfs_rounds` should be chosen as
/// `k = Θ(f log n / φ)` and `bfs_rounds = Θ(log n / φ)`.
pub fn run_expander_compiled<A: CongestAlgorithm + ?Sized>(
    alg: &mut A,
    net: &mut Network,
    f: usize,
    k: usize,
    bfs_rounds: usize,
    seed: u64,
) -> (Vec<Output>, ExpanderCompilerReport) {
    let (packing, packing_report) = weak_packing_under_attack(net, k, bfs_rounds, seed);
    let compiler = MobileByzantineCompiler::new(packing, f, seed ^ 0xE0);
    let (out, compilation) = compiler.run(alg, net);
    (
        out,
        ExpanderCompilerReport {
            packing: packing_report,
            compilation,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{FloodBroadcast, LeaderElection};
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
    use congest_sim::run_fault_free;
    use netgraph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn expander(n: usize, d: usize, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::random_regular(&mut rng, n, d)
    }

    fn byz_net(g: Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, seed)),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn fault_free_weak_packing_is_mostly_good() {
        // Per-colour average degree d/k must stay well above the connectivity
        // threshold of a random subgraph (~ln n) for every class to span.
        let g = expander(40, 16, 1);
        let mut net = Network::fault_free(g.clone());
        let (packing, report) = weak_packing_under_attack(&mut net, 2, 10, 3);
        assert_eq!(packing.len(), 2);
        assert!(
            report.good_trees * 10 >= 9 * report.k,
            "only {}/{} trees good",
            report.good_trees,
            report.k
        );
        // Load is at most 2 because every edge belongs to at most one colour
        // (one belief per endpoint).
        assert!(packing.load(&g) <= 2);
    }

    #[test]
    fn weak_packing_under_mobile_attack_keeps_a_majority_good() {
        // Colour classes must stay dense enough to span (m/k ≳ 2n), so the graph
        // is dense and the colour count moderate.
        let g = expander(56, 42, 2);
        let f = 1;
        let mut net = byz_net(g.clone(), f, 5);
        let (packing, report) = weak_packing_under_attack(&mut net, 5, 8, 7);
        assert!(
            report.good_trees * 2 > packing.len(),
            "majority of colour trees must survive: {}/{}",
            report.good_trees,
            packing.len()
        );
    }

    #[test]
    fn expander_compiler_end_to_end() {
        let g = expander(48, 24, 3);
        let f = 1;
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let mut net = byz_net(g.clone(), f, 9);
        let (out, report) =
            run_expander_compiled(&mut LeaderElection::new(g.clone()), &mut net, f, 6, 6, 11);
        assert_eq!(out, expected);
        assert!(report.compilation.fully_corrected);
    }

    #[test]
    fn expander_compiler_broadcast_payload() {
        let g = expander(48, 24, 4);
        let f = 1;
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 31337));
        let mut net = byz_net(g.clone(), f, 4);
        let (out, _) = run_expander_compiled(
            &mut FloodBroadcast::new(g.clone(), 0, 31337),
            &mut net,
            f,
            6,
            6,
            13,
        );
        assert_eq!(out, expected);
    }
}
