//! The `f`-mobile-resilient compiler over a weak tree packing (Theorem 3.5) and
//! its CONGESTED CLIQUE instantiation (Theorem 1.6).
//!
//! Every round of the protected algorithm `A` is simulated by a phase:
//!
//! 1. the round's messages are exchanged once (the adversary corrupts at most
//!    `f` edges — at most `2f` ordered mismatches),
//! 2. the message-correction procedure of
//!    [`crate::resilient::correction`] runs over the packing (per-tree
//!    mergeable sketches, RS-compiled and scheduled by Lemma 3.3, followed by
//!    an `ECCSafeBroadcast` of the detected corrections),
//! 3. the corrected inbox is delivered to `A`.
//!
//! The round overhead of each phase is `Õ(D_TP)` for the ℓ0 variant and
//! `Õ(D_TP + f)` for the sparse-recovery variant, matching the paper's two
//! regimes; both are selectable via [`CorrectionVariant`].

use crate::resilient::correction::{
    l0_threshold_correction_ctx, sparse_majority_correction_ctx, CorrectionContext,
    CorrectionReport,
};
use congest_sim::network::Network;
use congest_sim::traffic::Output;
use congest_sim::CongestAlgorithm;
use netgraph::tree_packing::{star_packing, PackingQuality, TreePacking};
use netgraph::Graph;

/// Which message-correction procedure the compiler uses per simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionVariant {
    /// `s`-sparse recovery + majority across trees (`Õ(D_TP + f)` overhead).
    SparseMajority,
    /// Iterated ℓ0-sampling with support thresholds (`Õ(D_TP)` overhead).
    L0Threshold,
}

/// Per-run report of the byzantine compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzantineCompilerReport {
    /// Rounds of the protected algorithm.
    pub payload_rounds: usize,
    /// Total network rounds consumed by the compiled execution.
    pub network_rounds: usize,
    /// Per simulated round: mismatches before and after correction.
    pub per_round: Vec<CorrectionReport>,
    /// Whether every simulated round ended with zero residual mismatches.
    pub fully_corrected: bool,
    /// Quality of the packing the run was compiled over (good trees, max
    /// edge load vs the graph's load floor, minimum-cut usage) — the
    /// structural quantities that predict whether correction can hold.
    pub packing_quality: PackingQuality,
}

impl ByzantineCompilerReport {
    /// Round overhead factor: network rounds per payload round.
    pub fn overhead(&self) -> f64 {
        self.network_rounds as f64 / self.payload_rounds.max(1) as f64
    }
}

/// The Theorem 3.5 compiler: wraps any [`CongestAlgorithm`] and simulates it
/// resiliently over a weak `(k, D_TP, η)` tree packing.
#[derive(Debug, Clone)]
pub struct MobileByzantineCompiler {
    packing: TreePacking,
    /// The mobile fault bound `f` the run should withstand (drives sketch sparsity
    /// and thresholds).
    pub f: usize,
    /// Correction procedure.
    pub variant: CorrectionVariant,
    /// Seed for the compiler's randomness (sketch seeds, share padding).
    pub seed: u64,
    /// Precomputed per-`(graph, packing)` state, built by
    /// [`MobileByzantineCompiler::contextualize`] (ideally from
    /// `Compiler::prepare`, so the campaign artifact cache shares it across
    /// cells).  `run` falls back to building it on the fly.
    prepared: Option<PreparedPacking>,
}

/// Everything about a `(graph, packing)` pair the compiler needs per run but
/// that does not depend on the adversary, the seed or the payload: the
/// correction context and the packing-quality measurement (which runs a
/// min-cut computation).
#[derive(Debug, Clone)]
struct PreparedPacking {
    ctx: CorrectionContext,
    quality: PackingQuality,
}

impl PreparedPacking {
    fn new(g: &Graph, packing: &TreePacking) -> Self {
        // Measured at the packing's own height: `good_trees` counts the
        // spanning, root-anchored trees the correction majority can use.
        let quality = PackingQuality::measure(
            g,
            packing,
            packing.trees.first().map_or(0, |t| t.root),
            packing.max_height(),
        );
        PreparedPacking {
            ctx: CorrectionContext::new(g, packing),
            quality,
        }
    }
}

impl MobileByzantineCompiler {
    /// Create a compiler from an explicit tree packing.
    pub fn new(packing: TreePacking, f: usize, seed: u64) -> Self {
        MobileByzantineCompiler {
            packing,
            f,
            variant: CorrectionVariant::SparseMajority,
            seed,
            prepared: None,
        }
    }

    /// Select the correction variant (default: sparse majority).
    pub fn with_variant(mut self, variant: CorrectionVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Precompute the per-graph correction state (schedule plan, spanning
    /// flags, broadcast code, packing quality) for running on `g`.
    ///
    /// This is the expensive, adversary-independent half of a compiled run;
    /// adapters call it from `Compiler::prepare` so the artifact cache pays it
    /// once per `(graph, compiler)` pair instead of once per cell.  `g` must
    /// be the graph the compiler will run on — `run` recomputes the state on
    /// the fly when no context was prepared, with identical results.
    pub fn contextualize(mut self, g: &Graph) -> Self {
        self.prepared = Some(PreparedPacking::new(g, &self.packing));
        self
    }

    /// The packing used by the compiler.
    pub fn packing(&self) -> &TreePacking {
        &self.packing
    }

    /// Run the compiled algorithm on the network (whose adversary should be
    /// byzantine).  Returns the payload outputs and a report.
    pub fn run<A: CongestAlgorithm + ?Sized>(
        &self,
        alg: &mut A,
        net: &mut Network,
    ) -> (Vec<Output>, ByzantineCompilerReport) {
        let start = net.round();
        let r = alg.rounds();
        let local;
        let prepared = match &self.prepared {
            Some(p) => p,
            None => {
                local = PreparedPacking::new(net.graph(), &self.packing);
                &local
            }
        };
        let packing_quality = prepared.quality;
        let mut per_round = Vec::with_capacity(r);
        // Round buffers, reused across all simulated rounds.
        let mut sent = congest_sim::traffic::Traffic::new(net.graph());
        let mut received = congest_sim::traffic::Traffic::new(net.graph());
        for round in 0..r {
            alg.send_into(round, &mut sent);
            received.clone_from(&sent);
            net.exchange_in_place(&mut received);
            // The sparse-recovery sparsity must cover every word of every message
            // the adversary could have touched this round: O(f) messages of up to
            // `max_words` words each (plus their length records).
            let sparsity = 8 * self.f.max(1) * (sent.max_words().max(1) + 1);
            net.tracer_mut().span_open(obs::Phase::Correction);
            let (corrected, report) = match self.variant {
                CorrectionVariant::SparseMajority => sparse_majority_correction_ctx(
                    net,
                    &prepared.ctx,
                    &self.packing,
                    &sent,
                    &received,
                    sparsity,
                    self.seed ^ ((round as u64) << 20),
                ),
                CorrectionVariant::L0Threshold => l0_threshold_correction_ctx(
                    net,
                    &prepared.ctx,
                    &self.packing,
                    &sent,
                    &received,
                    self.f,
                    8,
                    self.seed ^ ((round as u64) << 20),
                ),
            };
            net.tracer_mut().span_close(obs::Phase::Correction);
            alg.receive(round, &corrected);
            per_round.push(report);
        }
        let fully_corrected = per_round.iter().all(|r| r.mismatches_after == 0);
        (
            alg.outputs(),
            ByzantineCompilerReport {
                payload_rounds: r,
                network_rounds: net.round() - start,
                per_round,
                fully_corrected,
                packing_quality,
            },
        )
    }
}

/// The CONGESTED CLIQUE compiler (Theorem 1.6): the complete graph trivially
/// carries the `(n, 2, 2)` star packing, so any clique algorithm can be
/// protected against `Θ(n)` mobile faults with polylogarithmic overhead.
#[derive(Debug, Clone)]
pub struct CliqueCompiler {
    inner: MobileByzantineCompiler,
}

impl CliqueCompiler {
    /// Build the compiler for the complete graph `g` (rooted at node 0).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a complete graph.
    pub fn new(g: &Graph, f: usize, seed: u64) -> Self {
        let packing = star_packing(g, 0);
        CliqueCompiler {
            // The clique compiler always knows its graph up front, so the
            // correction context is prepared here — `prepare` paths hand the
            // whole compiler (context included) to the artifact cache.
            inner: MobileByzantineCompiler::new(packing, f, seed).contextualize(g),
        }
    }

    /// Select the correction variant (default: sparse majority).
    pub fn with_variant(mut self, variant: CorrectionVariant) -> Self {
        self.inner = self.inner.with_variant(variant);
        self
    }

    /// The largest `f` for which the clique compiler's majority argument is
    /// guaranteed at clique size `n` with the crate's scheduler constants:
    /// the star packing has `k = n`, `η = 2`, and a majority of instances must
    /// survive `t_RS·c_RS·f·η` failures, i.e. `f < n / (2·t_RS·c_RS·η)`.
    pub fn max_tolerable_f(n: usize) -> usize {
        let denom = 2 * interactive_coding::T_RS * interactive_coding::C_RS * 2;
        (n.saturating_sub(1)) / denom
    }

    /// Run the compiled clique algorithm.
    pub fn run<A: CongestAlgorithm + ?Sized>(
        &self,
        alg: &mut A,
        net: &mut Network,
    ) -> (Vec<Output>, ByzantineCompilerReport) {
        self.inner.run(alg, net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{FloodBroadcast, LeaderElection, TokenDissemination};
    use congest_sim::adversary::{
        AdversaryRole, CorruptionBudget, CorruptionMode, GreedyHeaviest, RandomMobile,
    };
    use congest_sim::{run_fault_free, run_on_network};
    use netgraph::generators;
    use netgraph::tree_packing::greedy_low_depth_packing;

    fn byz_net(g: Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, seed).with_mode(CorruptionMode::ReplaceRandom)),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn clique_compiler_protects_broadcast() {
        let g = generators::complete(16);
        let f = 2;
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 4242));
        let compiler = CliqueCompiler::new(&g, f, 7);
        let mut net = byz_net(g.clone(), f, 13);
        let (out, report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, 4242), &mut net);
        assert_eq!(out, expected);
        assert!(report.fully_corrected);
        assert!(report.network_rounds > report.payload_rounds);
    }

    #[test]
    fn clique_compiler_protects_token_dissemination() {
        let g = generators::complete(12);
        let f = 1;
        let tokens: Vec<u64> = (0..12).map(|v| 500 + v).collect();
        let expected = run_fault_free(&mut TokenDissemination::new(g.clone(), tokens.clone(), 12));
        let compiler = CliqueCompiler::new(&g, f, 3);
        let mut net = byz_net(g.clone(), f, 5);
        let (out, report) = compiler.run(
            &mut TokenDissemination::new(g.clone(), tokens, 12),
            &mut net,
        );
        assert_eq!(out, expected);
        assert!(report.fully_corrected);
    }

    #[test]
    fn uncompiled_baseline_fails_where_compiler_succeeds() {
        let g = generators::complete(16);
        let f = 3;
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        // Baseline: run uncompiled under a targeted adversary — should break.
        let mut baseline_net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(GreedyHeaviest::new(f).with_mode(CorruptionMode::Constant(3))),
            CorruptionBudget::Mobile { f },
            1,
        );
        let baseline = run_on_network(&mut LeaderElection::new(g.clone()), &mut baseline_net);
        // Compiled: same adversary class.
        let compiler = CliqueCompiler::new(&g, f, 5);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(GreedyHeaviest::new(f).with_mode(CorruptionMode::Constant(3))),
            CorruptionBudget::Mobile { f },
            1,
        );
        let (out, report) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected, "compiled run must be correct");
        assert!(report.fully_corrected);
        // The uncompiled run saw corrupted values (it may still luck into the right
        // answer at some nodes, but the traffic was definitely tampered with).
        assert!(baseline_net.metrics().corrupted_messages > 0);
        let _ = baseline;
    }

    #[test]
    fn general_graph_compiler_with_greedy_packing() {
        let g = generators::circulant(18, 4); // 8-edge-connected
        let f = 1;
        let packing = greedy_low_depth_packing(&g, 0, 9, 2);
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let compiler = MobileByzantineCompiler::new(packing, f, 11);
        let mut net = byz_net(g.clone(), f, 21);
        let (out, report) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected);
        assert!(report.fully_corrected);
    }

    #[test]
    fn l0_variant_also_protects_the_clique() {
        let g = generators::complete(20);
        let f = 1;
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 99));
        let compiler = MobileByzantineCompiler::new(star_packing(&g, 0), f, 3)
            .with_variant(CorrectionVariant::L0Threshold);
        let mut net = byz_net(g.clone(), f, 9);
        let (out, _report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, 99), &mut net);
        assert_eq!(out, expected);
    }

    #[test]
    fn max_tolerable_f_scales_linearly() {
        assert!(CliqueCompiler::max_tolerable_f(64) >= 2 * CliqueCompiler::max_tolerable_f(32));
        assert!(CliqueCompiler::max_tolerable_f(16) >= 1);
    }
}
