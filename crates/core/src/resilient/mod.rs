//! Resilience against mobile byzantine edge adversaries (Section 3, Section 5).

pub mod correction;
pub mod cycle_cover;
pub mod expander;
pub mod safe_broadcast;
pub mod tree_compiler;

pub use correction::{
    apply_corrections, l0_threshold_correction, l0_threshold_correction_ctx, mismatched_arc_count,
    pack_element, sparse_majority_correction, sparse_majority_correction_ctx,
    true_mismatch_elements, unpack_element, CorrectionContext, CorrectionReport,
};
pub use cycle_cover::{CycleCoverCompiler, CycleCoverReport};
pub use expander::{
    run_expander_compiled, weak_packing_under_attack, ExpanderCompilerReport, WeakPackingReport,
};
pub use safe_broadcast::{
    ecc_safe_broadcast, ecc_safe_broadcast_ctx, rs_data_symbols, rs_error_capacity,
    BroadcastContext, SafeBroadcastReport,
};
pub use tree_compiler::{
    ByzantineCompilerReport, CliqueCompiler, CorrectionVariant, MobileByzantineCompiler,
};
