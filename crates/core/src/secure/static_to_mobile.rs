//! The static→mobile security simulation (Theorem 1.2).
//!
//! Given any `r`-round algorithm `A` that is `f`-static-secure (in particular,
//! any algorithm composed with a static-secure transport — or a fault-free
//! algorithm whose leakage one wants to cap to what an `f`-static eavesdropper
//! could see), the compiler produces an `r' = 2r + t`-round algorithm that is
//! `f' = ⌊f·(t+1)/(r+t)⌋`-mobile-secure:
//!
//! 1. **Phase 1 (`ℓ = r + t` rounds)** — neighbours exchange random pads and
//!    condense them with the Vandermonde extraction into `r` one-time-pad keys
//!    per directed edge ([`super::keys::KeyPool`]).
//! 2. **Phase 2 (`r` rounds)** — `A` runs round by round with every message
//!    XORed with its edge's round key.
//!
//! Every message the mobile eavesdropper sees on a *good* edge (observed in at
//! most `t` phase-1 rounds) is a one-time pad — uniform and independent of the
//! input.  Messages on the ≤ `f` bad edges are exactly what an `f`-static
//! eavesdropper of `A` would have seen, which is where the `f`-static security
//! of `A` is consumed.

use crate::secure::keys::KeyPool;
use congest_sim::network::Network;
use congest_sim::traffic::{Output, Traffic};
use congest_sim::CongestAlgorithm;

/// Parameter/result report of a compiled static→mobile run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MobileSecureReport {
    /// Rounds spent in the key-exchange phase (`r + t`).
    pub key_rounds: usize,
    /// Rounds spent simulating `A` (`r`).
    pub simulation_rounds: usize,
    /// The tolerated mobility `f'` for a given static tolerance `f`
    /// (`⌊f·(t+1)/(r+t)⌋`), recorded for the experiment tables.
    pub f_mobile_for: Vec<(usize, usize)>,
}

/// The Theorem 1.2 compiler.
#[derive(Debug, Clone, Copy)]
pub struct StaticToMobileCompiler {
    /// The slack parameter `t`: larger `t` costs more key-exchange rounds but
    /// tolerates proportionally more mobile corruption.
    pub t: usize,
    /// Maximum payload width (words) of the algorithm being protected.
    pub words_per_message: usize,
    /// Seed for the nodes' private randomness.
    pub seed: u64,
}

impl StaticToMobileCompiler {
    /// A compiler with slack `t` protecting messages of up to
    /// `words_per_message` words.
    pub fn new(t: usize, words_per_message: usize, seed: u64) -> Self {
        StaticToMobileCompiler {
            t,
            words_per_message,
            seed,
        }
    }

    /// The mobile tolerance `f'` obtained from a static tolerance `f` for an
    /// `r`-round algorithm: `⌊f·(t+1)/(r+t)⌋` (Theorem 1.2).
    pub fn mobile_tolerance(&self, f_static: usize, r: usize) -> usize {
        f_static * (self.t + 1) / (r + self.t)
    }

    /// Total compiled round count for an `r`-round algorithm: `2r + t`.
    pub fn compiled_rounds(&self, r: usize) -> usize {
        2 * r + self.t
    }

    /// Run the compiled algorithm on the network (whose adversary should be an
    /// eavesdropper — the compiler provides secrecy, not integrity).
    ///
    /// Returns the algorithm outputs (identical to a fault-free run, since the
    /// eavesdropper does not modify traffic) and a report of the parameters.
    pub fn run<A: CongestAlgorithm + ?Sized>(
        &self,
        alg: &mut A,
        net: &mut Network,
    ) -> (Vec<Output>, MobileSecureReport) {
        let g = net.graph().clone();
        let r = alg.rounds();
        // Phase 1: establish one-time pads (ℓ = r + t exchange rounds).
        let pool = KeyPool::establish(net, self.seed, r, self.words_per_message, self.t);
        let key_rounds = pool.exchange_rounds();

        // Phase 2: round-by-round OTP simulation of A.  All three traffic
        // buffers are recycled across rounds.
        let mut plain = Traffic::new(&g);
        let mut cipher = Traffic::new(&g);
        let mut decrypted = Traffic::new(&g);
        for round in 0..r {
            alg.send_into(round, &mut plain);
            cipher.begin_round(&g);
            for (arc, payload) in plain.iter_present() {
                let enc = pool.apply(&g, arc, round, payload);
                cipher.set_arc(arc, Some(&enc));
            }
            net.exchange_in_place(&mut cipher);
            // Receivers decrypt with the same per-arc keys.
            decrypted.begin_round(&g);
            for (arc, payload) in cipher.iter_present() {
                let dec = pool.apply(&g, arc, round, payload);
                decrypted.set_arc(arc, Some(&dec));
            }
            alg.receive(round, &decrypted);
        }

        let report = MobileSecureReport {
            key_rounds,
            simulation_rounds: r,
            f_mobile_for: (1..=4).map(|f| (f, self.mobile_tolerance(f, r))).collect(),
        };
        (alg.outputs(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{ConvergecastSum, FloodBroadcast, LeaderElection};
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile, ScheduledEdges};
    use congest_sim::run_fault_free;
    use netgraph::generators;

    fn eaves_net(g: netgraph::Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(f, seed)),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn compiled_output_matches_fault_free() {
        let g = generators::grid(3, 3);
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 321));
        let compiler = StaticToMobileCompiler::new(4, 2, 99);
        let mut net = eaves_net(g.clone(), 2, 7);
        let (out, report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, 321), &mut net);
        assert_eq!(out, expected);
        assert_eq!(
            report.simulation_rounds,
            FloodBroadcast::new(g, 0, 321).rounds()
        );
        assert_eq!(net.round(), report.key_rounds + report.simulation_rounds);
    }

    #[test]
    fn round_and_tolerance_arithmetic() {
        let c = StaticToMobileCompiler::new(10, 1, 0);
        assert_eq!(c.compiled_rounds(5), 20);
        assert_eq!(c.mobile_tolerance(4, 5), 4 * 11 / 15);
        // t ≥ 2fr keeps f' = f (Theorem 1.2, second clause).
        let big_t = StaticToMobileCompiler::new(2 * 3 * 5, 1, 0);
        assert_eq!(c.mobile_tolerance(0, 5), 0);
        assert_eq!(big_t.mobile_tolerance(3, 5), 3 * 31 / 35);
    }

    #[test]
    fn works_for_multiple_payloads() {
        let g = generators::cycle(7);
        let compiler = StaticToMobileCompiler::new(3, 2, 5);

        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let mut net = eaves_net(g.clone(), 1, 3);
        let (out, _) = compiler.run(&mut LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected);

        let inputs: Vec<u64> = (0..7).collect();
        let expected = run_fault_free(&mut ConvergecastSum::new(g.clone(), 0, inputs.clone()));
        let mut net = eaves_net(g.clone(), 1, 4);
        let (out, _) = compiler.run(&mut ConvergecastSum::new(g.clone(), 0, inputs), &mut net);
        assert_eq!(out, expected);
    }

    /// Empirical perfect-security check: for a *coupled* adversary schedule that
    /// only ever observes good edges during phase 2, the ciphertexts it sees are
    /// one-time pads — so two executions with different inputs but identical
    /// node randomness produce views that differ only where the plaintext is
    /// XORed with the *same* pad... i.e. the view alone cannot reveal which
    /// input was used unless the pad is known.  We verify the operational
    /// consequence used in the proof: on edges never observed during phase 1,
    /// the phase-2 ciphertext is independent of the payload *given the view*
    /// (here: changing the input changes the plaintext but the adversary's two
    /// views remain individually uniform-looking; concretely we check the view
    /// is NOT equal to the plaintext traffic and that identical inputs with
    /// different hidden randomness give different views).
    #[test]
    fn phase2_ciphertexts_on_unobserved_edges_are_padded() {
        let g = generators::path(4);
        let r = FloodBroadcast::new(g.clone(), 0, 5).rounds();
        let t = 2;
        let key_rounds = r + t;
        // Observe edge 0 only during phase 2 (never in phase 1): the key of edge 0
        // is then perfectly hidden and its ciphertext is a fresh pad.
        let mut schedule = vec![vec![]; key_rounds];
        schedule.extend(std::iter::repeat_n(vec![0usize], r));
        let make_net = |seed: u64| {
            Network::new(
                g.clone(),
                AdversaryRole::Eavesdropper,
                Box::new(ScheduledEdges::new(schedule.clone())),
                CorruptionBudget::Mobile { f: 1 },
                seed,
            )
        };
        let compiler_a = StaticToMobileCompiler::new(t, 1, 1000);
        let compiler_b = StaticToMobileCompiler::new(t, 1, 2000);
        let mut net1 = make_net(1);
        let (_, _) = compiler_a.run(&mut FloodBroadcast::new(g.clone(), 0, 5), &mut net1);
        let mut net2 = make_net(1);
        let (_, _) = compiler_b.run(&mut FloodBroadcast::new(g.clone(), 0, 5), &mut net2);
        // Same input, different hidden randomness → different views: the view is
        // determined by the pads, not by the payload.
        assert_ne!(
            net1.view_log().canonical(),
            net2.view_log().canonical(),
            "view must depend on hidden pads"
        );
        // And the observed ciphertext never equals the plaintext value (5) in
        // the clear (probability 2^-64 per observation).
        for entry in &net1.view_log().entries {
            if let Some(fwd) = &entry.forward {
                assert_ne!(fwd, &vec![5u64]);
            }
        }
    }
}
