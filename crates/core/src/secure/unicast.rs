//! Mobile-secure unicast and multicast (Lemma A.3).
//!
//! The static building block is a *light* secure message transmission scheme:
//! the secret is split into XOR shares, one per edge-disjoint `s`–`t` path, and
//! each share is pipelined along its path — at most one message crosses any
//! edge, and an eavesdropper that misses at least one path entirely learns
//! nothing (information-theoretically).
//!
//! > **Substitution note** (see DESIGN.md): the paper uses Jain's
//! > network-coding unicast, whose security condition is "`F` does not
//! > disconnect `s` from `t`".  The share-per-disjoint-path scheme used here
//! > preserves the properties the mobile compilation relies on — exactly one
//! > message per edge, `O(D)` rounds — with the marginally stronger condition
//! > "`F₁` misses at least one of the `s`–`t` paths".
//!
//! The mobile wrapper is the paper's: one extra preliminary round in which all
//! neighbours exchange fresh pads `K(u,v)`, after which every message of the
//! static scheme is sent XOR-encrypted with its edge's pad.  Because the static
//! scheme uses each edge at most once, each pad is used at most once, and the
//! argument of Claim 3 applies: the adversary's constraint only concerns the
//! edges it controlled in the *pad-exchange round*.

use congest_sim::network::Network;
use congest_sim::traffic::Traffic;
use netgraph::connectivity::edge_disjoint_paths;
use netgraph::NodeId;
use rand::Rng;

/// One unicast instance: send `secret` from `source` to `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnicastInstance {
    /// The sending node.
    pub source: NodeId,
    /// The receiving node.
    pub target: NodeId,
    /// The secret word to transmit.
    pub secret: u64,
}

/// Result of a (multi-)unicast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnicastReport {
    /// Value recovered by each instance's target (`None` if nothing arrived).
    pub recovered: Vec<Option<u64>>,
    /// Total network rounds consumed.
    pub rounds: usize,
    /// Maximum number of messages that crossed any single edge.
    pub congestion: usize,
}

/// Run a single mobile-secure unicast.  Convenience wrapper around
/// [`mobile_secure_multicast`] with one instance.
pub fn mobile_secure_unicast(
    net: &mut Network,
    source: NodeId,
    target: NodeId,
    secret: u64,
    seed: u64,
) -> UnicastReport {
    mobile_secure_multicast(
        net,
        &[UnicastInstance {
            source,
            target,
            secret,
        }],
        seed,
    )
}

/// Run `R` mobile-secure unicast instances (Lemma A.3's multicast): `R` rounds
/// of pad exchange, then all instances' share pipelines run in parallel, each
/// instance's messages encrypted with its own pad lane.
///
/// # Panics
///
/// Panics if some instance has `source == target`.
pub fn mobile_secure_multicast(
    net: &mut Network,
    instances: &[UnicastInstance],
    seed: u64,
) -> UnicastReport {
    let g = net.graph().clone();
    let r = instances.len();
    assert!(
        instances.iter().all(|i| i.source != i.target),
        "unicast requires distinct endpoints"
    );
    let start_round = net.round();

    // Phase 1: R rounds of pad exchange; lane j of pads protects instance j.
    // pads[lane][arc] known to both endpoints (eavesdropper is passive).
    let mut node_rngs: Vec<_> = g.nodes().map(|v| Network::node_rng(seed, v)).collect();
    let mut pads: Vec<Vec<u64>> = Vec::with_capacity(r);
    for _lane in 0..r {
        let mut lane_pads = vec![0u64; g.arc_count()];
        let mut traffic = Traffic::new(&g);
        for v in g.nodes() {
            for &(u, e) in g.neighbors(v) {
                let arc = g.arc(e, v, u);
                let pad: u64 = node_rngs[v].gen();
                lane_pads[arc] = pad;
                traffic.send(&g, v, u, vec![pad]);
            }
        }
        let _ = net.exchange(traffic);
        pads.push(lane_pads);
    }

    // Phase 2: for each instance, split the secret into XOR shares over its
    // edge-disjoint paths and pipeline the shares, all instances in parallel.
    struct Pipe {
        instance: usize,
        path: Vec<NodeId>,
        /// share value currently held at position `hop` (None = not yet arrived).
        holder: Vec<Option<u64>>,
        /// whether the share has reached the target.
        done: bool,
    }
    let mut pipes: Vec<Pipe> = Vec::new();
    let mut expected_shares: Vec<usize> = vec![0; r];
    for (idx, inst) in instances.iter().enumerate() {
        let paths = edge_disjoint_paths(&g, inst.source, inst.target, usize::MAX);
        assert!(
            !paths.is_empty(),
            "source and target must be connected for unicast"
        );
        expected_shares[idx] = paths.len();
        // XOR share split using the source's private randomness.
        let mut shares: Vec<u64> = (0..paths.len() - 1)
            .map(|_| node_rngs[inst.source].gen())
            .collect();
        let xor_rest = shares.iter().fold(inst.secret, |a, &b| a ^ b);
        shares.push(xor_rest);
        for (p, share) in paths.into_iter().zip(shares) {
            let mut holder = vec![None; p.len()];
            holder[0] = Some(share);
            pipes.push(Pipe {
                instance: idx,
                path: p,
                holder,
                done: false,
            });
        }
    }

    let max_len = pipes.iter().map(|p| p.path.len()).max().unwrap_or(1);
    let mut received_shares: Vec<Vec<u64>> = vec![Vec::new(); r];

    // Pipelines of different instances may want the same arc in the same round
    // (their paths are only edge-disjoint *within* an instance); conflicting
    // pipes defer to the next round, in the spirit of the random-delay
    // scheduling of Theorem 1.9, so the loop budget includes the pipe count.
    for _step in 0..(max_len + pipes.len()) {
        let mut traffic = Traffic::new(&g);
        let mut used_arcs = vec![false; g.arc_count()];
        // Each pipe advances its frontier share by one hop, encrypted with the
        // pad of its instance's lane on the traversed arc.
        let mut planned: Vec<(usize, usize, u64)> = Vec::new(); // (pipe, hop, plain share)
        for (pi, pipe) in pipes.iter().enumerate() {
            if pipe.done {
                continue;
            }
            for hop in 0..pipe.path.len() - 1 {
                if let Some(share) = pipe.holder[hop] {
                    if pipe.holder[hop + 1].is_none() {
                        let from = pipe.path[hop];
                        let to = pipe.path[hop + 1];
                        let arc = g.arc_between(from, to).expect("path edge exists");
                        if used_arcs[arc] {
                            break; // defer this pipe to the next round
                        }
                        used_arcs[arc] = true;
                        let cipher = share ^ pads[pipe.instance][arc];
                        traffic.send(&g, from, to, vec![cipher]);
                        planned.push((pi, hop, share));
                        break; // one frontier per pipe per round
                    }
                }
            }
        }
        if planned.is_empty() {
            break;
        }
        let delivered = net.exchange(traffic);
        for (pi, hop, _plain) in planned {
            let pipe = &mut pipes[pi];
            let from = pipe.path[hop];
            let to = pipe.path[hop + 1];
            let arc = g.arc_between(from, to).unwrap();
            if let Some(msg) = delivered.get(&g, from, to) {
                let share = msg[0] ^ pads[pipe.instance][arc];
                if hop + 1 == pipe.path.len() - 1 {
                    received_shares[pipe.instance].push(share);
                    pipe.done = true;
                } else {
                    pipe.holder[hop + 1] = Some(share);
                }
            }
        }
    }

    let recovered = (0..r)
        .map(|i| {
            if received_shares[i].len() == expected_shares[i] {
                Some(received_shares[i].iter().fold(0u64, |a, &b| a ^ b))
            } else {
                None
            }
        })
        .collect();
    UnicastReport {
        recovered,
        rounds: net.round() - start_round,
        congestion: net.metrics().max_edge_congestion(),
    }
}

/// The plain (non-secure) baseline: send the secret directly hop-by-hop along a
/// single shortest path with no encryption.  Used by the experiments to show
/// what the eavesdropper sees without the compiler.
pub fn plain_unicast_baseline(
    net: &mut Network,
    source: NodeId,
    target: NodeId,
    secret: u64,
) -> Option<u64> {
    let g = net.graph().clone();
    let path = netgraph::traversal::bfs(&g, source).path_to(target)?;
    let mut carried = Some(secret);
    for w in path.windows(2) {
        let mut traffic = Traffic::new(&g);
        if let Some(val) = carried {
            traffic.send(&g, w[0], w[1], vec![val]);
        }
        let delivered = net.exchange(traffic);
        carried = delivered.get(&g, w[0], w[1]).map(|p| p[0]);
    }
    carried
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::{
        AdversaryRole, CorruptionBudget, NoAdversary, RandomMobile, ScheduledEdges,
    };
    use netgraph::{generators, Graph};

    fn eaves_net(g: Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(f, seed)),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn unicast_delivers_the_secret() {
        for g in [
            generators::cycle(8),
            generators::complete(6),
            generators::grid(3, 3),
        ] {
            let mut net = eaves_net(g.clone(), 2, 3);
            let report = mobile_secure_unicast(&mut net, 0, g.node_count() - 1, 0xFEED_FACE, 7);
            assert_eq!(report.recovered[0], Some(0xFEED_FACE));
        }
    }

    #[test]
    fn unicast_congestion_is_constant() {
        let g = generators::complete(7);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(NoAdversary),
            CorruptionBudget::None,
            0,
        );
        let report = mobile_secure_unicast(&mut net, 0, 6, 99, 1);
        assert_eq!(report.recovered[0], Some(99));
        // Pad exchange (1 per edge per direction = 2 per edge) + at most one
        // share message per edge.
        assert!(
            report.congestion <= 3,
            "congestion {} too high",
            report.congestion
        );
    }

    #[test]
    fn multicast_many_instances() {
        let g = generators::complete(8);
        let instances: Vec<UnicastInstance> = (1..6)
            .map(|i| UnicastInstance {
                source: 0,
                target: i,
                secret: 1000 + i as u64,
            })
            .collect();
        let mut net = eaves_net(g.clone(), 2, 9);
        let report = mobile_secure_multicast(&mut net, &instances, 11);
        for (i, inst) in instances.iter().enumerate() {
            assert_eq!(report.recovered[i], Some(inst.secret));
        }
        // O(D + R) rounds: pad rounds (R) + the longest share pipeline (which the
        // max-flow decomposition may stretch up to O(n) hops on dense graphs).
        assert!(report.rounds <= instances.len() + g.node_count());
    }

    #[test]
    #[should_panic]
    fn unicast_rejects_self_send() {
        let g = generators::cycle(4);
        let mut net = eaves_net(g, 1, 1);
        let _ = mobile_secure_unicast(&mut net, 2, 2, 1, 1);
    }

    /// Security: an eavesdropper that never observes the pad-exchange round and
    /// misses one full path sees only one-time-padded shares; two runs with
    /// different secrets but coupled adversary schedules produce views that are
    /// (a) plaintext-free and (b) determined by the hidden pads, not the secret.
    #[test]
    fn eavesdropper_view_does_not_contain_the_secret() {
        let g = generators::cycle(6);
        // Observe one fixed edge in every round *after* the pad exchange.
        let schedule: Vec<Vec<usize>> = std::iter::once(vec![])
            .chain(std::iter::repeat_n(vec![0usize], 12))
            .collect();
        let secret = 0xDEAD_BEEF_u64;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(ScheduledEdges::new(schedule)),
            CorruptionBudget::Mobile { f: 1 },
            1,
        );
        let report = mobile_secure_unicast(&mut net, 0, 3, secret, 5);
        assert_eq!(report.recovered[0], Some(secret));
        for entry in &net.view_log().entries {
            for p in [&entry.forward, &entry.backward].into_iter().flatten() {
                assert!(!p.contains(&secret), "secret leaked in the clear");
            }
        }
    }

    #[test]
    fn plain_baseline_leaks_the_secret_to_the_eavesdropper() {
        let g = generators::path(4);
        // Observe the middle edge in every round.
        let mid = g.edge_between(1, 2).unwrap();
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(congest_sim::adversary::FixedEdges::new(vec![mid])),
            CorruptionBudget::Static(vec![mid]),
            0,
        );
        let secret = 0xABCD_u64;
        let out = plain_unicast_baseline(&mut net, 0, 3, secret);
        assert_eq!(out, Some(secret));
        let leaked = net.view_log().entries.iter().any(|e| {
            e.forward.as_deref() == Some(&[secret][..])
                || e.backward.as_deref() == Some(&[secret][..])
        });
        assert!(leaked, "baseline must demonstrably leak");
    }
}
