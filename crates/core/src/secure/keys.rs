//! Key-pool establishment against mobile eavesdroppers (Lemma A.1 /
//! phase 1 of Theorem 1.2).
//!
//! For `ℓ = r + t` rounds every ordered pair of neighbours exchanges fresh
//! random pads drawn from the senders' private randomness.  A mobile
//! eavesdropper controlling `f'` edges per round observes at most `f'·ℓ`
//! edge-rounds, so by averaging at most `⌊f'·ℓ/(t+1)⌋` edges are observed in
//! more than `t` rounds ("bad" edges).  For every other ("good") edge, applying
//! the Vandermonde bit extraction of Theorem 2.1 to the `ℓ` exchanged pads
//! yields `r` pads that are uniformly random *conditioned on everything the
//! adversary saw* — a perfect one-time-pad keystream for the second phase.
//!
//! Pads are exchanged and extracted in 16-bit chunks of the `GF(2^16)` field;
//! a keystream "round" consists of enough chunks to pad one full payload.

use coding::field::Field;
use coding::{BitExtractor, Gf2_16};
use congest_sim::network::Network;
use congest_sim::traffic::{Payload, Traffic};
use netgraph::{ArcId, Graph};
use rand::Rng;

/// Number of 16-bit chunks in one 64-bit payload word.
const CHUNKS_PER_WORD: usize = 4;

/// A per-arc one-time-pad keystream established by the two-phase exchange.
#[derive(Debug, Clone)]
pub struct KeyPool {
    /// Keystream chunks per arc: `chunks[arc][i]`.
    chunks: Vec<Vec<Gf2_16>>,
    /// Chunks consumed per protected message round.
    chunks_per_round: usize,
    /// Number of exchange rounds used in phase 1 (`ℓ = rounds + t`).
    exchange_rounds: usize,
    /// The observation threshold `t`.
    threshold: usize,
}

impl KeyPool {
    /// Establish a keystream good for `rounds` protected rounds of messages of
    /// up to `words_per_message` words, resilient to eavesdroppers that observe
    /// any given edge in at most `t` of the exchange rounds.
    ///
    /// Runs `ℓ = rounds + t` network rounds (phase 1 of Theorem 1.2).  The
    /// network's adversary is expected to be an eavesdropper; a byzantine
    /// adversary would additionally desynchronise the endpoints' keys, which is
    /// outside the threat model of the secure compilers.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `words_per_message == 0`.
    pub fn establish(
        net: &mut Network,
        seed: u64,
        rounds: usize,
        words_per_message: usize,
        t: usize,
    ) -> Self {
        assert!(rounds > 0, "need at least one protected round");
        assert!(
            words_per_message > 0,
            "messages must have at least one word"
        );
        let g = net.graph().clone();
        net.tracer_mut().span_open(obs::Phase::KeySchedule);
        let chunks_per_round = words_per_message * CHUNKS_PER_WORD;
        let exchange_rounds = rounds + t;

        // raw[arc][round] = the chunks exchanged over this arc in this round,
        // as known to BOTH endpoints (the sender generated them, the receiver
        // received them verbatim — the eavesdropper only listens).
        let mut raw: Vec<Vec<Vec<Gf2_16>>> = vec![Vec::new(); g.arc_count()];
        let mut node_rngs: Vec<_> = g.nodes().map(|v| Network::node_rng(seed, v)).collect();

        let mut traffic = Traffic::new(&g);
        for _ in 0..exchange_rounds {
            traffic.begin_round(&g);
            let mut this_round: Vec<Vec<Gf2_16>> = vec![Vec::new(); g.arc_count()];
            for v in g.nodes() {
                for &(u, e) in g.neighbors(v) {
                    let arc = g.arc(e, v, u);
                    let chunks: Vec<Gf2_16> = (0..chunks_per_round)
                        .map(|_| Gf2_16::from_u64(node_rngs[v].gen()))
                        .collect();
                    let words = pack_chunks(&chunks);
                    traffic.send(&g, v, u, words);
                    this_round[arc] = chunks;
                }
            }
            net.exchange_in_place(&mut traffic);
            for arc in 0..g.arc_count() {
                raw[arc].push(std::mem::take(&mut this_round[arc]));
            }
        }

        // Extract: for each arc independently, each chunk lane is condensed from
        // ℓ exchanged chunks to `rounds` hidden chunks via the Vandermonde map.
        let extractor = BitExtractor::<Gf2_16>::new(exchange_rounds, t)
            .expect("exchange parameters must fit the field");
        let mut chunks = vec![Vec::new(); g.arc_count()];
        for arc in 0..g.arc_count() {
            let mut stream = Vec::with_capacity(rounds * chunks_per_round);
            for lane in 0..chunks_per_round {
                let column: Vec<Gf2_16> = raw[arc].iter().map(|r| r[lane]).collect();
                let extracted = extractor.extract(&column).expect("length matches");
                stream.push(extracted);
            }
            // Interleave lanes so that round i uses chunk i of every lane.
            let mut flat = Vec::with_capacity(rounds * chunks_per_round);
            for i in 0..rounds {
                for lane_stream in stream.iter().take(chunks_per_round) {
                    flat.push(lane_stream[i]);
                }
            }
            chunks[arc] = flat;
        }
        net.tracer_mut().span_close(obs::Phase::KeySchedule);
        KeyPool {
            chunks,
            chunks_per_round,
            exchange_rounds,
            threshold: t,
        }
    }

    /// Number of phase-1 exchange rounds that were executed (`ℓ = r + t`).
    pub fn exchange_rounds(&self) -> usize {
        self.exchange_rounds
    }

    /// The observation threshold `t`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Maximum number of protected rounds the keystream supports.
    pub fn protected_rounds(&self) -> usize {
        self.chunks
            .first()
            .map(|c| c.len() / self.chunks_per_round)
            .unwrap_or(0)
    }

    /// Encrypt (or decrypt — XOR is an involution) a payload for the given arc
    /// and protected round.  Words beyond the keystream width are padded with
    /// derived chunks of the same round (never reusing earlier rounds' pads).
    ///
    /// # Panics
    ///
    /// Panics if `round` exceeds the number of protected rounds or the payload
    /// is wider than the keystream provisioned per round.
    pub fn apply(&self, g: &Graph, arc: ArcId, round: usize, payload: &[u64]) -> Payload {
        assert!(round < self.protected_rounds(), "keystream exhausted");
        assert!(
            payload.len() * CHUNKS_PER_WORD <= self.chunks_per_round,
            "payload wider than the provisioned keystream ({} words > {} chunks)",
            payload.len(),
            self.chunks_per_round
        );
        let _ = g;
        let base = round * self.chunks_per_round;
        let key = &self.chunks[arc][base..base + self.chunks_per_round];
        payload
            .iter()
            .enumerate()
            .map(|(w, &word)| {
                let mut out = word;
                for c in 0..CHUNKS_PER_WORD {
                    let pad = key[w * CHUNKS_PER_WORD + c].to_u64();
                    out ^= pad << (16 * c);
                }
                out
            })
            .collect()
    }

    /// The number of "bad" edges guaranteed by the averaging argument of
    /// Theorem 1.2: `⌊f'·ℓ/(t+1)⌋` for an `f'`-mobile eavesdropper.
    pub fn bad_edge_bound(&self, f_mobile: usize) -> usize {
        (f_mobile * self.exchange_rounds) / (self.threshold + 1)
    }
}

fn pack_chunks(chunks: &[Gf2_16]) -> Vec<u64> {
    chunks
        .chunks(CHUNKS_PER_WORD)
        .map(|group| {
            group
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, c)| acc | (c.to_u64() << (16 * i)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
    use netgraph::generators;

    fn pool_on(g: Graph, rounds: usize, words: usize, t: usize) -> (KeyPool, Network) {
        let mut net = Network::new(
            g,
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(1, 5)),
            CorruptionBudget::Mobile { f: 1 },
            5,
        );
        let pool = KeyPool::establish(&mut net, 42, rounds, words, t);
        (pool, net)
    }

    #[test]
    fn establishment_round_count_and_capacity() {
        let g = generators::cycle(5);
        let (pool, net) = pool_on(g, 3, 2, 4);
        assert_eq!(pool.exchange_rounds(), 7);
        assert_eq!(net.round(), 7);
        assert_eq!(pool.protected_rounds(), 3);
        assert_eq!(pool.bad_edge_bound(1), 7 / 5);
    }

    #[test]
    fn apply_is_an_involution_and_varies_per_round() {
        let g = generators::path(3);
        let (pool, _) = pool_on(g.clone(), 4, 2, 2);
        let arc = g.arc_between(0, 1).unwrap();
        let payload = vec![0xDEAD_BEEF_u64, 42];
        for round in 0..4 {
            let enc = pool.apply(&g, arc, round, &payload);
            assert_ne!(enc, payload, "encryption must change the payload (w.h.p.)");
            let dec = pool.apply(&g, arc, round, &enc);
            assert_eq!(dec, payload);
        }
        let e0 = pool.apply(&g, arc, 0, &payload);
        let e1 = pool.apply(&g, arc, 1, &payload);
        assert_ne!(e0, e1, "distinct rounds must use distinct pads");
    }

    #[test]
    fn different_arcs_have_independent_keys() {
        let g = generators::path(3);
        let (pool, _) = pool_on(g.clone(), 2, 1, 2);
        let a01 = g.arc_between(0, 1).unwrap();
        let a10 = g.arc_between(1, 0).unwrap();
        let a12 = g.arc_between(1, 2).unwrap();
        let payload = vec![0u64];
        let e01 = pool.apply(&g, a01, 0, &payload);
        let e10 = pool.apply(&g, a10, 0, &payload);
        let e12 = pool.apply(&g, a12, 0, &payload);
        assert!(e01 != e10 || e01 != e12, "keys should differ across arcs");
    }

    #[test]
    #[should_panic]
    fn keystream_exhaustion_panics() {
        let g = generators::path(2);
        let (pool, _) = pool_on(g.clone(), 2, 1, 1);
        let arc = g.arc_between(0, 1).unwrap();
        let _ = pool.apply(&g, arc, 2, &[1]);
    }

    #[test]
    #[should_panic]
    fn oversized_payload_panics() {
        let g = generators::path(2);
        let (pool, _) = pool_on(g.clone(), 2, 1, 1);
        let arc = g.arc_between(0, 1).unwrap();
        let _ = pool.apply(&g, arc, 0, &[1, 2, 3]);
    }

    /// The structural security property: pads on edges the eavesdropper missed
    /// in (all but ≤ t) rounds are *not derivable* from its view.  We verify
    /// the mechanical precondition — the adversary's recorded view never
    /// contains more than `t` observations of a good edge — and that the
    /// keystream actually differs between two runs whose only difference is
    /// node randomness the adversary never saw.
    #[test]
    fn eavesdropper_misses_good_edges_keystreams() {
        let g = generators::cycle(6);
        let rounds = 3;
        let t = 6;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(1, 9)),
            CorruptionBudget::Mobile { f: 1 },
            9,
        );
        let pool1 = KeyPool::establish(&mut net, 1, rounds, 1, t);
        // Count observations per edge.
        let mut obs = vec![0usize; g.edge_count()];
        for entry in &net.view_log().entries {
            obs[entry.edge] += 1;
        }
        let bad: Vec<usize> = (0..g.edge_count()).filter(|&e| obs[e] > t).collect();
        assert!(bad.len() <= pool1.bad_edge_bound(1));
        // Re-run with different node randomness but the same adversary seed:
        // good-edge keystreams must differ (they depend on hidden randomness).
        let mut net2 = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(1, 9)),
            CorruptionBudget::Mobile { f: 1 },
            9,
        );
        let pool2 = KeyPool::establish(&mut net2, 2, rounds, 1, t);
        let arc = g.arc_between(0, 1).unwrap();
        let p = vec![0u64];
        assert_ne!(
            pool1.apply(&g, arc, 0, &p),
            pool2.apply(&g, arc, 0, &p),
            "keystream must depend on private node randomness"
        );
    }
}
