//! Mobile-secure broadcast (Theorem A.4) and the congestion-sensitive secure
//! compiler (Theorem 1.3).
//!
//! **Broadcast.**  A source holds a `b`-word secret that every node must learn
//! while a mobile eavesdropper learns nothing.  The implementation follows the
//! paper's share-per-tree structure: the secret is XOR-split into `k` shares,
//! share `j` travels along tree `j` of a low-diameter tree packing, and every
//! share message is one-time-padded with keys established by a local secret
//! exchange (Lemma A.1).  Perfect secrecy holds as long as at least one tree
//! contains no "bad" edge (an edge whose pad the adversary pinned down), which
//! the parameter choice `k > η·f_bad` guarantees.
//!
//! > **Substitution note** (see DESIGN.md): the paper's Θ(√(f·b·n)) landmark /
//! > fractional-tree-packing machinery is replaced by an integral greedy tree
//! > packing, so the round complexity here is `Õ(f·D + b)` rather than
//! > `Õ(D + √(f·b·n) + b)`; the security structure (share-per-tree + one-time
//! > pads from bit extraction) is the paper's.
//!
//! **Congestion-sensitive compiler.**  Theorem 1.3: any `cong`-congestion
//! algorithm is compiled by (1) a local secret exchange giving every edge `r`
//! keys, (2) a global secret exchange sharing a hash-function seed with all
//! nodes via the secure broadcast, and (3) a round-by-round simulation in which
//! real messages are sent as `(payload ‖ h*(payload)) ⊕ key` and silent edges
//! send fresh randomness, making real and dummy traffic indistinguishable.

use crate::secure::keys::KeyPool;
use coding::KWiseHash;
use congest_sim::network::Network;
use congest_sim::traffic::{Output, Payload, Traffic};
use congest_sim::CongestAlgorithm;
use netgraph::tree_packing::{greedy_low_depth_packing, TreePacking};
use netgraph::NodeId;
use rand::Rng;

/// Report of a secure broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureBroadcastReport {
    /// Rounds spent establishing pads.
    pub key_rounds: usize,
    /// Rounds spent disseminating shares.
    pub dissemination_rounds: usize,
    /// Number of shares / trees used.
    pub shares: usize,
    /// Whether every node recovered the secret.
    pub all_recovered: bool,
}

/// Mobile-secure broadcast of `secret` (a vector of words) from `source` to all
/// nodes, tolerating an `f`-mobile eavesdropper.
///
/// Returns each node's recovered secret and a report.
///
/// # Panics
///
/// Panics if the secret is empty or the graph is disconnected.
pub fn mobile_secure_broadcast(
    net: &mut Network,
    source: NodeId,
    secret: &[u64],
    f: usize,
    seed: u64,
) -> (Vec<Option<Vec<u64>>>, SecureBroadcastReport) {
    assert!(!secret.is_empty(), "secret must be non-empty");
    let g = net.graph().clone();
    let n = g.node_count();
    let start = net.round();

    // Tree packing with enough trees that f bad edges cannot touch all of them.
    let eta_hint = 2;
    let k = (eta_hint * f + 1).max(2).min(n.max(2));
    let packing = greedy_low_depth_packing(&g, source, k, eta_hint);
    let eta = packing.load(&g).max(1);
    let k = packing.len();

    // Local secret exchange: enough pads for every tree edge to carry its share
    // of up to `secret.len()` words plus the share index, once per tree.
    let words = secret.len() + 1;
    let pad_rounds = k; // one keystream "round" per tree
    let t_threshold = 2 * f * pad_rounds; // t ≥ 2fr keeps all but f edges clean
    let pool = KeyPool::establish(net, seed, pad_rounds, words, t_threshold);
    let key_rounds = net.round() - start;

    // Source splits the secret into k XOR shares (per word).
    let mut src_rng = Network::node_rng(seed ^ 0x5EC2E7, source);
    let mut shares: Vec<Vec<u64>> = (0..k - 1)
        .map(|_| (0..secret.len()).map(|_| src_rng.gen()).collect())
        .collect();
    let last: Vec<u64> = (0..secret.len())
        .map(|w| shares.iter().fold(secret[w], |a, s| a ^ s[w]))
        .collect();
    shares.push(last);

    // Disseminate share j down tree j, level by level, every hop encrypted with
    // the pad lane of tree j.  All trees proceed in parallel, staggered by the
    // packing load so no edge carries two messages in one round.
    let diss_start = net.round();
    let mut node_share: Vec<Vec<Option<Vec<u64>>>> = vec![vec![None; k]; n];
    for (j, share) in shares.iter().enumerate() {
        node_share[source][j] = Some(share.clone());
    }
    let max_height = packing.max_height().max(1);
    for level in 0..max_height {
        // Collect every (tree, parent, child) transmission for this level, then
        // schedule them over as many sub-rounds as needed so that no arc carries
        // two different trees' messages in the same round (at most `eta`
        // sub-rounds by the load bound, but conflicts are resolved explicitly).
        let mut pending: Vec<(usize, NodeId, NodeId)> = Vec::new();
        for (j, tree) in packing.trees.iter().enumerate() {
            let depths = tree.depths();
            for v in g.nodes() {
                if depths[v] != Some(level) || node_share[v][j].is_none() {
                    continue;
                }
                for c in g.nodes() {
                    if tree.parent[c] == Some(v) {
                        pending.push((j, v, c));
                    }
                }
            }
        }
        let mut guard = 0;
        while !pending.is_empty() && guard <= eta + k {
            guard += 1;
            let mut traffic = Traffic::new(&g);
            let mut used_arcs: Vec<bool> = vec![false; g.arc_count()];
            let mut plan: Vec<(usize, NodeId, NodeId)> = Vec::new();
            let mut deferred: Vec<(usize, NodeId, NodeId)> = Vec::new();
            for (j, v, c) in pending {
                let arc = g.arc_between(v, c).unwrap();
                if used_arcs[arc] {
                    deferred.push((j, v, c));
                    continue;
                }
                used_arcs[arc] = true;
                let mut payload = vec![j as u64];
                payload.extend_from_slice(node_share[v][j].as_ref().unwrap());
                let enc = pool.apply(&g, arc, j, &payload);
                traffic.send(&g, v, c, enc);
                plan.push((j, v, c));
            }
            pending = deferred;
            if plan.is_empty() {
                continue;
            }
            let delivered = net.exchange(traffic);
            for (j, v, c) in plan {
                if let Some(msg) = delivered.get(&g, v, c) {
                    let arc = g.arc_between(v, c).unwrap();
                    let dec = pool.apply(&g, arc, j, msg);
                    if dec.first() == Some(&(j as u64)) {
                        node_share[c][j] = Some(dec[1..].to_vec());
                    }
                }
            }
        }
    }
    let dissemination_rounds = net.round() - diss_start;

    // Every node XORs the shares it holds; missing shares mean failure.
    let recovered: Vec<Option<Vec<u64>>> = (0..n)
        .map(|v| {
            if node_share[v].iter().all(|s| s.is_some()) {
                let mut acc = vec![0u64; secret.len()];
                for s in node_share[v].iter().flatten() {
                    for (w, word) in s.iter().enumerate() {
                        acc[w] ^= word;
                    }
                }
                Some(acc)
            } else {
                None
            }
        })
        .collect();
    let all_recovered = recovered.iter().all(|r| r.as_deref() == Some(secret));
    (
        recovered,
        SecureBroadcastReport {
            key_rounds,
            dissemination_rounds,
            shares: k,
            all_recovered,
        },
    )
}

/// Report of a congestion-sensitive secure compilation (Theorem 1.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureCompilerReport {
    /// Rounds of local secret exchange.
    pub local_key_rounds: usize,
    /// Rounds of global secret exchange (secure broadcast of the hash seed).
    pub global_key_rounds: usize,
    /// Rounds simulating the payload algorithm.
    pub simulation_rounds: usize,
    /// Congestion bound `cong` used for the parameters.
    pub congestion: usize,
}

/// The congestion-sensitive compiler with perfect mobile security (Theorem 1.3).
#[derive(Debug, Clone, Copy)]
pub struct CongestionSensitiveCompiler {
    /// The mobile eavesdropping bound `f` to defend against.
    pub f: usize,
    /// Maximum payload width of the protected algorithm, in words.
    pub words_per_message: usize,
    /// Seed for node-private randomness.
    pub seed: u64,
}

impl CongestionSensitiveCompiler {
    /// Create a compiler for an `f`-mobile eavesdropper.
    pub fn new(f: usize, words_per_message: usize, seed: u64) -> Self {
        CongestionSensitiveCompiler {
            f,
            words_per_message,
            seed,
        }
    }

    /// Run the compiled algorithm; the network's adversary should be an
    /// eavesdropper.  Every round of `A`, *every* edge carries a fixed-width
    /// message (real ones carry `(payload ‖ tag) ⊕ key`, silent ones carry fresh
    /// randomness), so the traffic pattern is input-independent.
    pub fn run<A: CongestAlgorithm + ?Sized>(
        &self,
        alg: &mut A,
        net: &mut Network,
        source: NodeId,
    ) -> (Vec<Output>, SecureCompilerReport) {
        let g = net.graph().clone();
        let r = alg.rounds();
        let cong = alg.congestion_bound().unwrap_or(r);
        let start = net.round();

        // Step 1: local secret exchange — r keystream rounds, width = length + payload + tag.
        let width = self.words_per_message + 2;
        let pool = KeyPool::establish(net, self.seed, r, width, 2 * self.f * r);
        let local_key_rounds = net.round() - start;

        // Step 2: global secret exchange — share the seed of a c-wise independent
        // hash family, c = Θ(f · cong).
        let global_start = net.round();
        let hash_seed: u64 = Network::node_rng(self.seed ^ 0x917E, source).gen();
        let (_, bcast_report) =
            mobile_secure_broadcast(net, source, &[hash_seed], self.f, self.seed ^ 0x22);
        debug_assert!(bcast_report.all_recovered);
        let c = (4 * self.f * cong).max(2);
        let tagger = KWiseHash::from_seed(hash_seed, c, u64::MAX);
        let global_key_rounds = net.round() - global_start;

        // Step 3: round-by-round simulation with dummy traffic on silent edges.
        let sim_start = net.round();
        let mut dummy_rng = Network::node_rng(self.seed ^ 0xD0_0D, 0);
        let mut plain = Traffic::new(&g);
        let mut cipher = Traffic::new(&g);
        let mut decrypted = Traffic::new(&g);
        for round in 0..r {
            alg.send_into(round, &mut plain);
            cipher.begin_round(&g);
            for v in g.nodes() {
                for &(u, _) in g.neighbors(v) {
                    let arc = g.arc_between(v, u).unwrap();
                    let payload = plain.get(&g, v, u);
                    let body: Payload = match payload {
                        Some(p) => {
                            assert!(
                                p.len() <= self.words_per_message,
                                "payload wider than the compiler's configured width"
                            );
                            let mut framed = vec![p.len() as u64];
                            framed.extend_from_slice(p);
                            framed.resize(self.words_per_message + 1, 0);
                            let tag = tagger.hash(mix_words(&framed, arc as u64, round as u64));
                            framed.push(tag);
                            pool.apply(&g, arc, round, &framed)
                        }
                        None => (0..width).map(|_| dummy_rng.gen()).collect(),
                    };
                    cipher.send(&g, v, u, body);
                }
            }
            net.exchange_in_place(&mut cipher);
            decrypted.begin_round(&g);
            for v in g.nodes() {
                for &(u, _) in g.neighbors(v) {
                    let arc = g.arc_between(u, v).unwrap();
                    if let Some(msg) = cipher.get(&g, u, v) {
                        let dec = pool.apply(&g, arc, round, msg);
                        if dec.len() == width {
                            let (framed, tag) = dec.split_at(self.words_per_message + 1);
                            let expect = tagger.hash(mix_words(framed, arc as u64, round as u64));
                            let len = framed[0] as usize;
                            if tag[0] == expect && len <= self.words_per_message {
                                decrypted.send(&g, u, v, &framed[1..1 + len]);
                            }
                        }
                    }
                }
            }
            alg.receive(round, &decrypted);
        }
        let simulation_rounds = net.round() - sim_start;

        (
            alg.outputs(),
            SecureCompilerReport {
                local_key_rounds,
                global_key_rounds,
                simulation_rounds,
                congestion: cong,
            },
        )
    }
}

fn mix_words(words: &[u64], arc: u64, round: u64) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ arc.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = h.wrapping_add(round.wrapping_mul(0x94D0_49BB_1331_11EB));
    for &w in words {
        h ^= w;
        h = h.rotate_left(29).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    }
    h
}

/// Verify a tree packing is usable for the secure broadcast (at least one tree
/// avoids every set of `f` edges — equivalently `k > η·f`).
pub fn broadcast_packing_is_sufficient(
    packing: &TreePacking,
    g: &netgraph::Graph,
    f: usize,
) -> bool {
    packing.len() > packing.load(g) * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{ConvergecastSum, FloodBroadcast};
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
    use congest_sim::run_fault_free;
    use netgraph::generators;

    fn eaves_net(g: netgraph::Graph, f: usize, seed: u64) -> Network {
        Network::new(
            g,
            AdversaryRole::Eavesdropper,
            Box::new(RandomMobile::new(f, seed)),
            CorruptionBudget::Mobile { f },
            seed,
        )
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let g = generators::complete(8);
        let mut net = eaves_net(g.clone(), 2, 3);
        let secret = vec![0xAAAA_BBBB, 0x1234];
        let (recovered, report) = mobile_secure_broadcast(&mut net, 0, &secret, 2, 17);
        assert!(report.all_recovered, "not all nodes recovered the secret");
        for r in recovered {
            assert_eq!(r, Some(secret.clone()));
        }
        assert!(report.shares > 2 * 2);
    }

    #[test]
    fn broadcast_on_well_connected_sparse_graph() {
        let g = generators::circulant(12, 3);
        let mut net = eaves_net(g.clone(), 1, 4);
        let secret = vec![7u64];
        let (_, report) = mobile_secure_broadcast(&mut net, 0, &secret, 1, 5);
        assert!(report.all_recovered);
    }

    #[test]
    fn broadcast_secret_never_appears_in_view() {
        let g = generators::complete(7);
        let mut net = eaves_net(g.clone(), 2, 8);
        let secret = vec![0x5EC2_E700_0042u64];
        let (_, report) = mobile_secure_broadcast(&mut net, 0, &secret, 2, 23);
        assert!(report.all_recovered);
        for entry in &net.view_log().entries {
            for p in [&entry.forward, &entry.backward].into_iter().flatten() {
                assert!(!p.contains(&secret[0]), "secret word observed in the clear");
            }
        }
    }

    #[test]
    #[should_panic]
    fn broadcast_rejects_empty_secret() {
        let g = generators::complete(4);
        let mut net = eaves_net(g, 1, 1);
        let _ = mobile_secure_broadcast(&mut net, 0, &[], 1, 1);
    }

    #[test]
    fn packing_sufficiency_check() {
        let g = generators::complete(8);
        let packing = netgraph::tree_packing::star_packing(&g, 0);
        assert!(broadcast_packing_is_sufficient(&packing, &g, 3));
        assert!(!broadcast_packing_is_sufficient(&packing, &g, 4));
    }

    #[test]
    fn congestion_compiler_preserves_outputs() {
        let g = generators::complete(6);
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 777));
        let compiler = CongestionSensitiveCompiler::new(1, 2, 31);
        let mut net = eaves_net(g.clone(), 1, 6);
        let (out, report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, 777), &mut net, 0);
        assert_eq!(out, expected);
        assert!(report.simulation_rounds >= FloodBroadcast::new(g, 0, 777).rounds());
    }

    #[test]
    fn congestion_compiler_hides_traffic_pattern_and_payloads() {
        // With the compiler every edge carries the same-width message every
        // round, so the view has no silent edges and never the plaintext value.
        let g = generators::complete(5);
        let value = 0x0BAD_CAFE_u64;
        let compiler = CongestionSensitiveCompiler::new(1, 2, 5);
        let mut net = eaves_net(g.clone(), 1, 2);
        let (out, _) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, value), &mut net, 0);
        assert!(out.iter().all(|o| o == &vec![value]));
        for entry in &net.view_log().entries {
            for p in [&entry.forward, &entry.backward].into_iter().flatten() {
                assert!(!p.contains(&value), "payload leaked in the clear");
            }
        }
    }

    #[test]
    fn congestion_compiler_on_aggregation_payload() {
        let g = generators::complete(6);
        let inputs: Vec<u64> = (1..=6).collect();
        let expected = run_fault_free(&mut ConvergecastSum::new(g.clone(), 0, inputs.clone()));
        let compiler = CongestionSensitiveCompiler::new(1, 2, 77);
        let mut net = eaves_net(g.clone(), 1, 9);
        let (out, _) = compiler.run(&mut ConvergecastSum::new(g.clone(), 0, inputs), &mut net, 0);
        assert_eq!(out, expected);
    }
}
