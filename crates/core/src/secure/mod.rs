//! Security against mobile eavesdroppers (Section 2, Appendix A).

pub mod broadcast;
pub mod keys;
pub mod static_to_mobile;
pub mod unicast;

pub use broadcast::{
    mobile_secure_broadcast, CongestionSensitiveCompiler, SecureBroadcastReport,
    SecureCompilerReport,
};
pub use keys::KeyPool;
pub use static_to_mobile::{MobileSecureReport, StaticToMobileCompiler};
pub use unicast::{
    mobile_secure_multicast, mobile_secure_unicast, plain_unicast_baseline, UnicastInstance,
    UnicastReport,
};
