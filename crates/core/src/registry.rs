//! The compiler registry: one entry point resolving a serializable
//! [`CompilerDef`] into a live [`Compiler`] instance.
//!
//! Before this module, the def → instance glue was spread over
//! `CompilerDef::build`, `CompilerDef::to_spec` and per-call-site adapter
//! constructors.  [`instantiate`] is now the single resolution path — `build`
//! and `to_spec` delegate here — and the [`Compiler`] impl on `CompilerDef`
//! itself lets builder code pass a def straight to
//! `ScenarioBuilder::compiled_with(def)` without ever naming an adapter type.

use async_exec::AsyncExecutor;

use crate::adapters::{
    CliqueAdapter, CompilerDef, CongestionSensitiveAdapter, CycleCoverAdapter, ExpanderAdapter,
    RewindAdapter, StaticToMobileAdapter, TreePackingAdapter,
};
use congest_sim::network::Network;
use congest_sim::scenario::{
    BoxedAlgorithm, CompileArtifacts, Compiler, CompilerKind, CompilerNotes, FaultFree,
    ScenarioError, Uncompiled,
};
use congest_sim::traffic::Output;
use congest_sim::AdversaryRole;
use netgraph::Graph;

/// Resolve `def` into one boxed compiler instance.
///
/// This is the only place in the workspace that maps def variants onto
/// adapter constructors; everything else (`CompilerDef::build`,
/// `CompilerDef::to_spec`, the spec layer, the `Compiler` impl on
/// `CompilerDef`) routes through it.
pub fn instantiate(def: &CompilerDef) -> Box<dyn Compiler> {
    match *def {
        CompilerDef::Uncompiled => Box::new(Uncompiled),
        CompilerDef::Async { ref schedule } => Box::new(AsyncExecutor::new(schedule.clone())),
        CompilerDef::FaultFree => Box::new(FaultFree),
        CompilerDef::Clique { f, seed } => Box::new(CliqueAdapter::new(f, seed)),
        CompilerDef::TreePacking {
            f,
            trees,
            seed,
            packing,
        } => {
            let adapter = TreePackingAdapter::new(f, seed).with_packing(packing);
            Box::new(match trees {
                Some(k) => adapter.with_trees(k),
                None => adapter,
            })
        }
        CompilerDef::CycleCover { f } => Box::new(CycleCoverAdapter::new(f)),
        CompilerDef::Expander {
            f,
            k,
            bfs_rounds,
            seed,
        } => Box::new(ExpanderAdapter::new(f, k, bfs_rounds, seed)),
        CompilerDef::Rewind { f, seed } => Box::new(RewindAdapter::new(f, seed)),
        CompilerDef::StaticToMobile { t, words, seed } => {
            Box::new(StaticToMobileAdapter::new(t, words, seed))
        }
        CompilerDef::CongestionSensitive { f, words, seed } => {
            Box::new(CongestionSensitiveAdapter::new(f, words, seed))
        }
    }
}

/// A [`CompilerDef`] *is* a compiler: every trait method delegates to the
/// instance [`instantiate`] resolves.  Adapters are stateless parameter
/// holders, so resolving per call changes nothing observable — it just lets
/// `ScenarioBuilder::compiled_with(def)` and grid code stay def-first.
impl Compiler for CompilerDef {
    fn name(&self) -> String {
        instantiate(self).name()
    }
    fn kind(&self) -> CompilerKind {
        // The inherent `CompilerDef::kind` — already the adapter's kind.
        CompilerDef::kind(self)
    }
    fn compile(
        &self,
        payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        instantiate(self).compile(payload, net)
    }
    fn compile_replayable(
        &self,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        instantiate(self).compile_replayable(make, net)
    }
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        instantiate(self).prepare(graph, tracer)
    }
    fn execute(
        &self,
        artifacts: &CompileArtifacts,
        payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        instantiate(self).execute(artifacts, payload, net)
    }
    fn execute_replayable(
        &self,
        artifacts: &CompileArtifacts,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        instantiate(self).execute_replayable(artifacts, make, net)
    }
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        instantiate(self).validate(graph, role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::FloodBroadcast;
    use congest_sim::adversary::{CorruptionBudget, RandomMobile};
    use congest_sim::scenario::Scenario;
    use netgraph::generators;

    #[test]
    fn defs_pass_directly_to_compiled_with() {
        // The whole point of the registry satellite: no adapter type named.
        let g = generators::complete(8);
        let payload_graph = g.clone();
        let report = Scenario::on(g)
            .payload(move || FloodBroadcast::new(payload_graph.clone(), 0, 7))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 5),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(5)
            .compiled_with(CompilerDef::Clique { f: 1, seed: 5 })
            .run()
            .unwrap();
        assert_eq!(report.compiler, "clique(f=1)");
    }

    #[test]
    fn def_trait_surface_matches_the_instantiated_adapter() {
        let defs = [
            CompilerDef::Uncompiled,
            CompilerDef::FaultFree,
            CompilerDef::Clique { f: 1, seed: 9 },
            CompilerDef::TreePacking {
                f: 1,
                trees: None,
                seed: 9,
                packing: netgraph::PackingVersion::default(),
            },
            CompilerDef::CycleCover { f: 1 },
            CompilerDef::Rewind { f: 1, seed: 9 },
            CompilerDef::StaticToMobile {
                t: 4,
                words: 2,
                seed: 9,
            },
        ];
        for def in defs {
            let built = instantiate(&def);
            assert_eq!(Compiler::name(&def), built.name());
            assert_eq!(Compiler::kind(&def), built.kind());
        }
    }

    #[test]
    fn def_prepare_matches_the_adapter_prepare() {
        let g = generators::circulant(12, 3);
        let def = CompilerDef::TreePacking {
            f: 1,
            trees: Some(9),
            seed: 3,
            packing: netgraph::PackingVersion::V2Augmented,
        };
        let mut tracer = obs::TraceSpec::off().build_tracer();
        let via_def = Compiler::prepare(&def, &g, &mut tracer).unwrap();
        let via_adapter = instantiate(&def).prepare(&g, &mut tracer).unwrap();
        assert_eq!(
            format!("{via_def:?}"),
            format!("{via_adapter:?}"),
            "def-routed and adapter-routed artifacts must agree"
        );
    }
}
