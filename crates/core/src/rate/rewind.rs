//! The round-error-rate compiler (Theorem 4.1): rewind-if-error over a tree
//! packing.
//!
//! The adversary may now corrupt `f` edges per round *on average* — quiet
//! stretches followed by bursts.  A fixed per-round correction budget can be
//! overwhelmed by a burst, so the compiler verifies, after every simulated
//! ("global") round, whether the network's view of the transcript is still
//! consistent, and rewinds the last committed round whenever it is not:
//!
//! * **round-initialisation** — the next round's messages are repeated `2t`
//!   times and received by majority (bursts must now spend `t` corruptions per
//!   message they want to flip),
//! * **message correction** — the `d`-message correction procedure (Lemma 4.2,
//!   here the sparse-majority correction over the packing),
//! * **rewind-if-error** — transcript hashes are compared and a global
//!   `GoodState` bit plus the maximum transcript length are aggregated over the
//!   packing's trees (majority of RS-compiled instances); on `GoodState = 0`
//!   the last committed round is popped.
//!
//! > **Substitution note** (see DESIGN.md): the paper lets different nodes sit
//! > at different local rounds; this reproduction keeps the network
//! > synchronised (the rewind decision is global), which preserves the
//! > potential-function behaviour — good global rounds add progress, bursty
//! > ones cost at most a constant — at the price of a slightly larger constant
//! > in the round overhead.
//!
//! The protected algorithm is supplied as a *factory* because rewinding means
//! re-simulating it from the committed transcript prefix.

use crate::resilient::correction::{sparse_majority_correction_ctx, CorrectionContext};
use congest_sim::network::Network;
use congest_sim::traffic::{Output, Traffic};
use congest_sim::CongestAlgorithm;
use interactive_coding::RsScheduler;
use netgraph::tree_packing::TreePacking;

/// Report of a rewind-compiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewindReport {
    /// Number of global rounds executed.
    pub global_rounds: usize,
    /// Number of rewinds performed.
    pub rewinds: usize,
    /// Committed simulated rounds at the end (should equal the payload's round count).
    pub committed_rounds: usize,
    /// The committed-prefix length after every global round (the potential trace).
    pub progress_trace: Vec<usize>,
    /// Total network rounds consumed.
    pub network_rounds: usize,
    /// Whether the payload completed all of its rounds.
    pub completed: bool,
}

/// The Theorem 4.1 compiler.
pub struct RewindCompiler {
    packing: TreePacking,
    /// Average per-round corruption bound `f` being defended against.
    pub f: usize,
    /// Repetition factor for the round-initialisation phase.
    pub repetitions: usize,
    /// Safety factor on the number of global rounds (the paper uses 5).
    pub slack: usize,
    /// Randomness seed.
    pub seed: u64,
}

impl RewindCompiler {
    /// Create a rewind compiler over the given packing.
    pub fn new(packing: TreePacking, f: usize, seed: u64) -> Self {
        RewindCompiler {
            packing,
            f,
            repetitions: 3,
            slack: 5,
            seed,
        }
    }

    /// Run the compiled algorithm.  `make_alg` must return a fresh instance of
    /// the payload algorithm each time it is called (rewinding re-simulates the
    /// committed prefix).
    pub fn run<A, F>(&self, make_alg: F, net: &mut Network) -> (Vec<Output>, RewindReport)
    where
        A: CongestAlgorithm,
        F: Fn() -> A,
    {
        let g = net.graph().clone();
        let start = net.round();
        let r = make_alg().rounds();
        let global_rounds = self.slack * r.max(1);
        let dtp = self.packing.max_height().max(1);
        // Correction state (schedule plan, spanning flags, broadcast code) is a
        // pure function of `(g, packing)` — build it once, not per global round.
        let ctx = CorrectionContext::new(&g, &self.packing);
        let plan = interactive_coding::SchedulePlan::new(&g, &self.packing);

        // committed[j] = the (corrected) traffic delivered in simulated round j.
        let mut committed: Vec<Traffic> = Vec::new();
        let mut rewinds = 0usize;
        let mut progress_trace = Vec::with_capacity(global_rounds);

        for _global in 0..global_rounds {
            if committed.len() >= r {
                progress_trace.push(committed.len());
                continue;
            }
            let sim_round = committed.len();

            // Recompute the intended messages of `sim_round` from the committed prefix.
            let mut replay = make_alg();
            for (j, delivered) in committed.iter().enumerate() {
                let _ = replay.send(j);
                replay.receive(j, delivered);
            }
            let intended = replay.send(sim_round);

            // Phase A: round-initialisation — repeat the exchange and take the
            // per-arc majority.
            let mut copies: Vec<Traffic> = Vec::with_capacity(self.repetitions);
            for _ in 0..self.repetitions.max(1) {
                copies.push(net.exchange(intended.clone()));
            }
            let mut majority = Traffic::new(&g);
            for arc in 0..g.arc_count() {
                let mut counts: std::collections::HashMap<Option<&[u64]>, usize> =
                    std::collections::HashMap::new();
                for c in &copies {
                    *counts.entry(c.get_arc(arc)).or_insert(0) += 1;
                }
                if let Some((val, _)) = counts.into_iter().max_by_key(|(_, c)| *c) {
                    majority.set_arc(arc, val);
                }
            }

            // Phase B: message correction (Lemma 4.2).
            net.tracer_mut().span_open(obs::Phase::Correction);
            let (corrected, _rep) = sparse_majority_correction_ctx(
                net,
                &ctx,
                &self.packing,
                &intended,
                &majority,
                8 * self.f.max(1) * (intended.max_words().max(1) + 1),
                self.seed ^ ((sim_round as u64) << 18),
            );
            net.tracer_mut().span_close(obs::Phase::Correction);

            // Phase C: rewind-if-error — verify the whole committed prefix plus
            // the new round, with the verdict aggregated over the packing's trees.
            let honest_good =
                corrected.agrees_with(&intended) && prefix_consistent(&committed, &make_alg);
            let sched = RsScheduler.run_planned(net, &self.packing, &plan, dtp + 2);
            let verdict_trustworthy = 2 * sched.success_count() > self.packing.len();
            let good_state = if verdict_trustworthy {
                honest_good
            } else {
                // The adversary controls the verdict: the worst it can do is lie.
                !honest_good
            };

            if good_state {
                committed.push(corrected);
            } else if !committed.is_empty() && !honest_good {
                committed.pop();
                rewinds += 1;
            } else if !honest_good {
                // Nothing to rewind; the round is simply retried.
                rewinds += 1;
            } else {
                // A corrupted verdict rejected a good round: retry (counts as a rewind).
                rewinds += 1;
            }
            if !good_state {
                net.tracer_mut().point(obs::EventKind::RewindTriggered {
                    committed: committed.len(),
                });
            }
            progress_trace.push(committed.len());
        }

        // Deliver the committed transcript to a fresh payload instance.
        let completed = committed.len() >= r;
        let mut final_alg = make_alg();
        for (j, delivered) in committed.iter().take(r).enumerate() {
            let _ = final_alg.send(j);
            final_alg.receive(j, delivered);
        }
        let report = RewindReport {
            global_rounds,
            rewinds,
            committed_rounds: committed.len(),
            progress_trace,
            network_rounds: net.round() - start,
            completed,
        };
        (final_alg.outputs(), report)
    }
}

/// Whether every committed round's traffic equals what the payload would have
/// sent given the preceding committed rounds (the transcript-hash check of the
/// rewind phase, evaluated on the ground truth).
fn prefix_consistent<A, F>(committed: &[Traffic], make_alg: &F) -> bool
where
    A: CongestAlgorithm,
    F: Fn() -> A,
{
    let mut replay = make_alg();
    for (j, delivered) in committed.iter().enumerate() {
        let intended = replay.send(j);
        // The committed traffic may legitimately differ from `intended` only by
        // having *no more* information (e.g. dropped empty slots); any arc whose
        // committed value is present but different from the intended one marks
        // an inconsistent prefix.
        for (arc, payload) in delivered.iter_present() {
            if intended.get_arc(arc) != Some(payload) {
                return false;
            }
        }
        for (arc, payload) in intended.iter_present() {
            if delivered.get_arc(arc) != Some(payload) {
                let _ = payload;
                return false;
            }
        }
        replay.receive(j, delivered);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{FloodBroadcast, LeaderElection};
    use congest_sim::adversary::{AdversaryRole, BurstAdversary, CorruptionBudget, RandomMobile};
    use congest_sim::run_fault_free;
    use netgraph::generators;
    use netgraph::tree_packing::star_packing;

    #[test]
    fn rewind_compiler_fault_free() {
        let g = generators::complete(10);
        let packing = star_packing(&g, 0);
        let compiler = RewindCompiler::new(packing, 1, 3);
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let mut net = Network::fault_free(g.clone());
        let (out, report) = compiler.run(|| LeaderElection::new(g.clone()), &mut net);
        assert_eq!(out, expected);
        assert!(report.completed);
        assert_eq!(report.rewinds, 0);
    }

    #[test]
    fn rewind_compiler_survives_bursts_within_budget() {
        let g = generators::complete(14);
        let packing = star_packing(&g, 0);
        let f = 1;
        let r = FloodBroadcast::new(g.clone(), 0, 7).rounds();
        let compiler = RewindCompiler::new(packing, f, 5);
        // Round-error-rate budget: f per round on average over the whole
        // compiled execution, spent in bursts.
        let expected_network_rounds = 2000;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(BurstAdversary::new(40, 4, 12, 3)),
            CorruptionBudget::RoundErrorRate {
                total: f * expected_network_rounds / 10,
            },
            3,
        );
        let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, 7));
        let (out, report) = compiler.run(|| FloodBroadcast::new(g.clone(), 0, 7), &mut net);
        assert!(
            report.completed,
            "progress trace: {:?}",
            report.progress_trace
        );
        assert_eq!(out, expected);
        assert!(report.committed_rounds >= r);
    }

    #[test]
    fn rewind_compiler_with_steady_mobile_noise() {
        let g = generators::complete(12);
        let packing = star_packing(&g, 0);
        let f = 1;
        let compiler = RewindCompiler::new(packing, f, 9);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, 11)),
            CorruptionBudget::Mobile { f },
            11,
        );
        let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
        let (out, report) = compiler.run(|| LeaderElection::new(g.clone()), &mut net);
        assert!(report.completed);
        assert_eq!(out, expected);
    }

    #[test]
    fn progress_trace_is_monotone_up_to_rewinds() {
        let g = generators::complete(10);
        let packing = star_packing(&g, 0);
        let compiler = RewindCompiler::new(packing, 1, 1);
        let mut net = Network::fault_free(g.clone());
        let (_, report) = compiler.run(|| LeaderElection::new(g.clone()), &mut net);
        for w in report.progress_trace.windows(2) {
            assert!(
                w[1] + 1 >= w[0],
                "progress may drop by at most 1 per global round"
            );
        }
    }
}
