//! Resilience to a bounded round-error corruption *rate* (Section 4).

pub mod rewind;

pub use rewind::{RewindCompiler, RewindReport};
