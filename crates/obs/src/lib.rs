//! Deterministic event tracing + per-phase profiling for the execution stack.
//!
//! The design separates two clocks:
//!
//! * **Virtual time** — the round index (synchronous networks) or tick index
//!   (the async executor).  It is the *only* clock that appears inside
//!   [`Event`]s, so a trace is a pure function of `(scenario, seed)`: the same
//!   run produces a byte-identical event stream at any campaign thread count,
//!   async host count, or wall-clock speed.
//! * **Wall time** — measured around phase spans with [`std::time::Instant`]
//!   and accumulated *out of band* into a [`PhaseProfile`].  Wall durations
//!   never enter the event stream and the profile's `Debug` form prints only
//!   span counts, so campaign fingerprints (which are `Debug`-derived) stay
//!   deterministic.
//!
//! Events are either phase **spans** ([`EventKind::SpanOpen`] /
//! [`EventKind::SpanClose`] around graph build, CSR indexing, packing
//! construction, key scheduling, per-round exchange, correction, decode) or
//! **points** (corruption applied, rewind triggered, augmenting-chain step,
//! async slot delivered/dropped/delayed, node crash/recover).
//!
//! Sinks implement [`TraceSink`]: [`NoopSink`] (discard), [`RingSink`]
//! (bounded, keeps the most recent events), [`JsonlSink`] (streams one JSON
//! object per line to any writer).  A [`SamplingPolicy`] bounds point-event
//! volume per class (keep 1-in-N plus a reservoir cap); span events are never
//! sampled out, so the open/close bracketing invariant survives sampling.
//!
//! The [`Tracer`] front end is branch-cheap when disabled: every method
//! early-returns on a single `bool`, takes no [`std::time::Instant`], and
//! allocates nothing, which is what keeps the no-op configuration within the
//! ≤ 1 % overhead budget on the E16 grid.
//!
//! ```
//! use obs::{Event, EventKind, Phase, Tracer, TraceSpec};
//!
//! let mut tracer = TraceSpec::ring().build_tracer();
//! tracer.set_time(0);
//! tracer.span_open(Phase::Packing);
//! tracer.point(EventKind::AugmentingChainStep { step: 0 });
//! tracer.span_close(Phase::Packing);
//! let outcome = tracer.finish();
//! assert_eq!(outcome.stats.unclosed, 0);
//! assert_eq!(outcome.events.len(), 3);
//! assert_eq!(outcome.events[0], Event { time: 0, kind: EventKind::SpanOpen(Phase::Packing) });
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::time::Instant;

/// The instrumented phases of the execution stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph/network construction (adjacency, adversary state, buffers).
    GraphBuild,
    /// Forcing the CSR adjacency index of the graph.
    CsrIndex,
    /// Tree-packing (or star/cycle-cover) construction.
    Packing,
    /// One-time-pad key exchange + extraction (secure compilers).
    KeySchedule,
    /// One network round exchange (adversary interposition included).
    RoundExchange,
    /// Sketch-based message correction (majority or ℓ0-threshold).
    Correction,
    /// Root-side sketch decoding inside a correction.
    Decode,
}

/// Number of [`Phase`] variants (array-indexed profiles).
pub const PHASE_COUNT: usize = 7;

impl Phase {
    /// All phases, in profile-table order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::GraphBuild,
        Phase::CsrIndex,
        Phase::Packing,
        Phase::KeySchedule,
        Phase::RoundExchange,
        Phase::Correction,
        Phase::Decode,
    ];

    /// Stable snake_case name used in JSONL output and profile tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::GraphBuild => "graph_build",
            Phase::CsrIndex => "csr_index",
            Phase::Packing => "packing",
            Phase::KeySchedule => "key_schedule",
            Phase::RoundExchange => "round_exchange",
            Phase::Correction => "correction",
            Phase::Decode => "decode",
        }
    }

    /// Dense index into per-phase arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Sampling classes for point events.  Spans form their own class and are
/// never sampled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Span open/close events.
    Span,
    /// Adversary corruption applications.
    Corruption,
    /// Rewind-compiler rewinds.
    Rewind,
    /// Tree-packing augmenting-chain steps.
    Augment,
    /// Async per-arc slot outcomes (delivered/dropped/delayed).
    Slot,
    /// Async node crash/recover transitions.
    Node,
}

/// Number of [`EventClass`] variants.
pub const CLASS_COUNT: usize = 6;

/// A typed trace event.  Carries **virtual time only** — never wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A phase span begins.
    SpanOpen(Phase),
    /// A phase span ends.
    SpanClose(Phase),
    /// The adversary touched an edge this round (eavesdrop or corrupt).
    CorruptionApplied {
        /// Undirected edge id.
        edge: usize,
    },
    /// The rewind compiler popped (or retried) a committed round.
    RewindTriggered {
        /// Committed-prefix length *after* the rewind decision.
        committed: usize,
    },
    /// One successful augmenting-chain improvement in tree-packing v2.
    AugmentingChainStep {
        /// Improvement-round index within `improve_packing`.
        step: usize,
    },
    /// The async executor delivered a queued slot into an exchange.
    SlotDelivered {
        /// Directed arc id.
        arc: usize,
    },
    /// The async executor dropped a send (loss schedule).
    SlotDropped {
        /// Directed arc id.
        arc: usize,
    },
    /// The async executor deferred a send past its issue tick.
    SlotDelayed {
        /// Directed arc id.
        arc: usize,
    },
    /// A node crashed (async crash schedule).
    NodeCrash {
        /// Node id.
        node: usize,
    },
    /// A crashed node recovered.
    NodeRecover {
        /// Node id.
        node: usize,
    },
}

impl EventKind {
    /// The sampling class of this event.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::SpanOpen(_) | EventKind::SpanClose(_) => EventClass::Span,
            EventKind::CorruptionApplied { .. } => EventClass::Corruption,
            EventKind::RewindTriggered { .. } => EventClass::Rewind,
            EventKind::AugmentingChainStep { .. } => EventClass::Augment,
            EventKind::SlotDelivered { .. }
            | EventKind::SlotDropped { .. }
            | EventKind::SlotDelayed { .. } => EventClass::Slot,
            EventKind::NodeCrash { .. } | EventKind::NodeRecover { .. } => EventClass::Node,
        }
    }
}

/// A trace event stamped with virtual time (round or tick index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time: the round index (synchronous) or tick index (async).
    pub time: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Stable one-line JSON encoding (field order is part of the format).
    pub fn to_json_line(&self) -> String {
        let t = self.time;
        match self.kind {
            EventKind::SpanOpen(p) => {
                format!(
                    "{{\"t\":{t},\"ev\":\"span_open\",\"phase\":\"{}\"}}",
                    p.name()
                )
            }
            EventKind::SpanClose(p) => {
                format!(
                    "{{\"t\":{t},\"ev\":\"span_close\",\"phase\":\"{}\"}}",
                    p.name()
                )
            }
            EventKind::CorruptionApplied { edge } => {
                format!("{{\"t\":{t},\"ev\":\"corruption\",\"edge\":{edge}}}")
            }
            EventKind::RewindTriggered { committed } => {
                format!("{{\"t\":{t},\"ev\":\"rewind\",\"committed\":{committed}}}")
            }
            EventKind::AugmentingChainStep { step } => {
                format!("{{\"t\":{t},\"ev\":\"augment\",\"step\":{step}}}")
            }
            EventKind::SlotDelivered { arc } => {
                format!("{{\"t\":{t},\"ev\":\"slot_delivered\",\"arc\":{arc}}}")
            }
            EventKind::SlotDropped { arc } => {
                format!("{{\"t\":{t},\"ev\":\"slot_dropped\",\"arc\":{arc}}}")
            }
            EventKind::SlotDelayed { arc } => {
                format!("{{\"t\":{t},\"ev\":\"slot_delayed\",\"arc\":{arc}}}")
            }
            EventKind::NodeCrash { node } => {
                format!("{{\"t\":{t},\"ev\":\"crash\",\"node\":{node}}}")
            }
            EventKind::NodeRecover { node } => {
                format!("{{\"t\":{t},\"ev\":\"recover\",\"node\":{node}}}")
            }
        }
    }
}

/// Where recorded events go.
pub trait TraceSink: Send {
    /// Record one event (already past sampling).
    fn record(&mut self, event: &Event);
    /// Flush any buffered output.
    fn flush(&mut self) {}
    /// Drain retained events, if this sink retains any.
    fn take_events(&mut self) -> Option<Vec<Event>> {
        None
    }
    /// Events the *sink* discarded (e.g. ring eviction), beyond sampling.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _event: &Event) {}
}

/// Bounded in-memory ring: keeps the most recent `cap` events and counts
/// evictions.  The default sink for campaign cells — worker threads never
/// touch the filesystem.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    events: VecDeque<Event>,
    evicted: u64,
}

impl RingSink {
    /// A ring retaining at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            events: VecDeque::new(),
            evicted: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(*event);
    }

    fn take_events(&mut self) -> Option<Vec<Event>> {
        Some(std::mem::take(&mut self.events).into())
    }

    fn dropped(&self) -> u64 {
        self.evicted
    }
}

/// Streams one JSON object per line to a writer.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    lines: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0 }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // I/O errors must not abort a simulation; the line counter lets
        // callers detect short writes if they care.
        if writeln!(self.writer, "{}", event.to_json_line()).is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Deterministic per-class sampling: keep every `N`-th point event of a class
/// (counting from the first, which is always kept) up to a reservoir `cap`,
/// then drop the rest.  Spans bypass sampling entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPolicy {
    /// Keep 1-in-`keep_every` point events per class (1 = keep all).
    pub keep_every: u32,
    /// Hard cap on kept point events per class.
    pub cap: u64,
}

impl SamplingPolicy {
    /// Keep every point event, unbounded.
    pub fn keep_all() -> Self {
        SamplingPolicy {
            keep_every: 1,
            cap: u64::MAX,
        }
    }

    /// Keep 1-in-`keep_every` per class, at most `cap` per class.
    pub fn sampled(keep_every: u32, cap: u64) -> Self {
        SamplingPolicy {
            keep_every: keep_every.max(1),
            cap,
        }
    }
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy::keep_all()
    }
}

/// Per-phase wall-clock aggregate.  Wall nanos live *only* here — events and
/// the `Debug` form (used by campaign fingerprints) carry span counts only.
#[derive(Clone, Copy, Default)]
pub struct PhaseProfile {
    counts: [u64; PHASE_COUNT],
    nanos: [u128; PHASE_COUNT],
}

impl PhaseProfile {
    /// Record one closed span of `phase` lasting `nanos` wall-nanoseconds.
    pub fn add(&mut self, phase: Phase, nanos: u128) {
        self.counts[phase.index()] += 1;
        self.nanos[phase.index()] += nanos;
    }

    /// Fold another profile into this one (campaign-level aggregation).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..PHASE_COUNT {
            self.counts[i] += other.counts[i];
            self.nanos[i] += other.nanos[i];
        }
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Closed-span count for a phase.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Accumulated wall nanos for a phase.
    pub fn nanos(&self, phase: Phase) -> u128 {
        self.nanos[phase.index()]
    }

    /// `(phase name, span count, wall nanos)` for every phase with activity.
    pub fn rows(&self) -> Vec<(&'static str, u64, u128)> {
        Phase::ALL
            .iter()
            .filter(|p| self.counts[p.index()] > 0)
            .map(|&p| (p.name(), self.counts[p.index()], self.nanos[p.index()]))
            .collect()
    }
}

impl fmt::Debug for PhaseProfile {
    /// Deterministic: span counts only, never wall durations.  Campaign
    /// fingerprints are `format!("{:?}")` over cells, so durations here would
    /// break the equal-at-any-thread-count invariant.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhaseProfile{{")?;
        let mut first = true;
        for p in Phase::ALL {
            let c = self.counts[p.index()];
            if c > 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}:{}", p.name(), c)?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

/// Bookkeeping counters for one tracer's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events offered to the tracer while enabled.
    pub offered: u64,
    /// Events that reached the sink.
    pub recorded: u64,
    /// Point events suppressed by the sampling policy.
    pub sampled_out: u64,
    /// Events the sink itself discarded (ring eviction).
    pub sink_dropped: u64,
    /// Spans still open when the tracer finished.
    pub unclosed: u64,
    /// `span_close` calls that did not match the innermost open span.
    pub mismatched: u64,
}

/// Everything a finished tracer yields: the retained event stream (ring
/// sinks), the wall-clock profile, and the counters.
#[derive(Clone, Default)]
pub struct RunTrace {
    /// Retained events (empty for no-op and writer sinks).
    pub events: Vec<Event>,
    /// Out-of-band per-phase wall profile.
    pub profile: PhaseProfile,
    /// Lifetime counters.
    pub stats: TraceStats,
}

impl RunTrace {
    /// FNV-1a digest over the JSONL encoding of the retained events.
    /// Deterministic for deterministic streams; used by `Debug` so campaign
    /// fingerprints cover the trace without embedding megabytes of events.
    pub fn events_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for ev in &self.events {
            for b in ev.to_json_line().as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= b'\n' as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serialize the retained events as JSONL.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for ev in &self.events {
            writeln!(w, "{}", ev.to_json_line())?;
        }
        Ok(())
    }

    /// Number of retained events of one sampling class — the facet counters
    /// downstream scoring reads (e.g. the red-team `Fitness` lattice counts
    /// [`EventClass::Rewind`] triggers and [`EventClass::Corruption`]
    /// applications).  Counts **retained** events only: ring eviction or
    /// sampling reduce it, so score with keep-all policies.
    pub fn class_count(&self, class: EventClass) -> usize {
        self.events
            .iter()
            .filter(|ev| ev.kind.class() == class)
            .count()
    }
}

impl fmt::Debug for RunTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RunTrace{{events:{} digest:{:016x} stats:{:?}}}",
            self.events.len(),
            self.events_digest(),
            self.stats
        )
    }
}

/// How a scenario or campaign should trace.  `Copy` so it threads through
/// builder APIs without ceremony.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Whether tracing is on at all (off ⇒ the no-op fast path).
    pub enabled: bool,
    /// Ring capacity for the per-run sink.
    pub ring_cap: usize,
    /// Point-event sampling policy.
    pub sampling: SamplingPolicy,
}

impl TraceSpec {
    /// Tracing off: the disabled tracer, no timing, no events.
    pub fn off() -> Self {
        TraceSpec {
            enabled: false,
            ring_cap: 0,
            sampling: SamplingPolicy::keep_all(),
        }
    }

    /// Ring-buffer tracing with default bounds (64 Ki events, keep-all).
    pub fn ring() -> Self {
        TraceSpec {
            enabled: true,
            ring_cap: 1 << 16,
            sampling: SamplingPolicy::keep_all(),
        }
    }

    /// Ring-buffer tracing with an explicit sampling policy.
    pub fn ring_sampled(keep_every: u32, cap: u64) -> Self {
        TraceSpec {
            enabled: true,
            ring_cap: 1 << 16,
            sampling: SamplingPolicy::sampled(keep_every, cap),
        }
    }

    /// Build the tracer this spec describes.
    pub fn build_tracer(&self) -> Tracer {
        if self.enabled {
            Tracer::new(Box::new(RingSink::new(self.ring_cap)), self.sampling)
        } else {
            Tracer::disabled()
        }
    }
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec::off()
    }
}

/// The instrumentation front end.  One per `Network`; all methods early-return
/// when disabled (no `Instant::now()`, no allocation).
pub struct Tracer {
    enabled: bool,
    time: u64,
    sink: Box<dyn TraceSink>,
    policy: SamplingPolicy,
    seen: [u64; CLASS_COUNT],
    kept: [u64; CLASS_COUNT],
    open: Vec<(Phase, Instant)>,
    profile: PhaseProfile,
    stats: TraceStats,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tracer{{enabled:{} time:{} stats:{:?}}}",
            self.enabled, self.time, self.stats
        )
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The no-op tracer: every call is a single branch.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            time: 0,
            sink: Box::new(NoopSink),
            policy: SamplingPolicy::keep_all(),
            seen: [0; CLASS_COUNT],
            kept: [0; CLASS_COUNT],
            open: Vec::new(),
            profile: PhaseProfile::default(),
            stats: TraceStats::default(),
        }
    }

    /// An enabled tracer over an arbitrary sink.
    pub fn new(sink: Box<dyn TraceSink>, policy: SamplingPolicy) -> Self {
        Tracer {
            enabled: true,
            time: 0,
            sink,
            policy,
            seen: [0; CLASS_COUNT],
            kept: [0; CLASS_COUNT],
            open: Vec::with_capacity(8),
            profile: PhaseProfile::default(),
            stats: TraceStats::default(),
        }
    }

    /// Whether events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Set the virtual clock (round or tick index).
    #[inline]
    pub fn set_time(&mut self, time: u64) {
        if self.enabled {
            self.time = time;
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn time(&self) -> u64 {
        self.time
    }

    fn emit(&mut self, kind: EventKind) {
        self.stats.offered += 1;
        let ev = Event {
            time: self.time,
            kind,
        };
        self.sink.record(&ev);
        self.stats.recorded += 1;
    }

    /// Open a phase span.  Spans are never sampled out.
    #[inline]
    pub fn span_open(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        self.emit(EventKind::SpanOpen(phase));
        self.open.push((phase, Instant::now()));
    }

    /// Close a phase span, folding its wall duration into the profile.
    #[inline]
    pub fn span_close(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        match self.open.pop() {
            Some((p, started)) if p == phase => {
                self.profile.add(phase, started.elapsed().as_nanos());
            }
            Some((p, started)) => {
                // Mismatched nesting: attribute the time to the span actually
                // on top, count the mismatch, and keep going.
                self.stats.mismatched += 1;
                self.profile.add(p, started.elapsed().as_nanos());
            }
            None => {
                self.stats.mismatched += 1;
            }
        }
        self.emit(EventKind::SpanClose(phase));
    }

    /// Record a point event, subject to the sampling policy.
    #[inline]
    pub fn point(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let class = kind.class() as usize;
        let n = self.seen[class];
        self.seen[class] += 1;
        if !n.is_multiple_of(self.policy.keep_every as u64) || self.kept[class] >= self.policy.cap {
            self.stats.offered += 1;
            self.stats.sampled_out += 1;
            return;
        }
        self.kept[class] += 1;
        self.emit(kind);
    }

    /// Wall-clock profile accumulated so far.
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Lifetime counters so far (unclosed not yet folded in).
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Finish: flush the sink, count still-open spans as unclosed, and return
    /// the retained events + profile + stats.
    pub fn finish(mut self) -> RunTrace {
        self.stats.unclosed = self.open.len() as u64;
        self.stats.sink_dropped = self.sink.dropped();
        self.sink.flush();
        RunTrace {
            events: self.sink.take_events().unwrap_or_default(),
            profile: self.profile,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.set_time(9);
        t.span_open(Phase::RoundExchange);
        t.point(EventKind::CorruptionApplied { edge: 1 });
        t.span_close(Phase::RoundExchange);
        let out = t.finish();
        assert!(out.events.is_empty());
        assert_eq!(out.stats, TraceStats::default());
        assert!(out.profile.is_empty());
    }

    #[test]
    fn span_bracketing_and_profile_counts() {
        let mut t = TraceSpec::ring().build_tracer();
        t.span_open(Phase::GraphBuild);
        t.span_close(Phase::GraphBuild);
        t.set_time(3);
        t.span_open(Phase::RoundExchange);
        t.span_close(Phase::RoundExchange);
        let out = t.finish();
        assert_eq!(out.stats.unclosed, 0);
        assert_eq!(out.stats.mismatched, 0);
        assert_eq!(out.profile.count(Phase::GraphBuild), 1);
        assert_eq!(out.profile.count(Phase::RoundExchange), 1);
        assert_eq!(out.events.len(), 4);
        assert_eq!(out.events[2].time, 3);
    }

    #[test]
    fn unclosed_spans_are_counted() {
        let mut t = TraceSpec::ring().build_tracer();
        t.span_open(Phase::Packing);
        let out = t.finish();
        assert_eq!(out.stats.unclosed, 1);
    }

    #[test]
    fn mismatched_close_is_counted_not_fatal() {
        let mut t = TraceSpec::ring().build_tracer();
        t.span_open(Phase::Correction);
        t.span_close(Phase::Decode);
        let out = t.finish();
        assert_eq!(out.stats.mismatched, 1);
        assert_eq!(out.stats.unclosed, 0);
    }

    #[test]
    fn sampling_keeps_one_in_n_with_cap() {
        let mut t = Tracer::new(
            Box::new(RingSink::new(1 << 10)),
            SamplingPolicy::sampled(3, 2),
        );
        for i in 0..10 {
            t.point(EventKind::SlotDelivered { arc: i });
        }
        let out = t.finish();
        // Kept: i = 0, 3 (cap of 2 reached); 6 and 9 hit the cap.
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.events[0].kind, EventKind::SlotDelivered { arc: 0 });
        assert_eq!(out.events[1].kind, EventKind::SlotDelivered { arc: 3 });
        assert_eq!(out.stats.sampled_out, 8);
    }

    #[test]
    fn spans_bypass_sampling() {
        let mut t = Tracer::new(
            Box::new(RingSink::new(64)),
            SamplingPolicy::sampled(1000, 0),
        );
        t.span_open(Phase::Packing);
        t.span_close(Phase::Packing);
        let out = t.finish();
        assert_eq!(out.events.len(), 2);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut t = Tracer::new(Box::new(RingSink::new(2)), SamplingPolicy::keep_all());
        for i in 0..5 {
            t.point(EventKind::SlotDropped { arc: i });
        }
        let out = t.finish();
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.events[0].kind, EventKind::SlotDropped { arc: 3 });
        assert_eq!(out.events[1].kind, EventKind::SlotDropped { arc: 4 });
        assert_eq!(out.stats.sink_dropped, 3);
    }

    #[test]
    fn jsonl_sink_writes_stable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for ev in [
            Event {
                time: 7,
                kind: EventKind::SpanOpen(Phase::Decode),
            },
            Event {
                time: 7,
                kind: EventKind::NodeCrash { node: 4 },
            },
            Event {
                time: 7,
                kind: EventKind::SpanClose(Phase::Decode),
            },
        ] {
            sink.record(&ev);
        }
        sink.flush();
        assert_eq!(sink.lines(), 3);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            text,
            "{\"t\":7,\"ev\":\"span_open\",\"phase\":\"decode\"}\n\
             {\"t\":7,\"ev\":\"crash\",\"node\":4}\n\
             {\"t\":7,\"ev\":\"span_close\",\"phase\":\"decode\"}\n"
        );
    }

    #[test]
    fn json_lines_cover_every_kind() {
        let kinds = [
            EventKind::SpanOpen(Phase::GraphBuild),
            EventKind::SpanClose(Phase::CsrIndex),
            EventKind::CorruptionApplied { edge: 1 },
            EventKind::RewindTriggered { committed: 2 },
            EventKind::AugmentingChainStep { step: 3 },
            EventKind::SlotDelivered { arc: 4 },
            EventKind::SlotDropped { arc: 5 },
            EventKind::SlotDelayed { arc: 6 },
            EventKind::NodeCrash { node: 7 },
            EventKind::NodeRecover { node: 8 },
        ];
        for kind in kinds {
            let line = Event { time: 1, kind }.to_json_line();
            assert!(line.starts_with("{\"t\":1,\"ev\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn profile_debug_prints_counts_not_nanos() {
        let mut p = PhaseProfile::default();
        p.add(Phase::Packing, 123_456_789);
        p.add(Phase::Packing, 1);
        let dbg = format!("{p:?}");
        assert_eq!(dbg, "PhaseProfile{packing:2}");
    }

    #[test]
    fn run_trace_digest_is_stream_stable() {
        let mk = || {
            let mut t = TraceSpec::ring().build_tracer();
            t.set_time(2);
            t.span_open(Phase::Correction);
            t.point(EventKind::RewindTriggered { committed: 1 });
            t.span_close(Phase::Correction);
            t.finish()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events_digest(), b.events_digest());
        let dbg = format!("{a:?}");
        assert!(dbg.contains("events:3"), "{dbg}");
    }

    #[test]
    fn profile_merge_accumulates() {
        let mut a = PhaseProfile::default();
        a.add(Phase::Decode, 10);
        let mut b = PhaseProfile::default();
        b.add(Phase::Decode, 5);
        b.add(Phase::Packing, 7);
        a.merge(&b);
        assert_eq!(a.count(Phase::Decode), 2);
        assert_eq!(a.nanos(Phase::Decode), 15);
        assert_eq!(a.count(Phase::Packing), 1);
        let rows = a.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "packing");
    }
}
