//! Property-based tests for the graph substrate.

use netgraph::connectivity::{edge_connectivity, edge_disjoint_paths};
use netgraph::cycle_cover::FtCycleCover;
use netgraph::generators;
use netgraph::graph::Graph;
use netgraph::spanning::bfs_tree;
use netgraph::traversal::{bfs, diameter, is_connected};
use netgraph::tree_packing::{
    augmented_low_depth_packing, greedy_low_depth_packing, load_floor, star_packing, PackingQuality,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    // Build a random connected graph: a random spanning path + extra random edges.
    (3usize..24, any::<u64>(), 0.0f64..0.6).prop_map(|(n, seed, extra_p)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = generators::path(n);
        let er = generators::erdos_renyi(&mut rng, n, extra_p);
        for e in er.edges() {
            g.add_edge(e.u, e.v);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(g in arb_connected_graph()) {
        let r = bfs(&g, 0);
        for e in g.edges() {
            let du = r.dist[e.u].unwrap();
            let dv = r.dist[e.v].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1, "adjacent nodes differ by more than 1");
        }
    }

    #[test]
    fn bfs_tree_is_spanning_and_shortest(g in arb_connected_graph()) {
        prop_assert!(is_connected(&g));
        let t = bfs_tree(&g, 0);
        prop_assert!(t.is_spanning(&g));
        let d = bfs(&g, 0);
        let depths = t.depths();
        for v in g.nodes() {
            prop_assert_eq!(depths[v].unwrap(), d.dist[v].unwrap());
        }
    }

    #[test]
    fn edge_connectivity_at_most_min_degree(g in arb_connected_graph()) {
        let lambda = edge_connectivity(&g);
        prop_assert!(lambda >= 1);
        prop_assert!(lambda <= g.min_degree());
    }

    #[test]
    fn disjoint_paths_are_edge_disjoint(g in arb_connected_graph(), a in 0usize..24, b in 0usize..24) {
        let n = g.node_count();
        let (a, b) = (a % n, b % n);
        if a != b {
            let paths = edge_disjoint_paths(&g, a, b, 4);
            let mut used = std::collections::HashSet::new();
            for p in &paths {
                prop_assert_eq!(p[0], a);
                prop_assert_eq!(*p.last().unwrap(), b);
                for w in p.windows(2) {
                    let e = g.edge_between(w[0], w[1]).expect("path uses a non-edge");
                    prop_assert!(used.insert(e), "edge reused across disjoint paths");
                }
            }
        }
    }

    #[test]
    fn greedy_packing_trees_span_and_height_bounded(g in arb_connected_graph(), k in 1usize..5) {
        let p = greedy_low_depth_packing(&g, 0, k, 2);
        let diam = diameter(&g).unwrap();
        for t in &p.trees {
            prop_assert!(t.is_spanning(&g));
            prop_assert!(t.height() <= g.node_count().max(diam));
        }
        prop_assert!(p.load(&g) <= k);
    }

    #[test]
    fn augmented_packing_never_worse_than_greedy(g in arb_connected_graph(), k in 2usize..10) {
        // The v2 contract: relative to the v1 greedy packing it starts from,
        // the repair pass never raises the maximum edge load, never lowers
        // the good-tree count, keeps every tree spanning, and never drops
        // below the information-theoretic load floor.
        let v1 = greedy_low_depth_packing(&g, 0, k, 2);
        let v2 = augmented_low_depth_packing(&g, 0, k, 2);
        prop_assert_eq!(v2.len(), v1.len());
        prop_assert!(v2.load(&g) <= v1.load(&g), "v2 raised the load");
        prop_assert!(v2.load(&g) >= load_floor(&g, k), "load floor is a true floor");
        for t in &v2.trees {
            prop_assert!(t.is_spanning(&g), "v2 lost a spanning tree");
            prop_assert_eq!(t.root, 0);
        }
        let diam = diameter(&g).unwrap();
        let budget = 3 * diam + 2; // the v2 construction budget incl. slack
        let q1 = PackingQuality::measure(&g, &v1, 0, budget);
        let q2 = PackingQuality::measure(&g, &v2, 0, budget);
        prop_assert!(q2.good_trees >= q1.good_trees, "v2 lowered the good-tree count");
        prop_assert!(q2.max_edge_load <= q1.max_edge_load);
        prop_assert!(q2.min_cut_usage >= q2.good_trees, "every good tree crosses the min cut");
        prop_assert_eq!(q2.load_floor, load_floor(&g, k));
    }

    #[test]
    fn star_packing_properties(n in 3usize..20, root in 0usize..20) {
        let root = root % n;
        let g = generators::complete(n);
        let p = star_packing(&g, root);
        prop_assert_eq!(p.len(), n);
        prop_assert_eq!(p.load(&g), 2);
        prop_assert!(p.max_height() <= 2);
        prop_assert!(p.is_weak_packing(&g, root, 2, 2));
    }

    #[test]
    fn cycle_cover_respects_connectivity(g in arb_connected_graph()) {
        let lambda = edge_connectivity(&g);
        if lambda >= 2 {
            let cover = FtCycleCover::build(&g, 2).expect("2-connected graph must have a 2-FT cover");
            prop_assert!(cover.verify(&g));
            let coloring = cover.good_coloring(&g);
            prop_assert!(netgraph::cycle_cover::verify_good_coloring(&cover, &g, &coloring));
        }
        // Asking for more paths than the connectivity supports must fail.
        prop_assert!(FtCycleCover::build(&g, g.min_degree() + 1).is_none());
    }
}
