//! Fault-tolerant (FT) cycle covers (Definition 8, Section 5 of the paper).
//!
//! A `k`-FT `(cong, dilation)` cycle cover supplies, for every edge `(u, v)`,
//! a set of `k` edge-disjoint `u`–`v` paths (one of which may be the edge
//! itself) of length at most `dilation`, such that every edge of the graph
//! appears on at most `cong` paths overall.  The Theorem 1.4 compiler floods
//! each payload message along all paths of its edge's path system and takes a
//! majority at the receiver; the *good cycle colouring* of Lemma 5.2 schedules
//! path systems so that systems processed together never share an edge.

use crate::connectivity::edge_disjoint_paths;
use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// A fault-tolerant cycle cover: a path system per edge.
#[derive(Debug, Clone)]
pub struct FtCycleCover {
    /// For every covered edge id: the `u`→`v` paths (node sequences, starting at
    /// the edge's smaller endpoint `u` and ending at `v`).
    pub paths: BTreeMap<EdgeId, Vec<Vec<NodeId>>>,
}

impl FtCycleCover {
    /// Build a `k`-FT cycle cover by computing, for every edge `(u, v)`, up to
    /// `k` edge-disjoint `u`–`v` paths with a max-flow that prefers short
    /// augmenting paths.
    ///
    /// Returns `None` if some edge does not admit `k` edge-disjoint paths
    /// between its endpoints (i.e. the graph is not `k`-edge-connected).
    pub fn build(g: &Graph, k: usize) -> Option<Self> {
        let mut paths = BTreeMap::new();
        for (id, e) in g.edges().iter().enumerate() {
            let ps = edge_disjoint_paths(g, e.u, e.v, k);
            if ps.len() < k {
                return None;
            }
            paths.insert(id, ps);
        }
        Some(FtCycleCover { paths })
    }

    /// Number of paths provided per edge (the `k` parameter), assuming a
    /// uniform cover; returns 0 for an empty cover.
    pub fn paths_per_edge(&self) -> usize {
        self.paths.values().map(|p| p.len()).min().unwrap_or(0)
    }

    /// Dilation: the maximum path length (in hops) over all path systems.
    pub fn dilation(&self) -> usize {
        self.paths
            .values()
            .flat_map(|ps| ps.iter().map(|p| p.len().saturating_sub(1)))
            .max()
            .unwrap_or(0)
    }

    /// Congestion: the maximum, over graph edges, of the number of paths (over
    /// all path systems) that traverse the edge.
    pub fn congestion(&self, g: &Graph) -> usize {
        let mut count = vec![0usize; g.edge_count()];
        for ps in self.paths.values() {
            for p in ps {
                for w in p.windows(2) {
                    if let Some(e) = g.edge_between(w[0], w[1]) {
                        count[e] += 1;
                    }
                }
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// The set of edges traversed by any path in the path system of `e`.
    pub fn support_of(&self, g: &Graph, e: EdgeId) -> BTreeSet<EdgeId> {
        let mut s = BTreeSet::new();
        if let Some(ps) = self.paths.get(&e) {
            for p in ps {
                for w in p.windows(2) {
                    if let Some(id) = g.edge_between(w[0], w[1]) {
                        s.insert(id);
                    }
                }
            }
        }
        s
    }

    /// Verify that, for every edge, the provided paths are pairwise
    /// edge-disjoint, start/end at the right endpoints and are walks in `g`.
    pub fn verify(&self, g: &Graph) -> bool {
        for (&eid, ps) in &self.paths {
            let edge = g.edge(eid);
            let mut used = BTreeSet::new();
            for p in ps {
                if p.first() != Some(&edge.u) || p.last() != Some(&edge.v) {
                    return false;
                }
                for w in p.windows(2) {
                    let Some(id) = g.edge_between(w[0], w[1]) else {
                        return false;
                    };
                    if !used.insert(id) {
                        return false; // edge reused within the same path system
                    }
                }
            }
        }
        true
    }

    /// A *good cycle colouring* (Lemma 5.2): assign every covered edge a colour
    /// such that two edges with the same colour have edge-disjoint path systems.
    /// Greedy colouring of the path-conflict graph; the number of colours is at
    /// most `max_conflict_degree + 1 ≤ k·dilation·cong + 1`.
    pub fn good_coloring(&self, g: &Graph) -> BTreeMap<EdgeId, usize> {
        // For every graph edge, which covered edges' path systems traverse it?
        let mut users: Vec<Vec<EdgeId>> = vec![Vec::new(); g.edge_count()];
        for &eid in self.paths.keys() {
            for s in self.support_of(g, eid) {
                users[s].push(eid);
            }
        }
        // Conflict adjacency.
        let mut conflicts: BTreeMap<EdgeId, BTreeSet<EdgeId>> = BTreeMap::new();
        for list in &users {
            for &a in list {
                for &b in list {
                    if a != b {
                        conflicts.entry(a).or_default().insert(b);
                    }
                }
            }
        }
        let mut coloring: BTreeMap<EdgeId, usize> = BTreeMap::new();
        for &eid in self.paths.keys() {
            let taken: BTreeSet<usize> = conflicts
                .get(&eid)
                .map(|ns| ns.iter().filter_map(|n| coloring.get(n)).copied().collect())
                .unwrap_or_default();
            let mut c = 0;
            while taken.contains(&c) {
                c += 1;
            }
            coloring.insert(eid, c);
        }
        coloring
    }
}

/// Verify that a colouring is a good cycle colouring for the cover: same-colour
/// edges have pairwise edge-disjoint path systems.
pub fn verify_good_coloring(
    cover: &FtCycleCover,
    g: &Graph,
    coloring: &BTreeMap<EdgeId, usize>,
) -> bool {
    let ids: Vec<EdgeId> = cover.paths.keys().copied().collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in ids.iter().skip(i + 1) {
            if coloring.get(&a) == coloring.get(&b) {
                let sa = cover.support_of(g, a);
                let sb = cover.support_of(g, b);
                if sa.intersection(&sb).next().is_some() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_cover_on_cycle_graph() {
        let g = generators::cycle(6);
        let cover = FtCycleCover::build(&g, 2).unwrap();
        assert!(cover.verify(&g));
        assert_eq!(cover.paths_per_edge(), 2);
        assert_eq!(cover.dilation(), 5); // the long way around
                                         // Requesting more paths than the connectivity allows fails.
        assert!(FtCycleCover::build(&g, 3).is_none());
    }

    #[test]
    fn cycle_cover_on_clique() {
        let g = generators::complete(6);
        let cover = FtCycleCover::build(&g, 5).unwrap();
        assert!(cover.verify(&g));
        assert_eq!(cover.paths_per_edge(), 5);
        assert!(cover.dilation() <= 3);
        assert!(cover.congestion(&g) >= 1);
    }

    #[test]
    fn cover_congestion_counts_shared_edges() {
        let g = generators::cycle(4);
        let cover = FtCycleCover::build(&g, 2).unwrap();
        // Each edge's system uses the whole cycle, so every edge is used by
        // every system: congestion = number of edges = 4... (each of the 4
        // systems uses each edge exactly once).
        assert_eq!(cover.congestion(&g), 4);
    }

    #[test]
    fn good_coloring_is_valid() {
        let g = generators::circulant(9, 2); // 4-edge-connected
        let cover = FtCycleCover::build(&g, 3).unwrap();
        assert!(cover.verify(&g));
        let coloring = cover.good_coloring(&g);
        assert_eq!(coloring.len(), g.edge_count());
        assert!(verify_good_coloring(&cover, &g, &coloring));
    }

    #[test]
    fn good_coloring_detects_bad_coloring() {
        let g = generators::cycle(5);
        let cover = FtCycleCover::build(&g, 2).unwrap();
        // All edges the same colour is definitely not a good colouring here
        // because all systems share the cycle edges.
        let bad: BTreeMap<EdgeId, usize> = (0..g.edge_count()).map(|e| (e, 0)).collect();
        assert!(!verify_good_coloring(&cover, &g, &bad));
    }

    #[test]
    fn support_of_contains_own_edge() {
        let g = generators::complete(5);
        let cover = FtCycleCover::build(&g, 3).unwrap();
        for e in 0..g.edge_count() {
            let sup = cover.support_of(&g, e);
            assert!(
                sup.contains(&e),
                "direct edge should be one of the disjoint paths"
            );
        }
    }
}
