//! Rooted spanning trees and subtrees.
//!
//! The byzantine compilers aggregate sketches *up* trees and broadcast
//! corrections *down* trees, so the tree representation keeps, for every node,
//! its parent, its children and its depth — exactly the "distributed knowledge"
//! the paper assumes ("each node knows its parent in each of the trees").

use crate::graph::{EdgeId, Graph, NodeId};
use crate::traversal::bfs;
use std::collections::VecDeque;

/// A rooted spanning tree (or forest fragment) of a host graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    /// The root node.
    pub root: NodeId,
    /// `parent[v]` = parent of `v`, `None` for the root and for nodes not in the tree.
    pub parent: Vec<Option<NodeId>>,
    /// `in_tree[v]` = whether the node participates in this tree.
    pub in_tree: Vec<bool>,
    /// Edge ids (in the host graph) used by the tree.
    pub edges: Vec<EdgeId>,
}

impl RootedTree {
    /// Build a rooted tree from a parent vector.  Nodes with `parent == None`
    /// other than the root are treated as not in the tree.
    ///
    /// # Panics
    ///
    /// Panics if a parent pointer refers to an edge that does not exist in `g`.
    pub fn from_parents(g: &Graph, root: NodeId, parent: Vec<Option<NodeId>>) -> Self {
        let n = g.node_count();
        assert_eq!(parent.len(), n);
        let mut in_tree = vec![false; n];
        let mut edges = Vec::new();
        in_tree[root] = true;
        for v in 0..n {
            if v == root {
                continue;
            }
            if let Some(p) = parent[v] {
                let e = g
                    .edge_between(v, p)
                    .unwrap_or_else(|| panic!("tree edge ({v},{p}) not in host graph"));
                edges.push(e);
                in_tree[v] = true;
            }
        }
        RootedTree {
            root,
            parent,
            in_tree,
            edges,
        }
    }

    /// Number of nodes participating in the tree.
    pub fn size(&self) -> usize {
        self.in_tree.iter().filter(|&&b| b).count()
    }

    /// Whether the tree spans all nodes of the host graph **and** every
    /// non-root node's parent chain reaches the root.
    pub fn is_spanning(&self, g: &Graph) -> bool {
        if self.size() != g.node_count() {
            return false;
        }
        // Verify that following parents from every node reaches the root without cycles.
        for v in g.nodes() {
            let mut cur = v;
            let mut steps = 0;
            while cur != self.root {
                match self.parent[cur] {
                    Some(p) => cur = p,
                    None => return false,
                }
                steps += 1;
                if steps > g.node_count() {
                    return false;
                }
            }
        }
        true
    }

    /// Depth of each node (root = 0); `None` for nodes not in the tree or whose
    /// parent chain does not reach the root.
    pub fn depths(&self) -> Vec<Option<usize>> {
        let n = self.parent.len();
        let mut depth = vec![None; n];
        depth[self.root] = Some(0);
        // Iterate until fixpoint (tree height ≤ n).
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n {
                if depth[v].is_some() || !self.in_tree[v] {
                    continue;
                }
                if let Some(p) = self.parent[v] {
                    if let Some(dp) = depth[p] {
                        depth[v] = Some(dp + 1);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        depth
    }

    /// Height of the tree (maximum depth of a node in the tree).
    pub fn height(&self) -> usize {
        self.depths().into_iter().flatten().max().unwrap_or(0)
    }

    /// Children lists, indexed by node.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let n = self.parent.len();
        let mut ch = vec![Vec::new(); n];
        for v in 0..n {
            if !self.in_tree[v] || v == self.root {
                continue;
            }
            if let Some(p) = self.parent[v] {
                ch[p].push(v);
            }
        }
        ch
    }

    /// Nodes in bottom-up order (leaves first, root last).  Useful for
    /// convergecast-style aggregation in a fault-free reference computation.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let depths = self.depths();
        let mut nodes: Vec<NodeId> = (0..self.parent.len())
            .filter(|&v| self.in_tree[v] && depths[v].is_some())
            .collect();
        nodes.sort_by_key(|&v| std::cmp::Reverse(depths[v].unwrap()));
        nodes
    }

    /// Nodes in top-down order (root first).
    pub fn top_down_order(&self) -> Vec<NodeId> {
        let mut o = self.bottom_up_order();
        o.reverse();
        o
    }

    /// Whether the given host-graph edge is used by this tree.
    pub fn uses_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }
}

/// Build the BFS spanning tree of the component of `root`.
pub fn bfs_tree(g: &Graph, root: NodeId) -> RootedTree {
    let r = bfs(g, root);
    RootedTree::from_parents(g, root, r.parent)
}

/// Build a hop-bounded lightest-path spanning tree: the shortest-path tree
/// under the given per-edge weights (all weights must be ≥ some positive
/// minimum), restricted to paths of at most `max_hops` edges.
///
/// This is the building block of the Appendix-C tree packing ("min-cost
/// `d`-depth spanning tree"): the weight of an edge reflects its current load,
/// so successive trees avoid heavily used edges while staying shallow.  Nodes
/// unreachable within `max_hops` hops are left out of the tree.
///
/// # Panics
///
/// Panics if `weight.len() != g.edge_count()` or some weight is not strictly
/// positive (positivity rules out parent-pointer cycles).
pub fn weighted_shallow_tree(
    g: &Graph,
    root: NodeId,
    weight: &[f64],
    max_hops: usize,
) -> RootedTree {
    assert_eq!(weight.len(), g.edge_count());
    assert!(
        weight.iter().all(|&w| w > 0.0),
        "edge weights must be strictly positive"
    );
    let n = g.node_count();
    let mut dist: Vec<f64> = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    dist[root] = 0.0;
    // Hop-bounded Bellman–Ford with Jacobi-style updates so that after `h`
    // iterations `dist[v]` is the lightest path using at most `h` edges.
    for _ in 0..max_hops.max(1) {
        let snapshot = dist.clone();
        let mut changed = false;
        for v in 0..n {
            for &(u, e) in g.neighbors(v) {
                let cand = snapshot[u] + weight[e];
                if cand < dist[v] {
                    dist[v] = cand;
                    parent[v] = Some(u);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Nodes that were never reached keep parent = None and are excluded.
    RootedTree::from_parents(g, root, parent)
}

/// Build an approximate minimum-cost depth-bounded spanning tree by Prim-style
/// growth: repeatedly attach the out-of-tree node whose cheapest connection to
/// an in-tree node of depth `< max_depth` is minimal.
///
/// This is the "min-cost `d`-depth spanning tree" primitive of the paper's
/// Appendix C (there solved with the O(log n)-approximation of Ghaffari'15; a
/// greedy Prim variant reproduces the same qualitative trade-off: low total
/// load at bounded depth).  Nodes unreachable within the depth budget are left
/// out of the tree.
///
/// # Panics
///
/// Panics if `weight.len() != g.edge_count()`.
pub fn min_cost_depth_bounded_tree(
    g: &Graph,
    root: NodeId,
    weight: &[f64],
    max_depth: usize,
) -> RootedTree {
    assert_eq!(weight.len(), g.edge_count());
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth: Vec<Option<usize>> = vec![None; n];
    depth[root] = Some(0);
    for _ in 1..n {
        // Find the cheapest edge from an eligible in-tree node to an out node.
        let mut best: Option<(f64, NodeId, NodeId)> = None; // (cost, from, to)
        for u in 0..n {
            let Some(du) = depth[u] else { continue };
            if du >= max_depth {
                continue;
            }
            for &(v, e) in g.neighbors(u) {
                if depth[v].is_some() {
                    continue;
                }
                let c = weight[e];
                if best.is_none_or(|(bc, _, _)| c < bc) {
                    best = Some((c, u, v));
                }
            }
        }
        let Some((_, u, v)) = best else { break };
        parent[v] = Some(u);
        depth[v] = Some(depth[u].unwrap() + 1);
    }
    RootedTree::from_parents(g, root, parent)
}

/// Build the BFS tree of a *subgraph* described by a set of edges, rooted at
/// `root`.  Nodes unreachable within the subgraph are left out of the tree.
pub fn subgraph_bfs_tree(g: &Graph, edges: &[EdgeId], root: NodeId) -> RootedTree {
    let n = g.node_count();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &e in edges {
        let edge = g.edge(e);
        adj[edge.u].push(edge.v);
        adj[edge.v].push(edge.u);
    }
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    seen[root] = true;
    let mut q = VecDeque::new();
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                q.push_back(v);
            }
        }
    }
    RootedTree::from_parents(g, root, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_spans_connected_graph() {
        let g = generators::grid(3, 3);
        let t = bfs_tree(&g, 0);
        assert!(t.is_spanning(&g));
        assert_eq!(t.size(), 9);
        assert_eq!(t.height(), 4);
        assert_eq!(t.edges.len(), 8);
    }

    #[test]
    fn bfs_tree_on_disconnected_graph_is_partial() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let t = bfs_tree(&g, 0);
        assert!(!t.is_spanning(&g));
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn depths_children_and_orders_consistent() {
        let g = generators::path(5);
        let t = bfs_tree(&g, 2);
        let d = t.depths();
        assert_eq!(d[2], Some(0));
        assert_eq!(d[0], Some(2));
        assert_eq!(d[4], Some(2));
        let ch = t.children();
        assert_eq!(ch[2].len(), 2);
        let bu = t.bottom_up_order();
        assert_eq!(*bu.last().unwrap(), 2);
        let td = t.top_down_order();
        assert_eq!(td[0], 2);
        assert_eq!(bu.len(), 5);
    }

    #[test]
    fn weighted_shallow_tree_avoids_heavy_edges() {
        // Square 0-1-2-3-0; heavy weight on edge (0,1) should push the tree to
        // reach node 1 the long way around (3 hops) when the hop budget allows.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut w = vec![1.0; 4];
        w[g.edge_between(0, 1).unwrap()] = 100.0;
        let t = weighted_shallow_tree(&g, 0, &w, 4);
        assert!(t.is_spanning(&g));
        assert_eq!(
            t.parent[1],
            Some(2),
            "node 1 should be reached avoiding the heavy edge"
        );
        // With a hop budget of 1, only direct neighbours are reachable.
        let shallow = weighted_shallow_tree(&g, 0, &w, 1);
        assert_eq!(shallow.size(), 3);
        assert!(!shallow.is_spanning(&g));
    }

    #[test]
    #[should_panic]
    fn weighted_shallow_tree_rejects_nonpositive_weights() {
        let g = generators::path(3);
        let _ = weighted_shallow_tree(&g, 0, &[0.0, 1.0], 3);
    }

    #[test]
    fn subgraph_tree_restricted_to_edges() {
        let g = generators::cycle(6);
        // Use only half of the cycle's edges: a path 0-1-2-3.
        let es: Vec<_> = [(0, 1), (1, 2), (2, 3)]
            .iter()
            .map(|&(a, b)| g.edge_between(a, b).unwrap())
            .collect();
        let t = subgraph_bfs_tree(&g, &es, 0);
        assert_eq!(t.size(), 4);
        assert!(!t.in_tree[4]);
        assert!(!t.is_spanning(&g));
    }

    #[test]
    fn from_parents_rejects_non_edges() {
        let g = generators::path(3);
        let bad_parent = vec![None, Some(0), Some(0)]; // (2,0) is not an edge
        let result = std::panic::catch_unwind(|| RootedTree::from_parents(&g, 0, bad_parent));
        assert!(result.is_err());
    }
}
