//! Core undirected graph representation used throughout the workspace.
//!
//! The CONGEST model communicates over the edges of an undirected graph; every
//! substrate (simulator, tree packings, cycle covers) and every compiler works
//! against this representation.  Nodes and edges are identified by dense
//! indices so that protocol state can live in flat vectors.

use std::collections::BTreeSet;
use std::sync::OnceLock;

/// Identifier of a node: a dense index in `[0, n)`.
pub type NodeId = usize;

/// Identifier of an undirected edge: a dense index in `[0, m)`.
pub type EdgeId = usize;

/// A directed occurrence of an undirected edge.
///
/// Arc `2e` points from the smaller-indexed endpoint to the larger one; arc
/// `2e + 1` points the other way.  Protocol traffic is stored per arc.
pub type ArcId = usize;

/// An undirected edge between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Normalised constructor (`u <= v`).
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of edge {self:?}")
        }
    }

    /// Whether `x` is an endpoint.
    pub fn touches(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }
}

/// One adjacency record of the [`CsrIndex`]: a neighbour together with the
/// connecting edge and both directed arcs, precomputed so hot loops (inbox
/// iteration, per-round metrics) never re-derive arc ids from edge endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrEntry {
    /// The neighbouring node.
    pub neighbor: NodeId,
    /// The connecting undirected edge.
    pub edge: EdgeId,
    /// The directed arc *from this node to* `neighbor`.
    pub arc_out: ArcId,
    /// The directed arc *from* `neighbor` *to this node*.
    pub arc_in: ArcId,
}

/// A compressed-sparse-row view of a graph's adjacency structure: one flat
/// entry array grouped by node, plus an `n + 1` offset table.
///
/// The per-node [`Graph::neighbors`] vectors are convenient while *building*
/// a graph; the CSR index is what the round engine iterates — a single
/// contiguous allocation with per-entry arc ids, so scanning every inbox of a
/// round is a linear walk over `2m` cache-friendly entries.  Built lazily on
/// first use ([`Graph::csr`]) and invalidated by [`Graph::add_edge`].
#[derive(Debug, Clone, Default)]
pub struct CsrIndex {
    /// `offsets[u]..offsets[u + 1]` is `u`'s slice of `entries`.
    offsets: Vec<usize>,
    /// All adjacency records, grouped by node in insertion order.
    entries: Vec<CsrEntry>,
}

impl CsrIndex {
    fn build(g: &Graph) -> Self {
        let mut offsets = Vec::with_capacity(g.n + 1);
        let mut entries = Vec::with_capacity(2 * g.edges.len());
        offsets.push(0);
        for u in 0..g.n {
            for &(v, e) in &g.adjacency[u] {
                let (fwd, bwd) = Graph::arcs_of(e);
                let forward = g.edges[e].u == u;
                entries.push(CsrEntry {
                    neighbor: v,
                    edge: e,
                    arc_out: if forward { fwd } else { bwd },
                    arc_in: if forward { bwd } else { fwd },
                });
            }
            offsets.push(entries.len());
        }
        CsrIndex { offsets, entries }
    }

    /// The adjacency records of node `u`, in edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[CsrEntry] {
        &self.entries[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// All adjacency records of all nodes, grouped by node.
    pub fn entries(&self) -> &[CsrEntry] {
        &self.entries
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

/// An undirected simple graph with dense node and edge indices.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency[u] = sorted list of (neighbor, edge id)
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    /// Lazily built CSR view of `adjacency`; reset on mutation.
    csr: OnceLock<CsrIndex>,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
            csr: OnceLock::new(),
        }
    }

    /// Build a graph from an edge list (duplicate and self-loop edges are ignored).
    pub fn from_edges(n: usize, edge_list: &[(NodeId, NodeId)]) -> Self {
        let mut g = Graph::new(n);
        for &(a, b) in edge_list {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// Slice of all edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// Add an undirected edge; returns its id, or the existing id if the edge
    /// is already present.  Self-loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        assert!(a < self.n && b < self.n, "endpoint out of range");
        assert!(a != b, "self-loops are not allowed");
        if let Some(e) = self.edge_between(a, b) {
            return e;
        }
        let e = Edge::new(a, b);
        let id = self.edges.len();
        self.edges.push(e);
        self.adjacency[a].push((b, id));
        self.adjacency[b].push((a, id));
        self.csr = OnceLock::new();
        id
    }

    /// The compressed-sparse-row adjacency index, built lazily on first use
    /// and cached until the graph is mutated.  Hot round-engine loops iterate
    /// this instead of the per-node adjacency vectors.
    pub fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| CsrIndex::build(self))
    }

    /// Neighbours of `u` together with the connecting edge ids.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[u]
    }

    /// Neighbour node ids of `u`.
    pub fn neighbor_ids(&self, u: NodeId) -> Vec<NodeId> {
        self.adjacency[u].iter().map(|&(v, _)| v).collect()
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Edge id between `a` and `b`, if present.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a >= self.n || b >= self.n {
            return None;
        }
        self.adjacency[a]
            .iter()
            .find(|&&(v, _)| v == b)
            .map(|&(_, e)| e)
    }

    /// Whether `a` and `b` are adjacent.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// Directed arc id for the edge `e` in the direction `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if `from`/`to` are not the endpoints of `e`.
    pub fn arc(&self, e: EdgeId, from: NodeId, to: NodeId) -> ArcId {
        let edge = self.edges[e];
        assert!(
            (edge.u == from && edge.v == to) || (edge.u == to && edge.v == from),
            "arc endpoints {from}->{to} do not match edge {edge:?}"
        );
        if edge.u == from {
            2 * e
        } else {
            2 * e + 1
        }
    }

    /// Directed arc id from `from` to `to`, if the edge exists.
    pub fn arc_between(&self, from: NodeId, to: NodeId) -> Option<ArcId> {
        self.edge_between(from, to).map(|e| self.arc(e, from, to))
    }

    /// The two directed arcs of edge `e`, as `(forward, backward)`: the
    /// forward arc runs from the edge's smaller endpoint to the larger one.
    /// This is the one place the `2e` / `2e + 1` numbering convention lives;
    /// hot loops that would otherwise hardcode the arithmetic call this.
    #[inline]
    pub fn arcs_of(e: EdgeId) -> (ArcId, ArcId) {
        (2 * e, 2 * e + 1)
    }

    /// The edge an arc belongs to (inverse of [`Graph::arcs_of`]).
    #[inline]
    pub fn edge_of(arc: ArcId) -> EdgeId {
        arc / 2
    }

    /// Decompose an arc id into `(edge, from, to)`.
    pub fn arc_endpoints(&self, arc: ArcId) -> (EdgeId, NodeId, NodeId) {
        let e = arc / 2;
        let edge = self.edges[e];
        if arc.is_multiple_of(2) {
            (e, edge.u, edge.v)
        } else {
            (e, edge.v, edge.u)
        }
    }

    /// Total number of directed arcs (`2m`).
    pub fn arc_count(&self) -> usize {
        2 * self.edges.len()
    }

    /// The subgraph induced by keeping only the given edges (same node set).
    pub fn edge_subgraph(&self, keep: &[EdgeId]) -> Graph {
        let mut g = Graph::new(self.n);
        for &e in keep {
            let Edge { u, v } = self.edges[e];
            g.add_edge(u, v);
        }
        g
    }

    /// The graph obtained by removing the given edges (same node set).
    pub fn remove_edges(&self, remove: &[EdgeId]) -> Graph {
        let removed: BTreeSet<EdgeId> = remove.iter().copied().collect();
        let mut g = Graph::new(self.n);
        for (id, &Edge { u, v }) in self.edges.iter().enumerate() {
            if !removed.contains(&id) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// All edges incident to node `u`.
    pub fn incident_edges(&self, u: NodeId) -> Vec<EdgeId> {
        self.adjacency[u].iter().map(|&(_, e)| e).collect()
    }

    /// Sum of degrees / 2m sanity value; useful in tests.
    pub fn degree_sum(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalisation_and_other() {
        let e = Edge::new(5, 2);
        assert_eq!(e, Edge { u: 2, v: 5 });
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
        assert!(e.touches(2) && e.touches(5) && !e.touches(3));
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        Edge::new(0, 1).other(2);
    }

    #[test]
    fn build_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree_sum(), 6);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut g = Graph::new(2);
        let e1 = g.add_edge(0, 1);
        let e2 = g.add_edge(1, 0);
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn arcs_roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]);
        for e in 0..g.edge_count() {
            let Edge { u, v } = g.edge(e);
            let a_uv = g.arc(e, u, v);
            let a_vu = g.arc(e, v, u);
            assert_ne!(a_uv, a_vu);
            assert_eq!(g.arc_endpoints(a_uv), (e, u, v));
            assert_eq!(g.arc_endpoints(a_vu), (e, v, u));
        }
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.arc_between(1, 2), Some(g.arc(1, 1, 2)));
        assert_eq!(g.arc_between(0, 2), None);
    }

    #[test]
    fn csr_matches_adjacency_and_arcs() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 1), (4, 0)]);
        let csr = g.csr();
        assert_eq!(csr.node_count(), 5);
        assert_eq!(csr.entries().len(), 2 * g.edge_count());
        for v in g.nodes() {
            let entries = csr.neighbors(v);
            assert_eq!(entries.len(), g.degree(v));
            assert_eq!(csr.degree(v), g.degree(v));
            for (entry, &(u, e)) in entries.iter().zip(g.neighbors(v)) {
                assert_eq!(entry.neighbor, u);
                assert_eq!(entry.edge, e);
                assert_eq!(entry.arc_out, g.arc(e, v, u));
                assert_eq!(entry.arc_in, g.arc(e, u, v));
            }
        }
    }

    #[test]
    fn csr_is_invalidated_by_mutation() {
        let mut g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(g.csr().degree(2), 0);
        g.add_edge(1, 2);
        assert_eq!(g.csr().degree(2), 1);
        assert_eq!(g.csr().neighbors(2)[0].neighbor, 1);
        // A clone keeps its own (consistent) index.
        let h = g.clone();
        assert_eq!(h.csr().entries().len(), 4);
    }

    #[test]
    fn subgraph_operations() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sub = g.edge_subgraph(&[0, 2]);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(0, 1) && sub.has_edge(2, 3));
        let rem = g.remove_edges(&[0]);
        assert_eq!(rem.edge_count(), 3);
        assert!(!rem.has_edge(0, 1));
    }
}
