//! Graph generators for the experiment suite.
//!
//! The paper's compilers target several graph families with different
//! connectivity/expansion guarantees:
//!
//! * the **complete graph** (CONGESTED CLIQUE compilers, Theorems 1.6 / 4.11),
//! * **expanders** with minimum degree `Ω(f/φ²)` (Theorems 1.7 / 4.12),
//! * general **`k`-edge-connected** graphs (Theorems 1.4, 3.5, 4.1),
//! * low-connectivity baselines (paths, cycles, grids) on which the secure
//!   unicast/broadcast experiments run.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The graph families a [`GraphDef`] can name — the generator zoo as *data*
/// rather than function calls, so experiment grids can be written to disk,
/// diffed and resolved on another machine.
///
/// Each family maps to one generator function in this module; the meaning of
/// [`GraphDef::n`] and the named [`GraphDef::params`] entries per family is
/// documented on [`GraphDef::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// [`path`]: `n` nodes in a line.
    Path,
    /// [`cycle`]: `n` nodes in a ring.
    Cycle,
    /// [`complete`]: the clique `K_n`.
    Complete,
    /// [`grid`]: `n` rows × `cols` columns.
    Grid,
    /// [`torus`]: `n` rows × `cols` columns with wrap-around.
    Torus,
    /// [`circulant`]: `C_n(1..k)`.
    Circulant,
    /// [`hypercube`]: the `n`-dimensional cube.
    Hypercube,
    /// [`watts_strogatz`]: small world on `n` nodes, lattice degree `k`,
    /// rewiring probability `beta`, seeded internally.
    WattsStrogatz,
    /// [`expander_d_regular`]: seeded random `d`-regular expander on `n`
    /// nodes.
    ExpanderDRegular,
    /// [`ring_of_cliques`]: `n` cliques of `size` nodes joined in a ring.
    RingOfCliques,
    /// [`barbell`]: two `n`-cliques joined by a `path`-edge path.
    Barbell,
    /// [`wheel`]: hub plus an `(n-1)`-cycle.
    Wheel,
    /// [`complete_minus_matching`]: `K_n` minus a perfect matching.
    CompleteMinusMatching,
}

impl GraphFamily {
    /// Every family, in the stable registry order.
    pub const ALL: [GraphFamily; 13] = [
        GraphFamily::Path,
        GraphFamily::Cycle,
        GraphFamily::Complete,
        GraphFamily::Grid,
        GraphFamily::Torus,
        GraphFamily::Circulant,
        GraphFamily::Hypercube,
        GraphFamily::WattsStrogatz,
        GraphFamily::ExpanderDRegular,
        GraphFamily::RingOfCliques,
        GraphFamily::Barbell,
        GraphFamily::Wheel,
        GraphFamily::CompleteMinusMatching,
    ];

    /// The stable lowercase label used by serialized specs.
    pub fn label(self) -> &'static str {
        match self {
            GraphFamily::Path => "path",
            GraphFamily::Cycle => "cycle",
            GraphFamily::Complete => "complete",
            GraphFamily::Grid => "grid",
            GraphFamily::Torus => "torus",
            GraphFamily::Circulant => "circulant",
            GraphFamily::Hypercube => "hypercube",
            GraphFamily::WattsStrogatz => "watts-strogatz",
            GraphFamily::ExpanderDRegular => "expander-d-regular",
            GraphFamily::RingOfCliques => "ring-of-cliques",
            GraphFamily::Barbell => "barbell",
            GraphFamily::Wheel => "wheel",
            GraphFamily::CompleteMinusMatching => "complete-minus-matching",
        }
    }

    /// Inverse of [`GraphFamily::label`].
    pub fn from_label(label: &str) -> Option<GraphFamily> {
        GraphFamily::ALL.into_iter().find(|f| f.label() == label)
    }
}

/// Everything that can go wrong resolving a [`GraphDef`] into a [`Graph`]:
/// the generator assertions, surfaced as typed errors so a bad spec cell is a
/// reportable skip instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphDefError {
    /// A named parameter the family requires is absent.
    MissingParam {
        /// The family's label.
        family: &'static str,
        /// The missing parameter name.
        param: &'static str,
    },
    /// The size/parameter combination violates a generator precondition.
    InvalidSize {
        /// The family's label.
        family: &'static str,
        /// Human-readable explanation (the generator's assertion, as data).
        reason: String,
    },
}

impl core::fmt::Display for GraphDefError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphDefError::MissingParam { family, param } => {
                write!(f, "graph family `{family}` requires parameter `{param}`")
            }
            GraphDefError::InvalidSize { family, reason } => {
                write!(f, "graph family `{family}`: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphDefError {}

/// A serializable description of one generated graph: the family, the primary
/// size `n`, named secondary parameters and a seed for the randomized
/// families.  Resolve it with [`GraphDef::build`]; the campaign zoos are
/// defined in terms of these defs so the data form and the runtime graphs
/// cannot drift.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDef {
    /// Which generator to run.
    pub family: GraphFamily,
    /// The primary size parameter (nodes for most families; rows for
    /// grid/torus, dimension for the hypercube, cliques for the ring).
    pub n: usize,
    /// Named secondary parameters (`cols`, `k`, `d`, `beta`, `size`,
    /// `path`), in a stable order.
    pub params: Vec<(String, f64)>,
    /// Seed for the randomized families (ignored by deterministic ones).
    pub seed: u64,
}

impl GraphDef {
    /// A def with no secondary parameters.
    pub fn new(family: GraphFamily, n: usize) -> Self {
        GraphDef {
            family,
            n,
            params: Vec::new(),
            seed: 0,
        }
    }

    /// Attach a named secondary parameter (builder-style).
    pub fn with_param(mut self, name: &str, value: f64) -> Self {
        self.params.push((name.to_string(), value));
        self
    }

    /// Set the seed for the randomized families (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `K_n`.
    pub fn complete(n: usize) -> Self {
        GraphDef::new(GraphFamily::Complete, n)
    }

    /// `C_n(1..k)`.
    pub fn circulant(n: usize, k: usize) -> Self {
        GraphDef::new(GraphFamily::Circulant, n).with_param("k", k as f64)
    }

    /// `rows × cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        GraphDef::new(GraphFamily::Grid, rows).with_param("cols", cols as f64)
    }

    /// `rows × cols` torus.
    pub fn torus(rows: usize, cols: usize) -> Self {
        GraphDef::new(GraphFamily::Torus, rows).with_param("cols", cols as f64)
    }

    /// Seeded Watts–Strogatz small world.
    pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Self {
        GraphDef::new(GraphFamily::WattsStrogatz, n)
            .with_param("k", k as f64)
            .with_param("beta", beta)
            .with_seed(seed)
    }

    /// Seeded random `d`-regular expander.
    pub fn expander(n: usize, d: usize, seed: u64) -> Self {
        GraphDef::new(GraphFamily::ExpanderDRegular, n)
            .with_param("d", d as f64)
            .with_seed(seed)
    }

    /// Ring of `cliques` cliques of `size` nodes.
    pub fn ring_of_cliques(cliques: usize, size: usize) -> Self {
        GraphDef::new(GraphFamily::RingOfCliques, cliques).with_param("size", size as f64)
    }

    /// Two `clique`-cliques joined by a `path_len`-edge path.
    pub fn barbell(clique: usize, path_len: usize) -> Self {
        GraphDef::new(GraphFamily::Barbell, clique).with_param("path", path_len as f64)
    }

    /// Look up a named secondary parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    fn usize_param(&self, name: &'static str) -> Result<usize, GraphDefError> {
        let v = self.param(name).ok_or(GraphDefError::MissingParam {
            family: self.family.label(),
            param: name,
        })?;
        // Reject lossy coercions instead of silently truncating: a spec
        // saying `"k": -1` or `"cols": 4.7` must not build a quietly
        // different topology.
        if v.fract() != 0.0 || v < 0.0 || v > u32::MAX as f64 {
            return Err(self.invalid(format!(
                "parameter `{name}` must be a non-negative integer (got {v})"
            )));
        }
        Ok(v as usize)
    }

    fn invalid(&self, reason: impl Into<String>) -> GraphDefError {
        GraphDefError::InvalidSize {
            family: self.family.label(),
            reason: reason.into(),
        }
    }

    /// The display name campaign grids use for this graph, matching the
    /// historical hand-built zoo names (`K12`, `circ(18,4)`, `grid4x4`,
    /// `torus4x5`, `expander(24,8)`, `small-world(24,6)`,
    /// `ring-of-cliques(4,5)`, `barbell(5,2)`, …).
    pub fn display_name(&self) -> String {
        let p = |name: &str| self.param(name).unwrap_or(0.0) as usize;
        match self.family {
            GraphFamily::Path => format!("path{}", self.n),
            GraphFamily::Cycle => format!("cycle{}", self.n),
            GraphFamily::Complete => format!("K{}", self.n),
            GraphFamily::Grid => format!("grid{}x{}", self.n, p("cols")),
            GraphFamily::Torus => format!("torus{}x{}", self.n, p("cols")),
            GraphFamily::Circulant => format!("circ({},{})", self.n, p("k")),
            GraphFamily::Hypercube => format!("hcube({})", self.n),
            GraphFamily::WattsStrogatz => format!("small-world({},{})", self.n, p("k")),
            GraphFamily::ExpanderDRegular => format!("expander({},{})", self.n, p("d")),
            GraphFamily::RingOfCliques => format!("ring-of-cliques({},{})", self.n, p("size")),
            GraphFamily::Barbell => format!("barbell({},{})", self.n, p("path")),
            GraphFamily::Wheel => format!("wheel({})", self.n),
            GraphFamily::CompleteMinusMatching => format!("K{}-minus-M", self.n),
        }
    }

    /// Resolve the def into a concrete [`Graph`].
    ///
    /// Per-family conventions: `n` is the node count except for
    /// [`GraphFamily::Grid`]/[`GraphFamily::Torus`] (rows, with a `cols`
    /// param), [`GraphFamily::Hypercube`] (dimension),
    /// [`GraphFamily::RingOfCliques`] (cliques, with a `size` param) and
    /// [`GraphFamily::Barbell`] (clique size, with a `path` param).
    /// [`GraphFamily::Circulant`] takes `k`, [`GraphFamily::WattsStrogatz`]
    /// takes `k` + `beta` + the seed, [`GraphFamily::ExpanderDRegular`]
    /// takes `d` + the seed.  The generator assertions come back as typed
    /// [`GraphDefError`]s, never panics.
    pub fn build(&self) -> Result<Graph, GraphDefError> {
        match self.family {
            GraphFamily::Path => Ok(path(self.n)),
            GraphFamily::Cycle => {
                if self.n < 3 {
                    return Err(self.invalid("a cycle needs at least 3 nodes"));
                }
                Ok(cycle(self.n))
            }
            GraphFamily::Complete => Ok(complete(self.n)),
            GraphFamily::Grid => Ok(grid(self.n, self.usize_param("cols")?)),
            GraphFamily::Torus => {
                let cols = self.usize_param("cols")?;
                if self.n < 3 || cols < 3 {
                    return Err(self.invalid("a torus needs both dimensions >= 3"));
                }
                Ok(torus(self.n, cols))
            }
            GraphFamily::Circulant => {
                let k = self.usize_param("k")?;
                if 2 * k >= self.n {
                    return Err(self.invalid(format!("circulant requires 2k < n (k={k})")));
                }
                Ok(circulant(self.n, k))
            }
            GraphFamily::Hypercube => {
                if self.n >= 26 {
                    // 2^26 nodes is already far beyond any experiment; above
                    // ~2^63 the shift itself would overflow.
                    return Err(self.invalid("hypercube dimension must be below 26"));
                }
                Ok(hypercube(self.n))
            }
            GraphFamily::WattsStrogatz => {
                let k = self.usize_param("k")?;
                let beta = self.param("beta").ok_or(GraphDefError::MissingParam {
                    family: self.family.label(),
                    param: "beta",
                })?;
                if k < 2 || !k.is_multiple_of(2) {
                    return Err(self.invalid("k must be even and >= 2"));
                }
                if k >= self.n {
                    return Err(self.invalid("k must be smaller than n"));
                }
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
                Ok(watts_strogatz(&mut rng, self.n, k, beta))
            }
            GraphFamily::ExpanderDRegular => {
                let d = self.usize_param("d")?;
                if d >= self.n {
                    return Err(self.invalid("degree must be smaller than n"));
                }
                if !(self.n * d).is_multiple_of(2) {
                    return Err(self.invalid("n*d must be even"));
                }
                Ok(expander_d_regular(self.n, d, self.seed))
            }
            GraphFamily::RingOfCliques => {
                let size = self.usize_param("size")?;
                if self.n < 3 {
                    return Err(self.invalid("a ring needs at least 3 cliques"));
                }
                if size < 2 {
                    return Err(self.invalid("cliques need at least 2 nodes"));
                }
                Ok(ring_of_cliques(self.n, size))
            }
            GraphFamily::Barbell => {
                if self.n < 1 {
                    return Err(self.invalid("a barbell needs cliques of at least 1 node"));
                }
                Ok(barbell(self.n, self.usize_param("path")?))
            }
            GraphFamily::Wheel => {
                if self.n < 4 {
                    return Err(self.invalid("wheel needs at least 4 nodes"));
                }
                Ok(wheel(self.n))
            }
            GraphFamily::CompleteMinusMatching => Ok(complete_minus_matching(self.n)),
        }
    }

    /// Candidate defs exactly **one size step smaller**, for shrinkers that
    /// minimize a failing scenario along the graph axis (the red-team
    /// counterexample shrinker's `GraphDef` param descent).
    ///
    /// The descent order is: the primary size `n` first, then each integer
    /// secondary parameter in stored order.  Every step decrements by 1; when
    /// the one-step candidate violates a family constraint (Watts–Strogatz
    /// `k` parity, expander `n·d` parity, …) a two-step candidate is tried
    /// instead, so parity-constrained families still descend.  Every returned
    /// candidate [`build`](GraphDef::build)s successfully, keeps `n >= 2`,
    /// and keeps integer parameters `>= 1`; continuous parameters (`beta`)
    /// are left untouched.  Minimality for a shrinker is defined **relative
    /// to this set**: a def is graph-minimal when no candidate preserves its
    /// failure.
    pub fn shrink_candidates(&self) -> Vec<GraphDef> {
        let mut out: Vec<GraphDef> = Vec::new();
        let mut push_first_viable = |candidates: [Option<GraphDef>; 2]| {
            for def in candidates.into_iter().flatten() {
                if def.build().is_ok() {
                    out.push(def);
                    return;
                }
            }
        };
        // Primary size first: n-1, falling back to n-2 when parity or a
        // family constraint rules the one-step candidate out.
        let step_n = |dn: usize| -> Option<GraphDef> {
            (self.n >= dn + 2).then(|| {
                let mut def = self.clone();
                def.n = self.n - dn;
                def
            })
        };
        push_first_viable([step_n(1), step_n(2)]);
        // Then each integer secondary parameter, in stored order.
        for (i, (_, value)) in self.params.iter().enumerate() {
            if value.fract() != 0.0 {
                continue;
            }
            let step_param = |dv: f64| -> Option<GraphDef> {
                (*value >= dv + 1.0).then(|| {
                    let mut def = self.clone();
                    def.params[i].1 = value - dv;
                    def
                })
            };
            push_first_viable([step_param(1.0), step_param(2.0)]);
        }
        out
    }
}

/// A path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// A cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (left part `0..a`, right part `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(i, a + j);
        }
    }
    g
}

/// An `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
        }
    }
    g
}

/// A 2-D torus: an `rows × cols` grid with wrap-around edges in both
/// dimensions.  4-regular and 4-edge-connected, the canonical
/// constant-degree topology whose connectivity sits exactly at the `f = 1`
/// cycle-cover threshold (`2f + 1 = 3 ≤ 4`).
///
/// # Panics
///
/// Panics if either dimension is below 3 (smaller wrap-arounds collapse into
/// duplicate or self-loop edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "a torus needs both dimensions >= 3");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id((r + 1) % rows, c));
            g.add_edge(id(r, c), id(r, (c + 1) % cols));
        }
    }
    g
}

/// A Watts–Strogatz small-world graph: the ring lattice `C_n(1, …, k/2)` with
/// every lattice edge rewired to a uniformly random non-neighbour with
/// probability `beta`.  `beta = 0` is the (high-diameter) circulant lattice,
/// `beta = 1` approaches a random graph; intermediate values give the
/// small-world regime the compilers' round overheads are sensitive to.
///
/// Rewiring keeps every node's lattice stubs, so the graph stays connected
/// with overwhelming probability at moderate `beta`; degrees vary around `k`.
///
/// # Panics
///
/// Panics if `k` is odd, `k < 2`, or `k >= n`.
pub fn watts_strogatz<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize, beta: f64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(k < n, "k must be smaller than n");
    let beta = beta.clamp(0.0, 1.0);
    let mut g = Graph::new(n);
    for i in 0..n {
        for off in 1..=(k / 2) {
            let j = (i + off) % n;
            if rng.gen_bool(beta) {
                // Rewire (i, j) to (i, random) avoiding self-loops and
                // duplicates; fall back to the lattice edge when the node is
                // saturated.
                let mut rewired = false;
                for _ in 0..8 {
                    let t = rng.gen_range(0..n);
                    if t != i && !g.has_edge(i, t) {
                        g.add_edge(i, t);
                        rewired = true;
                        break;
                    }
                }
                if !rewired && !g.has_edge(i, j) {
                    g.add_edge(i, j);
                }
            } else {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// A seeded random `d`-regular expander: [`random_regular`] driven by an
/// internal ChaCha stream, so graph grids can name an expander by `(n, d,
/// seed)` without threading an RNG through the spec.  For `d ≥ 3` these are
/// expanders with high probability (the experiments verify conductance
/// empirically).
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n` (see [`random_regular`]).
pub fn expander_d_regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE7A9_D000);
    random_regular(&mut rng, n, d)
}

/// A ring of cliques ("caveman" graph): `cliques` complete graphs of
/// `size` nodes each, with consecutive cliques joined by a single bridge
/// edge and the last clique bridged back to the first.  Locally dense but
/// globally 2-edge-connected — the adversarial playground for
/// [`EclipseNode`-style](https://en.wikipedia.org/wiki/Eclipse_attack)
/// attacks on bridge endpoints.
///
/// # Panics
///
/// Panics if `cliques < 3` or `size < 2`.
pub fn ring_of_cliques(cliques: usize, size: usize) -> Graph {
    assert!(cliques >= 3, "a ring needs at least 3 cliques");
    assert!(size >= 2, "cliques need at least 2 nodes");
    let mut g = Graph::new(cliques * size);
    for c in 0..cliques {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                g.add_edge(base + i, base + j);
            }
        }
        // Bridge: the last node of this clique to the first node of the next.
        let next = ((c + 1) % cliques) * size;
        g.add_edge(base + size - 1, next);
    }
    g
}

/// The `d`-dimensional hypercube (`2^d` nodes).
pub fn hypercube(d: usize) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if v > u {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// A random `d`-regular(ish) graph generated by the configuration model with
/// rejection of self-loops and duplicate edges.  For `d ≥ 3` and moderate `n`
/// these graphs are expanders with high probability; the experiments verify the
/// conductance empirically rather than assuming it.
///
/// The result may have a few nodes of degree `d - 1` when the matching gets
/// stuck; this does not matter for the experiments (minimum degree is reported).
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Graph {
    assert!(d < n, "degree must be smaller than n");
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    // Retry the pairing a few times; repair leftover deficiencies by matching
    // deficient nodes with each other and, if needed, via double edge swaps.
    let mut best = Graph::new(n);
    for _attempt in 0..20 {
        let mut stubs: Vec<NodeId> = (0..n).flat_map(|u| std::iter::repeat_n(u, d)).collect();
        stubs.shuffle(rng);
        let mut g = Graph::new(n);
        let mut ok = true;
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || g.has_edge(a, b) {
                ok = false;
                continue;
            }
            g.add_edge(a, b);
        }
        if ok {
            return g;
        }
        repair_degrees(&mut g, d, rng);
        if g.min_degree() >= d.saturating_sub(0) {
            return g;
        }
        if g.edge_count() > best.edge_count() {
            best = g;
        }
    }
    repair_degrees(&mut best, d, rng);
    best
}

/// Raise the degree of deficient nodes toward `d`: first by adding edges
/// between non-adjacent deficient nodes, then by double edge swaps (remove an
/// existing edge `(a, b)` with both endpoints at full degree and non-adjacent
/// to the deficient pair, add `(u, a)` and `(v, b)`).
fn repair_degrees<R: Rng + ?Sized>(g: &mut Graph, d: usize, rng: &mut R) {
    for _ in 0..(4 * g.node_count()) {
        let deficient: Vec<NodeId> = g.nodes().filter(|&u| g.degree(u) < d).collect();
        if deficient.is_empty() {
            return;
        }
        // Try to connect two deficient, non-adjacent nodes.
        let mut progressed = false;
        'outer: for &u in &deficient {
            for &v in &deficient {
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v);
                    progressed = true;
                    break 'outer;
                }
            }
        }
        if progressed {
            continue;
        }
        // Double edge swap: pick one deficient node u and a random edge (a, b)
        // with a, b not adjacent to u; rebuild the graph without (a, b) and
        // with (u, a); this keeps total degree but moves a stub toward u.
        let u = deficient[rng.gen_range(0..deficient.len())];
        let candidates: Vec<usize> = (0..g.edge_count())
            .filter(|&e| {
                let edge = g.edge(e);
                !edge.touches(u) && !g.has_edge(u, edge.u) && g.degree(edge.u) >= d
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let e = candidates[rng.gen_range(0..candidates.len())];
        let edge = g.edge(e);
        let mut rebuilt = g.remove_edges(&[e]);
        rebuilt.add_edge(u, edge.u);
        *g = rebuilt;
    }
}

/// The Harary-style circulant graph `C_n(1, 2, …, k)`: node `i` is connected to
/// `i ± 1, i ± 2, …, i ± k` (mod n).  This graph is `2k`-edge-connected and
/// `2k`-regular — the standard family of graphs with prescribed edge
/// connectivity used in the byzantine-compiler experiments.
///
/// # Panics
///
/// Panics if `2k >= n`.
pub fn circulant(n: usize, k: usize) -> Graph {
    assert!(2 * k < n, "circulant requires 2k < n");
    let mut g = Graph::new(n);
    for i in 0..n {
        for off in 1..=k {
            g.add_edge(i, (i + off) % n);
        }
    }
    g
}

/// A barbell graph: two cliques of size `clique` joined by a path of length
/// `path_len`.  Deliberately poorly connected — used as a baseline where
/// high-connectivity compilers must be expected to fail or degrade.
pub fn barbell(clique: usize, path_len: usize) -> Graph {
    let n = 2 * clique + path_len;
    let mut g = Graph::new(n);
    for i in 0..clique {
        for j in (i + 1)..clique {
            g.add_edge(i, j);
            g.add_edge(clique + path_len + i, clique + path_len + j);
        }
    }
    // Path joining node (clique-1) to node (clique+path_len).
    let mut prev = clique - 1;
    for p in 0..path_len {
        g.add_edge(prev, clique + p);
        prev = clique + p;
    }
    g.add_edge(prev, clique + path_len);
    g
}

/// A wheel: a cycle on `n - 1` outer nodes all connected to a hub (node 0).
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least 4 nodes");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(0, i);
        let next = if i + 1 < n { i + 1 } else { 1 };
        g.add_edge(i, next);
    }
    g
}

/// `K_n` minus a perfect (or near-perfect) matching — still `(n-2)`-connected,
/// used to exercise the clique compiler on "almost clique" topologies.
pub fn complete_minus_matching(n: usize) -> Graph {
    let mut g = complete(n);
    let mut keep = Vec::new();
    for e in 0..g.edge_count() {
        let edge = g.edge(e);
        // Remove edges (2i, 2i+1).
        if !(edge.u.is_multiple_of(2) && edge.v == edge.u + 1) {
            keep.push(e);
        }
    }
    g = g.edge_subgraph(&keep);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(cycle(3).edge_count(), 3);
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_rejected() {
        cycle(2);
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), 5);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // vertical + horizontal
    }

    #[test]
    fn hypercube_regular() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.edge_count(), 32);
    }

    #[test]
    fn circulant_regularity_and_connectivity_structure() {
        let g = circulant(11, 3);
        assert_eq!(g.min_degree(), 6);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.edge_count(), 33);
    }

    #[test]
    #[should_panic]
    fn circulant_requires_small_k() {
        circulant(6, 3);
    }

    #[test]
    fn random_regular_has_requested_degrees_mostly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_regular(&mut rng, 40, 6);
        assert!(g.min_degree() >= 5);
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(erdos_renyi(&mut rng, 10, 0.0).edge_count(), 0);
        assert_eq!(erdos_renyi(&mut rng, 10, 1.0).edge_count(), 45);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.node_count(), 10);
        // Two K4s (6 edges each) + path of 3 edges.
        assert_eq!(g.edge_count(), 6 + 6 + 3);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn complete_minus_matching_degrees() {
        let g = complete_minus_matching(6);
        assert_eq!(g.edge_count(), 15 - 3);
        assert_eq!(g.min_degree(), 4);
    }

    #[test]
    fn torus_is_4_regular_and_4_connected() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.edge_count(), 2 * 20);
        assert_eq!(crate::connectivity::edge_connectivity(&g), 4);
    }

    #[test]
    #[should_panic]
    fn tiny_torus_rejected() {
        torus(2, 5);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_the_lattice() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = watts_strogatz(&mut rng, 20, 4, 0.0);
        let lattice = circulant(20, 2);
        assert_eq!(g.edge_count(), lattice.edge_count());
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn watts_strogatz_rewired_stays_connected_with_stable_edge_budget() {
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = watts_strogatz(&mut rng, 30, 6, 0.3);
            // Every lattice stub either survives or is rewired (or, rarely,
            // dropped when both the retries and the fallback hit duplicates),
            // so the edge budget stays within a few percent of `n·k/2`.
            assert!(g.edge_count() <= 30 * 3);
            assert!(g.edge_count() >= 30 * 3 - 4);
            assert!(
                crate::traversal::diameter(&g).is_some(),
                "seed {seed}: rewired graph must stay connected"
            );
        }
    }

    #[test]
    fn expander_d_regular_is_seeded_and_near_regular() {
        let a = expander_d_regular(40, 6, 9);
        let b = expander_d_regular(40, 6, 9);
        let c = expander_d_regular(40, 6, 10);
        assert_eq!(format!("{:?}", a.edges()), format!("{:?}", b.edges()));
        assert_ne!(format!("{:?}", a.edges()), format!("{:?}", c.edges()));
        assert!(a.min_degree() >= 5);
        assert!(a.max_degree() <= 6);
        assert!(crate::traversal::diameter(&a).is_some());
    }

    #[test]
    fn ring_of_cliques_shape_and_connectivity() {
        let g = ring_of_cliques(4, 5);
        assert_eq!(g.node_count(), 20);
        // 4 cliques of C(5,2)=10 edges plus 4 bridges.
        assert_eq!(g.edge_count(), 4 * 10 + 4);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 5); // bridge endpoints
        assert_eq!(crate::connectivity::edge_connectivity(&g), 2);
        assert!(crate::traversal::diameter(&g).is_some());
    }

    #[test]
    #[should_panic]
    fn ring_of_cliques_needs_three_cliques() {
        ring_of_cliques(2, 4);
    }

    #[test]
    fn graph_defs_build_the_same_graphs_as_direct_calls() {
        let cases: Vec<(GraphDef, Graph)> = vec![
            (GraphDef::complete(9), complete(9)),
            (GraphDef::circulant(18, 4), circulant(18, 4)),
            (GraphDef::grid(4, 5), grid(4, 5)),
            (GraphDef::torus(4, 5), torus(4, 5)),
            (GraphDef::expander(24, 8, 7), expander_d_regular(24, 8, 7)),
            (GraphDef::ring_of_cliques(4, 5), ring_of_cliques(4, 5)),
            (GraphDef::barbell(5, 2), barbell(5, 2)),
            (GraphDef::new(GraphFamily::Hypercube, 4), hypercube(4)),
        ];
        for (def, expected) in cases {
            let built = def.build().expect("valid def");
            assert_eq!(
                format!("{:?}", built.edges()),
                format!("{:?}", expected.edges()),
                "def {} drifted from its generator",
                def.display_name()
            );
        }
        // The seeded small world matches a generator call on the same stream.
        let def = GraphDef::watts_strogatz(24, 6, 0.2, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let expected = watts_strogatz(&mut rng, 24, 6, 0.2);
        assert_eq!(
            format!("{:?}", def.build().unwrap().edges()),
            format!("{:?}", expected.edges())
        );
    }

    #[test]
    fn graph_def_display_names_match_the_zoo_convention() {
        assert_eq!(GraphDef::complete(12).display_name(), "K12");
        assert_eq!(GraphDef::circulant(18, 4).display_name(), "circ(18,4)");
        assert_eq!(GraphDef::grid(4, 4).display_name(), "grid4x4");
        assert_eq!(GraphDef::torus(4, 5).display_name(), "torus4x5");
        assert_eq!(
            GraphDef::expander(24, 8, 0).display_name(),
            "expander(24,8)"
        );
        assert_eq!(
            GraphDef::watts_strogatz(24, 6, 0.2, 0).display_name(),
            "small-world(24,6)"
        );
        assert_eq!(
            GraphDef::ring_of_cliques(4, 5).display_name(),
            "ring-of-cliques(4,5)"
        );
        assert_eq!(GraphDef::barbell(5, 2).display_name(), "barbell(5,2)");
    }

    #[test]
    fn graph_def_assertions_become_typed_errors() {
        assert!(matches!(
            GraphDef::new(GraphFamily::Cycle, 2).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::torus(2, 5).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::circulant(6, 3).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::new(GraphFamily::Grid, 3).build(),
            Err(GraphDefError::MissingParam { param: "cols", .. })
        ));
        assert!(matches!(
            GraphDef::watts_strogatz(20, 3, 0.2, 1).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::ring_of_cliques(2, 4).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        // Spec-reachable inputs that used to panic (underflow / shift
        // overflow) or silently truncate are typed errors too.
        assert!(matches!(
            GraphDef::barbell(0, 2).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::new(GraphFamily::Hypercube, 64).build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::new(GraphFamily::Circulant, 10)
                .with_param("k", -1.0)
                .build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
        assert!(matches!(
            GraphDef::new(GraphFamily::Grid, 4)
                .with_param("cols", 4.7)
                .build(),
            Err(GraphDefError::InvalidSize { .. })
        ));
    }

    #[test]
    fn graph_family_labels_round_trip() {
        for family in GraphFamily::ALL {
            assert_eq!(GraphFamily::from_label(family.label()), Some(family));
        }
        assert_eq!(GraphFamily::from_label("no-such-family"), None);
    }
}
