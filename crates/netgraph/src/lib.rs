//! Graph substrate for the mobile-adversary CONGEST reproduction.
//!
//! Provides the undirected graph representation, the graph families the
//! paper's compilers target (cliques, expanders, `k`-edge-connected graphs),
//! and the structural decompositions the compilers consume:
//!
//! * [`tree_packing`] — low-diameter `(k, D_TP, η)` tree packings
//!   (Definitions 6–7, Appendix C),
//! * [`cycle_cover`] — fault-tolerant cycle covers and good cycle colourings
//!   (Definition 8, Lemma 5.2),
//! * [`connectivity`] — edge connectivity, edge-disjoint path systems,
//!   `(k, D_TP)`-connectivity estimation and conductance.
//!
//! # Example
//!
//! ```
//! use netgraph::generators;
//! use netgraph::connectivity::edge_connectivity;
//! use netgraph::tree_packing::greedy_low_depth_packing;
//!
//! let g = generators::circulant(16, 3);          // a 6-edge-connected graph
//! assert_eq!(edge_connectivity(&g), 6);
//! let packing = greedy_low_depth_packing(&g, 0, 4, 2);
//! assert!(packing.trees.iter().all(|t| t.is_spanning(&g)));
//! ```

pub mod connectivity;
pub mod cycle_cover;
pub mod generators;
pub mod graph;
pub mod spanning;
pub mod traversal;
pub mod tree_packing;

pub use generators::{GraphDef, GraphDefError, GraphFamily};
pub use graph::{ArcId, CsrEntry, CsrIndex, Edge, EdgeId, Graph, NodeId};
pub use spanning::RootedTree;
pub use tree_packing::{PackingQuality, PackingVersion, TreePacking};
