//! Breadth-first traversal, connectivity and distance utilities.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Result of a BFS from a single source.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` = hop distance from the source, or `None` if unreachable.
    pub dist: Vec<Option<usize>>,
    /// `parent[v]` = predecessor on a shortest path, `None` for the source and
    /// unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// The source node.
    pub source: NodeId,
}

impl BfsResult {
    /// Shortest path from the source to `target` (inclusive of both endpoints),
    /// or `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        self.dist[target]?;
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Eccentricity of the source restricted to its connected component.
    pub fn eccentricity(&self) -> usize {
        self.dist.iter().flatten().copied().max().unwrap_or(0)
    }
}

/// Breadth-first search from `source`.
pub fn bfs(g: &Graph, source: NodeId) -> BfsResult {
    let n = g.node_count();
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].unwrap();
        for &(v, _) in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        source,
    }
}

/// Whether the graph is connected (the empty graph is considered connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs(g, 0).dist.iter().all(|d| d.is_some())
}

/// Connected components as a vector of component ids per node (ids are dense,
/// starting at 0, in order of discovery).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let r = bfs(g, s);
        for (v, dist) in r.dist.iter().enumerate() {
            if dist.is_some() && comp[v] == usize::MAX {
                comp[v] = next;
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g)
        .into_iter()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// The exact diameter (maximum eccentricity) of a connected graph, computed by
/// all-sources BFS, or `None` if the graph is disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 || !is_connected(g) {
        return None;
    }
    Some(
        (0..g.node_count())
            .map(|s| bfs(g, s).eccentricity())
            .max()
            .unwrap_or(0),
    )
}

/// Hop distance between two nodes, if connected.
pub fn distance(g: &Graph, a: NodeId, b: NodeId) -> Option<usize> {
    bfs(g, a).dist[b]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(r.path_to(4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.eccentricity(), 4);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.dist[3], None);
        assert_eq!(r.path_to(3), None);
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
        assert_eq!(connected_components(&g), vec![0, 0, 1, 1]);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(6)), Some(1));
        assert_eq!(diameter(&generators::grid(3, 3)), Some(4));
        assert_eq!(diameter(&generators::hypercube(4)), Some(4));
        assert_eq!(diameter(&Graph::from_edges(3, &[(0, 1)])), None);
    }

    #[test]
    fn distance_symmetric() {
        let g = generators::grid(4, 4);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(distance(&g, a, b), distance(&g, b, a));
            }
        }
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::new(0);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(component_count(&g), 0);
    }
}
