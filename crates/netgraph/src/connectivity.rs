//! Edge connectivity, edge-disjoint paths and conductance.
//!
//! The paper's results are parameterised by structural quantities of the
//! communication graph:
//!
//! * **edge connectivity** `λ(G)` — eavesdropper security needs `f + 1`,
//!   byzantine resilience needs `2f + 1` (general graphs) or `Ω(f log n)`
//!   (tree-packing compiler);
//! * **(k, D_TP)-connectivity** — `k` edge-disjoint paths of length ≤ `D_TP`
//!   between every pair, governing the depth of tree packings;
//! * **conductance** `φ` — the expander compiler tolerates `f = Õ(kφ)` faults
//!   with overhead `Õ(r/φ)`.
//!
//! These routines compute (exactly, at simulation scale) or estimate those
//! quantities so experiments can report them alongside measured overheads.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// Maximum number of edge-disjoint `s`–`t` paths (equivalently the minimum
/// `s`–`t` edge cut), computed with BFS augmenting paths on the unit-capacity
/// directed version of the graph.
pub fn edge_disjoint_path_count(g: &Graph, s: NodeId, t: NodeId) -> usize {
    edge_disjoint_paths(g, s, t, usize::MAX).len()
}

/// Find up to `limit` edge-disjoint `s`–`t` paths (each as a node sequence).
///
/// Uses unit-capacity max-flow; after the flow is computed the paths are
/// decomposed from the residual graph.  Shorter augmenting paths are found
/// first (BFS), which empirically keeps path lengths close to the
/// `(k, D_TP)`-connectivity profile used by the paper.
pub fn edge_disjoint_paths(g: &Graph, s: NodeId, t: NodeId, limit: usize) -> Vec<Vec<NodeId>> {
    if s == t {
        return Vec::new();
    }
    let m = g.edge_count();
    // capacity per arc: arc 2e = u->v, arc 2e+1 = v->u, both capacity 1.
    let mut used = vec![false; 2 * m];
    let mut flow_paths = 0usize;
    loop {
        if flow_paths >= limit {
            break;
        }
        // BFS in the residual graph.
        let n = g.node_count();
        let mut pred: Vec<Option<(NodeId, EdgeId, bool)>> = vec![None; n]; // (prev node, edge, forward?)
        let mut seen = vec![false; n];
        seen[s] = true;
        let mut q = VecDeque::new();
        q.push_back(s);
        'bfs: while let Some(u) = q.pop_front() {
            for &(v, e) in g.neighbors(u) {
                let arc = g.arc(e, u, v);
                let rev = g.arc(e, v, u);
                // Residual capacity exists if this direction is unused, or the
                // opposite direction carries flow we can cancel.
                let can_forward = !used[arc];
                let can_cancel = used[rev];
                if (can_forward || can_cancel) && !seen[v] {
                    seen[v] = true;
                    pred[v] = Some((u, e, can_forward));
                    if v == t {
                        break 'bfs;
                    }
                    q.push_back(v);
                }
            }
        }
        if !seen[t] {
            break;
        }
        // Augment along the found path.
        let mut cur = t;
        while cur != s {
            let (p, e, forward) = pred[cur].unwrap();
            let arc = g.arc(e, p, cur);
            let rev = g.arc(e, cur, p);
            if forward {
                used[arc] = true;
            } else {
                used[rev] = false;
            }
            cur = p;
        }
        flow_paths += 1;
    }
    // Decompose the flow into paths.
    decompose_paths(g, s, t, &mut used, flow_paths)
}

fn decompose_paths(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    used: &mut [bool],
    count: usize,
) -> Vec<Vec<NodeId>> {
    let mut paths = Vec::with_capacity(count);
    for _ in 0..count {
        let mut path = vec![s];
        let mut cur = s;
        let mut guard = 0;
        while cur != t {
            guard += 1;
            if guard > g.node_count() * 2 {
                break;
            }
            let mut advanced = false;
            for &(v, e) in g.neighbors(cur) {
                let arc = g.arc(e, cur, v);
                if used[arc] {
                    used[arc] = false;
                    path.push(v);
                    cur = v;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        if cur == t {
            paths.push(path);
        }
    }
    paths
}

/// Global edge connectivity `λ(G)`: the minimum over all pairs of the maximum
/// number of edge-disjoint paths.  Computed as `min_v maxflow(0, v)`, which is
/// correct because a global minimum cut separates node 0 from some node.
/// Returns 0 for disconnected or single-node graphs.
pub fn edge_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    (1..n)
        .map(|v| edge_disjoint_path_count(g, 0, v))
        .min()
        .unwrap_or(0)
}

/// The edge set of one global minimum edge cut (a witness for
/// [`edge_connectivity`]): one unit-capacity max flow per candidate sink,
/// keeping the residual source side of the smallest; the cut is the set of
/// edges leaving that side.  A sink's flow computation aborts as soon as it
/// reaches the best cut found so far (it cannot yield a smaller one), so the
/// sweep costs about as much as [`edge_connectivity`] itself.  Returns edge
/// ids in increasing order; empty for disconnected or single-node graphs
/// (where the cut is trivial).
///
/// Tree packings are bounded by such cuts — every spanning tree crosses every
/// cut at least once, so `k` trees at per-edge load `η` need `η·|cut| ≥ k` —
/// which makes the *usage* of a minimum cut the tightest structural measure of
/// packing quality ([`crate::tree_packing::PackingQuality`]).
pub fn min_edge_cut(g: &Graph) -> Vec<EdgeId> {
    let n = g.node_count();
    if n <= 1 {
        return Vec::new();
    }
    let m = g.edge_count();
    let mut best_flow = usize::MAX;
    let mut best_side: Vec<bool> = Vec::new();
    for sink in 1..n {
        let mut used = vec![false; 2 * m];
        let mut flow = 0usize;
        let side = loop {
            if flow >= best_flow {
                break None; // cannot beat the best cut found so far
            }
            let mut pred: Vec<Option<(NodeId, EdgeId, bool)>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[0] = true;
            let mut q = VecDeque::new();
            q.push_back(0);
            'bfs: while let Some(u) = q.pop_front() {
                for &(v, e) in g.neighbors(u) {
                    let arc = g.arc(e, u, v);
                    let rev = g.arc(e, v, u);
                    if (!used[arc] || used[rev]) && !seen[v] {
                        seen[v] = true;
                        pred[v] = Some((u, e, !used[arc]));
                        if v == sink {
                            break 'bfs;
                        }
                        q.push_back(v);
                    }
                }
            }
            if !seen[sink] {
                // Max flow reached: `seen` is the source side of a minimum
                // 0–sink cut.
                break Some(seen);
            }
            let mut cur = sink;
            while cur != 0 {
                let (p, e, forward) = pred[cur].unwrap();
                let arc = g.arc(e, p, cur);
                let rev = g.arc(e, cur, p);
                if forward {
                    used[arc] = true;
                } else {
                    used[rev] = false;
                }
                cur = p;
            }
            flow += 1;
        };
        if let Some(seen) = side {
            best_flow = flow;
            best_side = seen;
        }
    }
    g.edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| best_side[e.u] != best_side[e.v])
        .map(|(id, _)| id)
        .collect()
}

/// Check `(k, d)`-connectivity between a specific pair: are there `k`
/// edge-disjoint `s`–`t` paths each of length at most `d`?
///
/// This uses the BFS-augmenting max-flow (shortest augmenting paths first) and
/// then checks the lengths of the decomposed paths; it is a practical
/// sufficient check (the exact problem is NP-hard in general), which is how the
/// experiments estimate `D_TP`.
pub fn has_k_short_disjoint_paths(g: &Graph, s: NodeId, t: NodeId, k: usize, d: usize) -> bool {
    let paths = edge_disjoint_paths(g, s, t, k);
    paths.len() >= k && paths.iter().take(k).all(|p| p.len() - 1 <= d)
}

/// Estimate the tree-packing diameter `D_TP(k)`: the smallest `d` such that all
/// *adjacent* pairs (a cheaper proxy for all pairs, which is what the
/// compilers' per-edge correction paths need) have `k` edge-disjoint paths of
/// length ≤ `d`.  Returns `None` when some adjacent pair does not even have `k`
/// edge-disjoint paths.
pub fn estimate_dtp(g: &Graph, k: usize) -> Option<usize> {
    let mut worst = 0usize;
    for e in g.edges() {
        let paths = edge_disjoint_paths(g, e.u, e.v, k);
        if paths.len() < k {
            return None;
        }
        let longest = paths.iter().map(|p| p.len() - 1).max().unwrap_or(0);
        worst = worst.max(longest);
    }
    Some(worst)
}

/// Conductance of the cut `(S, V \ S)`: `|E(S, V\S)| / min(vol(S), vol(V\S))`.
/// Returns `None` if either side has zero volume.
pub fn cut_conductance(g: &Graph, in_s: &[bool]) -> Option<f64> {
    let mut cut = 0usize;
    let mut vol_s = 0usize;
    let mut vol_rest = 0usize;
    for u in g.nodes() {
        if in_s[u] {
            vol_s += g.degree(u);
        } else {
            vol_rest += g.degree(u);
        }
    }
    for e in g.edges() {
        if in_s[e.u] != in_s[e.v] {
            cut += 1;
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(cut as f64 / denom as f64)
    }
}

/// Exact conductance by exhaustive enumeration of all cuts.  Exponential in
/// `n`; intended for graphs with at most ~20 nodes (tests, calibration).
///
/// # Panics
///
/// Panics if `n > 24` (would take far too long) or `n < 2`.
pub fn exact_conductance(g: &Graph) -> f64 {
    let n = g.node_count();
    assert!(
        (2..=24).contains(&n),
        "exact_conductance needs 2..=24 nodes"
    );
    let mut best = f64::INFINITY;
    for mask in 1u64..(1u64 << (n - 1)) {
        let in_s: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        if let Some(c) = cut_conductance(g, &in_s) {
            best = best.min(c);
        }
    }
    best
}

/// Estimate the conductance via a sweep cut over the second eigenvector of the
/// normalised adjacency matrix (power iteration with deflation of the trivial
/// eigenvector).  Returns a valid cut's conductance — an *upper bound* on the
/// true conductance, and by Cheeger's inequality within a quadratic factor of
/// the optimum.  Suitable for the larger expander instances.
pub fn sweep_conductance(g: &Graph, iterations: usize) -> Option<f64> {
    let n = g.node_count();
    if n < 2 || g.edge_count() == 0 {
        return None;
    }
    let deg: Vec<f64> = (0..n).map(|u| g.degree(u).max(1) as f64).collect();
    // Start from a deterministic pseudo-random vector; orthogonalise against
    // the stationary direction (sqrt(deg)).
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761 + 12345) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    let stat: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();
    let stat_norm: f64 = stat.iter().map(|v| v * v).sum::<f64>().sqrt();
    let stat: Vec<f64> = stat.iter().map(|v| v / stat_norm).collect();
    for _ in 0..iterations {
        // Deflate.
        let proj: f64 = x.iter().zip(&stat).map(|(a, b)| a * b).sum();
        for i in 0..n {
            x[i] -= proj * stat[i];
        }
        // y = (I + D^{-1/2} A D^{-1/2})/2 x   (lazy walk keeps it stable)
        let mut y = vec![0.0f64; n];
        for u in 0..n {
            for &(v, _) in g.neighbors(u) {
                y[v] += x[u] / (deg[u].sqrt() * deg[v].sqrt());
            }
        }
        for i in 0..n {
            x[i] = 0.5 * x[i] + 0.5 * y[i];
        }
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return exact_or_trivial(g);
        }
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
    // Sweep cut over the embedding x / sqrt(deg).
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ka = x[a] / deg[a].sqrt();
        let kb = x[b] / deg[b].sqrt();
        ka.partial_cmp(&kb).unwrap()
    });
    let mut in_s = vec![false; n];
    let mut best: Option<f64> = None;
    for &v in order.iter().take(n - 1) {
        in_s[v] = true;
        if let Some(c) = cut_conductance(g, &in_s) {
            best = Some(best.map_or(c, |b: f64| b.min(c)));
        }
    }
    best
}

fn exact_or_trivial(g: &Graph) -> Option<f64> {
    if g.node_count() <= 20 {
        Some(exact_conductance(g))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn disjoint_paths_on_cycle() {
        let g = generators::cycle(8);
        assert_eq!(edge_disjoint_path_count(&g, 0, 4), 2);
        let paths = edge_disjoint_paths(&g, 0, 4, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), 4);
        }
        // The two paths must be edge-disjoint: total edges = 8.
        let total_edges: usize = paths.iter().map(|p| p.len() - 1).sum();
        assert_eq!(total_edges, 8);
    }

    #[test]
    fn disjoint_paths_limit_respected() {
        let g = generators::complete(6);
        let paths = edge_disjoint_paths(&g, 0, 5, 3);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn connectivity_of_standard_graphs() {
        assert_eq!(edge_connectivity(&generators::path(5)), 1);
        assert_eq!(edge_connectivity(&generators::cycle(7)), 2);
        assert_eq!(edge_connectivity(&generators::complete(6)), 5);
        assert_eq!(edge_connectivity(&generators::circulant(11, 3)), 6);
        assert_eq!(edge_connectivity(&generators::hypercube(4)), 4);
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(edge_connectivity(&disconnected), 0);
        assert_eq!(edge_connectivity(&Graph::new(1)), 0);
    }

    #[test]
    fn same_endpoints_yield_no_paths() {
        let g = generators::complete(4);
        assert!(edge_disjoint_paths(&g, 2, 2, 5).is_empty());
    }

    #[test]
    fn short_disjoint_paths_check() {
        let g = generators::complete(6);
        // Between adjacent nodes in K6: 1 direct path + 4 paths of length 2.
        assert!(has_k_short_disjoint_paths(&g, 0, 1, 5, 2));
        assert!(!has_k_short_disjoint_paths(&g, 0, 1, 6, 2));
        let c = generators::cycle(10);
        assert!(has_k_short_disjoint_paths(&c, 0, 1, 2, 9));
        assert!(!has_k_short_disjoint_paths(&c, 0, 1, 2, 5));
    }

    #[test]
    fn dtp_estimates() {
        let clique = generators::complete(8);
        assert_eq!(estimate_dtp(&clique, 2), Some(2));
        let cyc = generators::cycle(9);
        assert_eq!(estimate_dtp(&cyc, 2), Some(8));
        assert_eq!(estimate_dtp(&cyc, 3), None);
    }

    #[test]
    fn min_edge_cut_witnesses_edge_connectivity() {
        for g in [
            generators::cycle(7),
            generators::circulant(12, 2),
            generators::barbell(4, 1),
            generators::complete(6),
            generators::grid(3, 4),
        ] {
            let lambda = edge_connectivity(&g);
            let cut = min_edge_cut(&g);
            assert_eq!(cut.len(), lambda, "cut size must equal λ");
            // Removing the cut edges disconnects the graph.
            let keep: Vec<(usize, usize)> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(id, _)| !cut.contains(id))
                .map(|(_, e)| (e.u, e.v))
                .collect();
            let cut_graph = Graph::from_edges(g.node_count(), &keep);
            assert!(
                !crate::traversal::is_connected(&cut_graph),
                "removing the cut must disconnect the graph"
            );
            // Edge ids come back sorted and unique.
            assert!(cut.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(min_edge_cut(&Graph::new(1)).is_empty());
    }

    #[test]
    fn conductance_exact_values() {
        // Complete graph K4: best cut is 2-vs-2: 4 crossing edges / volume 6 = 2/3.
        let k4 = generators::complete(4);
        assert!((exact_conductance(&k4) - 2.0 / 3.0).abs() < 1e-9);
        // Barbell: bottleneck single edge over ~clique volume → small conductance.
        let bb = generators::barbell(4, 1);
        assert!(exact_conductance(&bb) < 0.1);
        // Cycle of 8: best cut is half/half: 2 / 8 = 0.25.
        let c8 = generators::cycle(8);
        assert!((exact_conductance(&c8) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn sweep_conductance_upper_bounds_and_detects_bottleneck() {
        let bb = generators::barbell(6, 2);
        let exact = exact_conductance(&bb);
        let sweep = sweep_conductance(&bb, 200).unwrap();
        assert!(sweep >= exact - 1e-9);
        assert!(sweep < 0.2, "sweep failed to find the bottleneck: {sweep}");
        // On an expander-ish graph the sweep value should be large.
        let hc = generators::hypercube(5);
        let sweep_hc = sweep_conductance(&hc, 200).unwrap();
        assert!(
            sweep_hc > 0.1,
            "hypercube sweep conductance too small: {sweep_hc}"
        );
    }

    #[test]
    fn cut_conductance_degenerate_cuts() {
        let g = generators::complete(4);
        assert_eq!(cut_conductance(&g, &[false; 4]), None);
        assert_eq!(cut_conductance(&g, &[true; 4]), None);
    }
}
