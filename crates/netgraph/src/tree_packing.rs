//! Low-diameter tree packings (Definition 6 and Definition 7 of the paper).
//!
//! A `(k, D_TP, η)` tree packing is a collection of `k` spanning trees of
//! diameter ≤ `D_TP` such that every edge of the host graph is used by at most
//! `η` trees.  A *weak* packing only requires 0.9k of the subgraphs to be
//! spanning trees rooted at a common root.  The byzantine compiler of
//! Theorem 3.5 is driven entirely by such a packing.
//!
//! Four constructions are provided:
//!
//! * [`greedy_low_depth_packing`] — **v1**, the multiplicative-weights packing
//!   of the paper's Appendix C: trees are added one by one, each a shallow
//!   spanning tree that prefers lightly-loaded edges;
//! * [`augmented_low_depth_packing`] — **v2**, the greedy packing followed by
//!   [`improve_packing`]: a Gabow-style augmenting-path repair pass that
//!   re-roots blocked subtrees through underloaded edges until the per-edge
//!   load matches the [`load_floor`] the graph admits (classic packing results
//!   — Nash-Williams/Tutte, Gabow's matroid-union augmentation — show such
//!   packings are computable in polynomial time);
//! * [`star_packing`] — the exact `(n, 2, 2)` packing of the complete graph
//!   used by the CONGESTED CLIQUE compilers (Theorems 1.6 / 4.11);
//! * [`random_coloring_packing`] — the fault-free version of the Lemma 3.10
//!   construction for expanders (colour every edge with a random colour in
//!   `[k]`, take a BFS tree of every colour class).
//!
//! [`PackingQuality`] measures a packing against its `(k, D_TP, η)` target —
//! good-tree count, max edge load, usage of a minimum cut — which is what the
//! resilient compilers report so that validation can *predict* correction
//! strength instead of merely gating on connectivity.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::spanning::{min_cost_depth_bounded_tree, subgraph_bfs_tree, RootedTree};
use std::collections::VecDeque;

use rand::Rng;

/// A collection of (sub)trees of a host graph intended as a tree packing.
#[derive(Debug, Clone)]
pub struct TreePacking {
    /// The trees of the packing.  Not all of them need to be spanning (weak packings).
    pub trees: Vec<RootedTree>,
}

impl TreePacking {
    /// Construct from a list of trees.
    pub fn new(trees: Vec<RootedTree>) -> Self {
        TreePacking { trees }
    }

    /// Number of trees `k`.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the packing is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Load of the packing: the maximum, over host edges, of the number of
    /// trees using that edge.
    pub fn load(&self, g: &Graph) -> usize {
        let mut use_count = vec![0usize; g.edge_count()];
        for t in &self.trees {
            for &e in &t.edges {
                use_count[e] += 1;
            }
        }
        use_count.into_iter().max().unwrap_or(0)
    }

    /// Maximum height over the trees (a bound on `D_TP` up to a factor 2).
    pub fn max_height(&self) -> usize {
        self.trees.iter().map(|t| t.height()).max().unwrap_or(0)
    }

    /// Number of trees that are spanning trees of `g` with height at most
    /// `max_height` and root equal to `root`.
    pub fn count_good(&self, g: &Graph, root: NodeId, max_height: usize) -> usize {
        self.trees
            .iter()
            .filter(|t| t.root == root && t.is_spanning(g) && t.height() <= max_height)
            .count()
    }

    /// Whether this is a weak `(k, D_TP, η)` packing per Definition 7:
    /// at least `0.9 k` trees are spanning, rooted at `root`, of height ≤
    /// `max_height`, and the load is at most `eta`.
    pub fn is_weak_packing(&self, g: &Graph, root: NodeId, max_height: usize, eta: usize) -> bool {
        let good = self.count_good(g, root, max_height);
        10 * good >= 9 * self.len() && self.load(g) <= eta
    }

    /// Indices of trees using the given edge.
    pub fn trees_using_edge(&self, e: EdgeId) -> Vec<usize> {
        self.trees
            .iter()
            .enumerate()
            .filter(|(_, t)| t.uses_edge(e))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The Appendix-C greedy multiplicative-weights packing: add `k` trees one at a
/// time; tree `i` is a hop-bounded lightest spanning tree computed under edge
/// weights `a^{load_i(e)/η}` so that heavily loaded edges are avoided.
/// `eta_hint` controls the weight normalisation (use the target load, e.g.
/// `O(log n)`); the hop budget is `2·diam(G) + 2`, matching the
/// `O(D_TP log n)`-depth guarantee of Theorem 3.1 up to constants.
///
/// All trees are rooted at `root`.
///
/// # Panics
///
/// Panics if the graph is disconnected (a spanning tree cannot be built) or
/// `k == 0`.
pub fn greedy_low_depth_packing(g: &Graph, root: NodeId, k: usize, eta_hint: usize) -> TreePacking {
    greedy_low_depth_packing_with_budget(g, root, k, eta_hint, None)
}

/// [`greedy_low_depth_packing`] with an explicit hop budget for the trees.
/// When `hop_budget` is `None`, `2·diam(G) + 2` is used.
///
/// # Panics
///
/// Panics if the graph is disconnected or `k == 0`.
pub fn greedy_low_depth_packing_with_budget(
    g: &Graph,
    root: NodeId,
    k: usize,
    eta_hint: usize,
    hop_budget: Option<usize>,
) -> TreePacking {
    assert!(k > 0, "k must be positive");
    assert!(
        crate::traversal::is_connected(g),
        "greedy packing requires a connected graph"
    );
    let diam = crate::traversal::diameter(g).unwrap_or(g.node_count());
    let budget = hop_budget.unwrap_or(2 * diam + 2);
    let eta = eta_hint.max(1) as f64;
    let a: f64 = 8.0; // base of the multiplicative weights
    let mut load = vec![0usize; g.edge_count()];
    let mut trees = Vec::with_capacity(k);
    for _ in 0..k {
        let weights: Vec<f64> = load.iter().map(|&l| a.powf(l as f64 / eta)).collect();
        let tree = min_cost_depth_bounded_tree(g, root, &weights, budget);
        for &e in &tree.edges {
            load[e] += 1;
        }
        trees.push(tree);
    }
    TreePacking::new(trees)
}

/// Which tree-packing construction a resilient compiler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingVersion {
    /// The greedy multiplicative-weights packing
    /// ([`greedy_low_depth_packing`]).
    V1Greedy,
    /// The greedy packing plus the augmenting-path repair pass
    /// ([`augmented_low_depth_packing`]).
    #[default]
    V2Augmented,
}

impl PackingVersion {
    /// Stable lowercase label (`v1` / `v2`), used by serialized specs and
    /// compiler display names.
    pub fn label(self) -> &'static str {
        match self {
            PackingVersion::V1Greedy => "v1",
            PackingVersion::V2Augmented => "v2",
        }
    }

    /// Inverse of [`PackingVersion::label`].
    pub fn from_label(label: &str) -> Option<PackingVersion> {
        match label {
            "v1" => Some(PackingVersion::V1Greedy),
            "v2" => Some(PackingVersion::V2Augmented),
            _ => None,
        }
    }
}

/// Quality of a packing against its `(k, D_TP, η)` target: the structural
/// quantities that decide whether the correction layer's majority argument
/// holds, measured so experiment reports and validation can compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingQuality {
    /// Number of trees `k`.
    pub trees: usize,
    /// Trees that are spanning, rooted at the common root, of height at most
    /// the budget (the "good" trees of Definition 7).
    pub good_trees: usize,
    /// Maximum, over host edges, of the number of trees using that edge.
    pub max_edge_load: usize,
    /// The smallest max-edge-load any `k`-tree packing of this graph can have:
    /// `⌈k(n−1)/m⌉` (see [`load_floor`]).
    pub load_floor: usize,
    /// Tree-edge slots crossing one minimum edge cut
    /// ([`crate::connectivity::min_edge_cut`]).  Every spanning tree crosses
    /// every cut, so `good_trees ≤ min_cut_usage ≤ max_edge_load · λ`.
    pub min_cut_usage: usize,
    /// Maximum tree height.
    pub max_height: usize,
}

impl PackingQuality {
    /// Measure `packing` against root `root` and height budget `max_height`.
    pub fn measure(g: &Graph, packing: &TreePacking, root: NodeId, max_height: usize) -> Self {
        let cut = crate::connectivity::min_edge_cut(g);
        let min_cut_usage = packing
            .trees
            .iter()
            .map(|t| t.edges.iter().filter(|e| cut.contains(e)).count())
            .sum();
        PackingQuality {
            trees: packing.len(),
            good_trees: packing.count_good(g, root, max_height),
            max_edge_load: packing.load(g),
            load_floor: load_floor(g, packing.len()),
            min_cut_usage,
            max_height: packing.max_height(),
        }
    }
}

/// The smallest max-edge-load any packing of `k` spanning trees of `g` can
/// achieve: `k` trees occupy `k(n−1)` edge slots over `m` edges, so some edge
/// carries at least `⌈k(n−1)/m⌉` trees.
pub fn load_floor(g: &Graph, k: usize) -> usize {
    let n = g.node_count();
    let m = g.edge_count();
    if m == 0 {
        return 0;
    }
    (k * n.saturating_sub(1)).div_ceil(m)
}

/// Tree-packing **v2**: the greedy packing of [`greedy_low_depth_packing`]
/// followed by the [`improve_packing`] augmenting-path repair pass, driving
/// the per-edge load down to `max(eta_hint, load_floor)` — the level the
/// graph actually admits — while keeping every tree spanning, rooted at
/// `root` and within the hop budget.
///
/// This closes the gap PR 3 exposed: the greedy heuristic can leave an edge
/// carrying one tree more than necessary, and a heaviest-edge mobile
/// adversary fails *every* instance scheduled over that edge at once.  The
/// deterministic repair pass removes exactly that weakness.
///
/// # Panics
///
/// Panics if the graph is disconnected or `k == 0`.
pub fn augmented_low_depth_packing(
    g: &Graph,
    root: NodeId,
    k: usize,
    eta_hint: usize,
) -> TreePacking {
    augmented_low_depth_packing_with_budget(g, root, k, eta_hint, None)
}

/// [`augmented_low_depth_packing`] with an explicit hop budget (`None` uses
/// `2·diam(G) + 2`, matching v1; the repair pass re-roots subtrees, so it is
/// given one extra diameter of slack on top of the construction budget).
///
/// # Panics
///
/// Panics if the graph is disconnected or `k == 0`.
pub fn augmented_low_depth_packing_with_budget(
    g: &Graph,
    root: NodeId,
    k: usize,
    eta_hint: usize,
    hop_budget: Option<usize>,
) -> TreePacking {
    augmented_low_depth_packing_traced(
        g,
        root,
        k,
        eta_hint,
        hop_budget,
        &mut obs::Tracer::disabled(),
    )
}

/// [`augmented_low_depth_packing_with_budget`] with a tracer: each successful
/// augmenting-chain application of the v2 repair pass emits an
/// [`obs::EventKind::AugmentingChainStep`] point event.
///
/// # Panics
///
/// Panics if the graph is disconnected or `k == 0`.
pub fn augmented_low_depth_packing_traced(
    g: &Graph,
    root: NodeId,
    k: usize,
    eta_hint: usize,
    hop_budget: Option<usize>,
    tracer: &mut obs::Tracer,
) -> TreePacking {
    let diam = crate::traversal::diameter(g).unwrap_or(g.node_count());
    let budget = hop_budget.unwrap_or(2 * diam + 2);
    let greedy = greedy_low_depth_packing_with_budget(g, root, k, eta_hint, Some(budget));
    let eta_star = load_floor(g, k).max(eta_hint);
    improve_packing_traced(g, root, greedy, eta_star, budget + diam, tracer)
}

/// The v2 repair pass, in two phases:
///
/// 1. **spanning repair** — every tree that fails to span (a blocked subtree
///    the greedy construction left behind) is completed by attaching the
///    missing nodes through the least-loaded available edges;
/// 2. **load reduction** — the packing's maximum edge load is driven down to
///    `eta_star` by Gabow-style augmenting chains of subtree re-rootings,
///    never letting a tree stop spanning or exceed `height_budget`.
///
/// Each augmentation walks a BFS over host edges from the currently heaviest
/// edge towards any edge with residual capacity: edge `e` steps to edge `e'`
/// when some tree using `e` can release it by detaching the subtree below
/// `e`, re-rooting it at the `e'` endpoint inside the detached part and
/// re-attaching it through `e'` (the matroid-union exchange step of Gabow's
/// packing algorithms, specialised to spanning trees).  Applying the chain
/// back-to-front moves one unit of load from the overloaded edge to the
/// underloaded one and leaves every intermediate edge unchanged.  The pass
/// stops at `eta_star` or at a fixpoint; it never makes the packing worse.
///
/// The pass is deterministic — candidate edges, trees and chains are visited
/// in index order — so compilers built on it stay byte-identical across runs
/// and thread counts.
pub fn improve_packing(
    g: &Graph,
    root: NodeId,
    packing: TreePacking,
    eta_star: usize,
    height_budget: usize,
) -> TreePacking {
    improve_packing_traced(
        g,
        root,
        packing,
        eta_star,
        height_budget,
        &mut obs::Tracer::disabled(),
    )
}

/// [`improve_packing`] with a tracer: one
/// [`obs::EventKind::AugmentingChainStep`] point event per successful
/// augmenting-chain application (the `step` field is the load-reduction
/// round index).
pub fn improve_packing_traced(
    g: &Graph,
    root: NodeId,
    packing: TreePacking,
    eta_star: usize,
    height_budget: usize,
    tracer: &mut obs::Tracer,
) -> TreePacking {
    let mut trees = packing.trees;
    for ti in 0..trees.len() {
        complete_spanning(g, root, &mut trees, ti);
    }
    // Each successful augmentation reduces the load potential Σ_e max(0,
    // load(e) − η*) by one; a partially applied (gone-stale) chain still
    // strictly changes the trees, so later attempts see fresh state.  A
    // `false` return means the trees are untouched, and `augment_once` is a
    // pure function of them — retrying would repeat the identical pass — so
    // the first unchanged attempt is the fixpoint.  The round bound is a
    // safety net against partial-application livelock.
    let max_rounds = 8 * g.edge_count().max(1);
    for step in 0..max_rounds {
        let load = edge_loads(g, &trees);
        if load.iter().all(|&l| l <= eta_star) {
            break;
        }
        if !augment_once(g, root, &mut trees, eta_star, height_budget) {
            break;
        }
        tracer.point(obs::EventKind::AugmentingChainStep { step });
    }
    TreePacking::new(trees)
}

/// Phase-1 repair: attach every node tree `ti` fails to reach, always
/// through the least-loaded edge into the reached set (ties: shallower
/// attachment, then smaller node id).  No-op for spanning trees; terminates
/// on connected hosts because every pass attaches one node.
fn complete_spanning(g: &Graph, root: NodeId, trees: &mut [RootedTree], ti: usize) {
    if trees[ti].is_spanning(g) {
        return;
    }
    let mut load = edge_loads(g, trees);
    let mut parent = trees[ti].parent.clone();
    loop {
        let tree = RootedTree::from_parents(g, root, parent.clone());
        let depths = tree.depths();
        if depths.iter().all(Option::is_some) {
            trees[ti] = tree;
            return;
        }
        // (load, attachment depth, missing node): lowest wins.
        let mut best: Option<(usize, usize, NodeId, NodeId, EdgeId)> = None;
        for (e, edge) in g.edges().iter().enumerate() {
            for (inside, outside) in [(edge.u, edge.v), (edge.v, edge.u)] {
                let Some(d) = depths[inside] else { continue };
                if depths[outside].is_some() {
                    continue;
                }
                let cand = (load[e], d + 1, outside, inside, e);
                if best.is_none_or(|b| (cand.0, cand.1, cand.2) < (b.0, b.1, b.2)) {
                    best = Some(cand);
                }
            }
        }
        let Some((_, _, outside, inside, e)) = best else {
            // Disconnected host: leave the fragment as the greedy pass built it.
            trees[ti] = tree;
            return;
        };
        parent[outside] = Some(inside);
        load[e] += 1;
    }
}

/// Per-edge tree counts.
fn edge_loads(g: &Graph, trees: &[RootedTree]) -> Vec<usize> {
    let mut load = vec![0usize; g.edge_count()];
    for t in trees {
        for &e in &t.edges {
            load[e] += 1;
        }
    }
    load
}

/// Nodes of the subtree hanging below tree edge `e` (the child side).
fn subtree_below(g: &Graph, t: &RootedTree, e: EdgeId) -> Vec<bool> {
    let edge = g.edge(e);
    let child = if t.parent[edge.u] == Some(edge.v) {
        edge.u
    } else {
        edge.v
    };
    let children = t.children();
    let mut mask = vec![false; g.node_count()];
    let mut stack = vec![child];
    while let Some(v) = stack.pop() {
        if mask[v] {
            continue;
        }
        mask[v] = true;
        stack.extend(children[v].iter().copied());
    }
    mask
}

/// New parent vector for `t` after detaching the subtree `mask`, re-rooting
/// it at `sub_root` (inside the mask) and attaching it below `attach`
/// (outside): the parent chain from `sub_root` up to the detached subtree's
/// old root is reversed.
fn reattach_subtree(
    t: &RootedTree,
    mask: &[bool],
    sub_root: NodeId,
    attach: NodeId,
) -> Vec<Option<NodeId>> {
    let mut parent = t.parent.clone();
    let mut prev = Some(attach);
    let mut cur = Some(sub_root);
    while let Some(v) = cur {
        debug_assert!(mask[v], "re-rooted chain must stay inside the subtree");
        let next = parent[v].filter(|&p| mask[p]);
        parent[v] = prev;
        prev = Some(v);
        cur = next;
    }
    parent
}

/// Whether the parent vector is a spanning tree of height ≤ `budget`.
fn parents_span_within(g: &Graph, parent: &[Option<NodeId>], root: NodeId, budget: usize) -> bool {
    let t = RootedTree::from_parents(g, root, parent.to_vec());
    t.is_spanning(g) && t.height() <= budget
}

/// One augmenting chain (see [`improve_packing`]).  Returns whether the tree
/// set changed.
fn augment_once(
    g: &Graph,
    root: NodeId,
    trees: &mut [RootedTree],
    eta_star: usize,
    height_budget: usize,
) -> bool {
    let load = edge_loads(g, trees);
    let m = g.edge_count();
    // Start from the heaviest overloaded edge (lowest id on ties: that is the
    // edge a heaviest-targeting adversary would focus on first).
    let Some(start) = (0..m)
        .filter(|&e| load[e] > eta_star)
        .max_by_key(|&e| (load[e], std::cmp::Reverse(e)))
    else {
        return false;
    };
    /// One BFS step: freeing `prev` by moving `tree`'s subtree (re-rooted at
    /// `sub_root`) below `attach` across the discovered edge.
    #[derive(Clone)]
    struct Step {
        prev: EdgeId,
        tree: usize,
        sub_root: NodeId,
        attach: NodeId,
    }
    let mut pred: Vec<Option<Step>> = vec![None; m];
    let mut visited = vec![false; m];
    visited[start] = true;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    let mut goal = None;
    'bfs: while let Some(e) = queue.pop_front() {
        for (ti, t) in trees.iter().enumerate() {
            if !t.uses_edge(e) {
                continue;
            }
            let mask = subtree_below(g, t, e);
            for e2 in 0..m {
                if e2 == e || visited[e2] || t.uses_edge(e2) {
                    continue;
                }
                let edge2 = g.edge(e2);
                // The replacement must cross the detachment split.
                let (attach, sub_root) = if mask[edge2.u] == mask[edge2.v] {
                    continue;
                } else if mask[edge2.v] {
                    (edge2.u, edge2.v)
                } else {
                    (edge2.v, edge2.u)
                };
                // Admit only swaps that keep the tree spanning and within the
                // height budget (checked against the current snapshot).
                let parent = reattach_subtree(t, &mask, sub_root, attach);
                if !parents_span_within(g, &parent, root, height_budget) {
                    continue;
                }
                visited[e2] = true;
                pred[e2] = Some(Step {
                    prev: e,
                    tree: ti,
                    sub_root,
                    attach,
                });
                if load[e2] < eta_star {
                    goal = Some(e2);
                    break 'bfs;
                }
                queue.push_back(e2);
            }
        }
    }
    let Some(mut at) = goal else {
        return false;
    };
    // Unwind the chain and apply it receiving-end first: every applied prefix
    // keeps all loads at or below their snapshot values (plus the one unit
    // the goal edge has room for), so even a chain that goes stale midway
    // never leaves the packing worse than before.
    let mut chain = Vec::new();
    while let Some(step) = pred[at].clone() {
        let dst = at;
        at = step.prev;
        chain.push((step, dst));
    }
    let mut changed = false;
    for (step, dst) in chain {
        let t = &trees[step.tree];
        // Re-verify on the live trees: an earlier chain link may have touched
        // this tree (the BFS planned on a snapshot).
        if !t.uses_edge(step.prev) || t.uses_edge(dst) {
            return changed;
        }
        let mask = subtree_below(g, t, step.prev);
        if !mask[step.sub_root] || mask[step.attach] {
            return changed;
        }
        let parent = reattach_subtree(t, &mask, step.sub_root, step.attach);
        if !parents_span_within(g, &parent, root, height_budget) {
            return changed;
        }
        trees[step.tree] = RootedTree::from_parents(g, root, parent);
        changed = true;
    }
    changed
}

/// The exact `(n, 2, 2)` packing of the complete graph `K_n`: for every centre
/// `c`, the star centred at `c`, re-rooted at the common root `root` (so the
/// tree rooted at `root` has `c` as its single child and every other node as a
/// grandchild; the star centred at `root` itself has depth 1).
///
/// # Panics
///
/// Panics if `g` is not a complete graph.
pub fn star_packing(g: &Graph, root: NodeId) -> TreePacking {
    let n = g.node_count();
    assert_eq!(
        g.edge_count(),
        n * (n - 1) / 2,
        "star_packing requires the complete graph"
    );
    let mut trees = Vec::with_capacity(n);
    for centre in 0..n {
        let mut parent = vec![None; n];
        if centre == root {
            for (v, slot) in parent.iter_mut().enumerate() {
                if v != root {
                    *slot = Some(root);
                }
            }
        } else {
            parent[centre] = Some(root);
            for (v, slot) in parent.iter_mut().enumerate() {
                if v != root && v != centre {
                    *slot = Some(centre);
                }
            }
        }
        trees.push(RootedTree::from_parents(g, root, parent));
    }
    TreePacking::new(trees)
}

/// Fault-free version of the Lemma 3.10 construction: colour every edge
/// independently and uniformly with a colour in `[k]`; for each colour class,
/// return the BFS tree of the colour subgraph rooted at `root` (which may fail
/// to span — that is expected and handled by the *weak* packing notion).
pub fn random_coloring_packing<R: Rng + ?Sized>(
    g: &Graph,
    root: NodeId,
    k: usize,
    rng: &mut R,
) -> TreePacking {
    assert!(k > 0, "k must be positive");
    let mut classes: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
    for e in 0..g.edge_count() {
        classes[rng.gen_range(0..k)].push(e);
    }
    let trees = classes
        .into_iter()
        .map(|edges| subgraph_bfs_tree(g, &edges, root))
        .collect();
    TreePacking::new(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn star_packing_of_clique_is_tight() {
        let g = generators::complete(8);
        let p = star_packing(&g, 0);
        assert_eq!(p.len(), 8);
        assert_eq!(p.load(&g), 2);
        assert!(p.max_height() <= 2);
        assert_eq!(p.count_good(&g, 0, 2), 8);
        assert!(p.is_weak_packing(&g, 0, 2, 2));
    }

    #[test]
    #[should_panic]
    fn star_packing_rejects_non_clique() {
        let g = generators::cycle(5);
        star_packing(&g, 0);
    }

    #[test]
    fn greedy_packing_on_circulant_spans_with_bounded_load() {
        let g = generators::circulant(16, 3); // 6-edge-connected
        let k = 4;
        let p = greedy_low_depth_packing(&g, 0, k, 2);
        assert_eq!(p.len(), k);
        for t in &p.trees {
            assert!(t.is_spanning(&g), "all greedy trees must span");
        }
        // With 6-connectivity and only 4 trees the load should stay small.
        assert!(p.load(&g) <= 3, "load {} too high", p.load(&g));
        assert!(p.max_height() <= 8);
    }

    #[test]
    fn greedy_packing_on_clique_has_low_load() {
        let g = generators::complete(10);
        let p = greedy_low_depth_packing(&g, 0, 8, 2);
        assert!(p.load(&g) <= 4);
        assert!(p.max_height() <= 3);
    }

    #[test]
    #[should_panic]
    fn greedy_packing_rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        greedy_low_depth_packing(&g, 0, 2, 1);
    }

    #[test]
    fn random_coloring_packing_load_bounded_by_one_per_direction() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular(&mut rng, 40, 10);
        let k = 4;
        let p = random_coloring_packing(&g, 0, k, &mut rng);
        assert_eq!(p.len(), k);
        // Every edge belongs to exactly one colour class, so the load is ≤ 1.
        assert!(p.load(&g) <= 1);
    }

    #[test]
    fn random_coloring_packing_mostly_spans_dense_expander() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::random_regular(&mut rng, 60, 20);
        let k = 3; // few colours on a dense graph: every class is still dense.
        let p = random_coloring_packing(&g, 0, k, &mut rng);
        let good = p.count_good(&g, 0, 12);
        assert!(
            good >= 2,
            "expected most colour classes to span, got {good}"
        );
    }

    #[test]
    fn load_floor_matches_hand_computed_values() {
        // Cycle: 2 trees × (n−1) slots over n edges → floor 2.
        assert_eq!(load_floor(&generators::cycle(8), 2), 2);
        // Clique K_n: n trees × (n−1) slots over n(n−1)/2 edges → floor 2.
        assert_eq!(load_floor(&generators::complete(10), 10), 2);
        // 9 trees on circulant(18,4): ⌈153/72⌉ = 3.
        assert_eq!(load_floor(&generators::circulant(18, 4), 9), 3);
        assert_eq!(load_floor(&Graph::new(3), 2), 0);
    }

    #[test]
    fn star_packing_quality_on_the_clique_is_optimal() {
        let g = generators::complete(8);
        let p = star_packing(&g, 0);
        let q = PackingQuality::measure(&g, &p, 0, 2);
        assert_eq!(q.trees, 8);
        assert_eq!(q.good_trees, 8, "every star is a good tree");
        assert_eq!(q.max_edge_load, 2);
        assert_eq!(q.load_floor, 2, "the star packing sits on the floor");
        assert_eq!(q.max_height, 2);
        // λ(K8) = 7 and every tree crosses a minimum (single-node) cut at
        // least once; the star packing uses each cut edge at most twice.
        assert!(q.min_cut_usage >= q.good_trees);
        assert!(q.min_cut_usage <= q.max_edge_load * 7);
    }

    #[test]
    fn ring_packing_quality_reports_the_known_optimum() {
        // On a cycle, two spanning trees are the cycle minus one edge each;
        // dropping different edges is the optimal 2-packing: max load 2 (the
        // floor), both trees good at height ≤ n − 1.
        let g = generators::cycle(6);
        let t1 = {
            let edges: Vec<EdgeId> = (1..6).map(|i| g.edge_between(i - 1, i).unwrap()).collect();
            subgraph_bfs_tree(&g, &edges, 0)
        };
        let t2 = {
            let edges: Vec<EdgeId> = (1..6)
                .map(|i| g.edge_between(i % 6, (i + 1) % 6).unwrap())
                .collect();
            subgraph_bfs_tree(&g, &edges, 0)
        };
        let p = TreePacking::new(vec![t1, t2]);
        let q = PackingQuality::measure(&g, &p, 0, 5);
        assert_eq!(q.trees, 2);
        assert_eq!(q.good_trees, 2);
        assert_eq!(q.max_edge_load, 2);
        assert_eq!(q.load_floor, 2);
        // λ(C6) = 2; both trees cross the 2-edge minimum cut.
        assert!(q.min_cut_usage >= 2);
    }

    #[test]
    fn augmented_packing_reaches_the_load_floor_on_small_world() {
        // The pinned PR-3 frontier graph: greedy v1 leaves an edge at load 4,
        // one more than the floor; the v2 repair pass must reach the floor.
        let g = crate::GraphDef::watts_strogatz(24, 6, 0.2, 7 ^ 0x5A11)
            .build()
            .unwrap();
        let k = 9;
        let v1 = greedy_low_depth_packing(&g, 0, k, 2);
        let v2 = augmented_low_depth_packing(&g, 0, k, 2);
        let floor = load_floor(&g, k);
        assert_eq!(floor, 3);
        assert!(
            v1.load(&g) > floor,
            "v1 is above the floor (else no frontier)"
        );
        assert_eq!(v2.load(&g), floor, "v2 must reach the load floor");
        assert_eq!(
            v2.trees.iter().filter(|t| t.is_spanning(&g)).count(),
            k,
            "the repair pass must keep every tree spanning"
        );
    }

    #[test]
    fn augmented_packing_is_deterministic_and_never_worse_than_greedy() {
        for (g, k) in [
            (generators::circulant(18, 4), 9usize),
            (generators::circulant(16, 3), 8),
            (crate::GraphDef::expander(24, 8, 2024).build().unwrap(), 9),
        ] {
            let v1 = greedy_low_depth_packing(&g, 0, k, 2);
            let v2a = augmented_low_depth_packing(&g, 0, k, 2);
            let v2b = augmented_low_depth_packing(&g, 0, k, 2);
            assert_eq!(
                v2a.trees, v2b.trees,
                "v2 must be deterministic (campaign reproducibility)"
            );
            assert!(v2a.load(&g) <= v1.load(&g), "v2 must never raise the load");
            let diam = crate::traversal::diameter(&g).unwrap();
            let budget = 2 * diam + 2 + diam;
            assert!(
                v2a.count_good(&g, 0, budget) >= v1.count_good(&g, 0, budget),
                "v2 must never lower the good-tree count"
            );
        }
    }

    #[test]
    fn improve_packing_is_a_noop_when_already_at_target() {
        let g = generators::complete(10);
        let p = star_packing(&g, 0);
        let improved = improve_packing(&g, 0, p.clone(), 2, 4);
        assert_eq!(
            improved.trees, p.trees,
            "a packing at its target is untouched"
        );
    }

    #[test]
    fn trees_using_edge_is_consistent_with_load() {
        let g = generators::complete(6);
        let p = star_packing(&g, 0);
        for e in 0..g.edge_count() {
            assert!(p.trees_using_edge(e).len() <= p.load(&g));
        }
    }
}
