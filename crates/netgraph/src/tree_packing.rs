//! Low-diameter tree packings (Definition 6 and Definition 7 of the paper).
//!
//! A `(k, D_TP, η)` tree packing is a collection of `k` spanning trees of
//! diameter ≤ `D_TP` such that every edge of the host graph is used by at most
//! `η` trees.  A *weak* packing only requires 0.9k of the subgraphs to be
//! spanning trees rooted at a common root.  The byzantine compiler of
//! Theorem 3.5 is driven entirely by such a packing.
//!
//! Three constructions are provided:
//!
//! * [`greedy_low_depth_packing`] — the multiplicative-weights packing of the
//!   paper's Appendix C: trees are added one by one, each a shallow spanning
//!   tree that prefers lightly-loaded edges;
//! * [`star_packing`] — the exact `(n, 2, 2)` packing of the complete graph
//!   used by the CONGESTED CLIQUE compilers (Theorems 1.6 / 4.11);
//! * [`random_coloring_packing`] — the fault-free version of the Lemma 3.10
//!   construction for expanders (colour every edge with a random colour in
//!   `[k]`, take a BFS tree of every colour class).

use crate::graph::{EdgeId, Graph, NodeId};
use crate::spanning::{min_cost_depth_bounded_tree, subgraph_bfs_tree, RootedTree};
use rand::Rng;

/// A collection of (sub)trees of a host graph intended as a tree packing.
#[derive(Debug, Clone)]
pub struct TreePacking {
    /// The trees of the packing.  Not all of them need to be spanning (weak packings).
    pub trees: Vec<RootedTree>,
}

impl TreePacking {
    /// Construct from a list of trees.
    pub fn new(trees: Vec<RootedTree>) -> Self {
        TreePacking { trees }
    }

    /// Number of trees `k`.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the packing is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Load of the packing: the maximum, over host edges, of the number of
    /// trees using that edge.
    pub fn load(&self, g: &Graph) -> usize {
        let mut use_count = vec![0usize; g.edge_count()];
        for t in &self.trees {
            for &e in &t.edges {
                use_count[e] += 1;
            }
        }
        use_count.into_iter().max().unwrap_or(0)
    }

    /// Maximum height over the trees (a bound on `D_TP` up to a factor 2).
    pub fn max_height(&self) -> usize {
        self.trees.iter().map(|t| t.height()).max().unwrap_or(0)
    }

    /// Number of trees that are spanning trees of `g` with height at most
    /// `max_height` and root equal to `root`.
    pub fn count_good(&self, g: &Graph, root: NodeId, max_height: usize) -> usize {
        self.trees
            .iter()
            .filter(|t| t.root == root && t.is_spanning(g) && t.height() <= max_height)
            .count()
    }

    /// Whether this is a weak `(k, D_TP, η)` packing per Definition 7:
    /// at least `0.9 k` trees are spanning, rooted at `root`, of height ≤
    /// `max_height`, and the load is at most `eta`.
    pub fn is_weak_packing(&self, g: &Graph, root: NodeId, max_height: usize, eta: usize) -> bool {
        let good = self.count_good(g, root, max_height);
        10 * good >= 9 * self.len() && self.load(g) <= eta
    }

    /// Indices of trees using the given edge.
    pub fn trees_using_edge(&self, e: EdgeId) -> Vec<usize> {
        self.trees
            .iter()
            .enumerate()
            .filter(|(_, t)| t.uses_edge(e))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The Appendix-C greedy multiplicative-weights packing: add `k` trees one at a
/// time; tree `i` is a hop-bounded lightest spanning tree computed under edge
/// weights `a^{load_i(e)/η}` so that heavily loaded edges are avoided.
/// `eta_hint` controls the weight normalisation (use the target load, e.g.
/// `O(log n)`); the hop budget is `2·diam(G) + 2`, matching the
/// `O(D_TP log n)`-depth guarantee of Theorem 3.1 up to constants.
///
/// All trees are rooted at `root`.
///
/// # Panics
///
/// Panics if the graph is disconnected (a spanning tree cannot be built) or
/// `k == 0`.
pub fn greedy_low_depth_packing(g: &Graph, root: NodeId, k: usize, eta_hint: usize) -> TreePacking {
    greedy_low_depth_packing_with_budget(g, root, k, eta_hint, None)
}

/// [`greedy_low_depth_packing`] with an explicit hop budget for the trees.
/// When `hop_budget` is `None`, `2·diam(G) + 2` is used.
///
/// # Panics
///
/// Panics if the graph is disconnected or `k == 0`.
pub fn greedy_low_depth_packing_with_budget(
    g: &Graph,
    root: NodeId,
    k: usize,
    eta_hint: usize,
    hop_budget: Option<usize>,
) -> TreePacking {
    assert!(k > 0, "k must be positive");
    assert!(
        crate::traversal::is_connected(g),
        "greedy packing requires a connected graph"
    );
    let diam = crate::traversal::diameter(g).unwrap_or(g.node_count());
    let budget = hop_budget.unwrap_or(2 * diam + 2);
    let eta = eta_hint.max(1) as f64;
    let a: f64 = 8.0; // base of the multiplicative weights
    let mut load = vec![0usize; g.edge_count()];
    let mut trees = Vec::with_capacity(k);
    for _ in 0..k {
        let weights: Vec<f64> = load.iter().map(|&l| a.powf(l as f64 / eta)).collect();
        let tree = min_cost_depth_bounded_tree(g, root, &weights, budget);
        for &e in &tree.edges {
            load[e] += 1;
        }
        trees.push(tree);
    }
    TreePacking::new(trees)
}

/// The exact `(n, 2, 2)` packing of the complete graph `K_n`: for every centre
/// `c`, the star centred at `c`, re-rooted at the common root `root` (so the
/// tree rooted at `root` has `c` as its single child and every other node as a
/// grandchild; the star centred at `root` itself has depth 1).
///
/// # Panics
///
/// Panics if `g` is not a complete graph.
pub fn star_packing(g: &Graph, root: NodeId) -> TreePacking {
    let n = g.node_count();
    assert_eq!(
        g.edge_count(),
        n * (n - 1) / 2,
        "star_packing requires the complete graph"
    );
    let mut trees = Vec::with_capacity(n);
    for centre in 0..n {
        let mut parent = vec![None; n];
        if centre == root {
            for (v, slot) in parent.iter_mut().enumerate() {
                if v != root {
                    *slot = Some(root);
                }
            }
        } else {
            parent[centre] = Some(root);
            for (v, slot) in parent.iter_mut().enumerate() {
                if v != root && v != centre {
                    *slot = Some(centre);
                }
            }
        }
        trees.push(RootedTree::from_parents(g, root, parent));
    }
    TreePacking::new(trees)
}

/// Fault-free version of the Lemma 3.10 construction: colour every edge
/// independently and uniformly with a colour in `[k]`; for each colour class,
/// return the BFS tree of the colour subgraph rooted at `root` (which may fail
/// to span — that is expected and handled by the *weak* packing notion).
pub fn random_coloring_packing<R: Rng + ?Sized>(
    g: &Graph,
    root: NodeId,
    k: usize,
    rng: &mut R,
) -> TreePacking {
    assert!(k > 0, "k must be positive");
    let mut classes: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
    for e in 0..g.edge_count() {
        classes[rng.gen_range(0..k)].push(e);
    }
    let trees = classes
        .into_iter()
        .map(|edges| subgraph_bfs_tree(g, &edges, root))
        .collect();
    TreePacking::new(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn star_packing_of_clique_is_tight() {
        let g = generators::complete(8);
        let p = star_packing(&g, 0);
        assert_eq!(p.len(), 8);
        assert_eq!(p.load(&g), 2);
        assert!(p.max_height() <= 2);
        assert_eq!(p.count_good(&g, 0, 2), 8);
        assert!(p.is_weak_packing(&g, 0, 2, 2));
    }

    #[test]
    #[should_panic]
    fn star_packing_rejects_non_clique() {
        let g = generators::cycle(5);
        star_packing(&g, 0);
    }

    #[test]
    fn greedy_packing_on_circulant_spans_with_bounded_load() {
        let g = generators::circulant(16, 3); // 6-edge-connected
        let k = 4;
        let p = greedy_low_depth_packing(&g, 0, k, 2);
        assert_eq!(p.len(), k);
        for t in &p.trees {
            assert!(t.is_spanning(&g), "all greedy trees must span");
        }
        // With 6-connectivity and only 4 trees the load should stay small.
        assert!(p.load(&g) <= 3, "load {} too high", p.load(&g));
        assert!(p.max_height() <= 8);
    }

    #[test]
    fn greedy_packing_on_clique_has_low_load() {
        let g = generators::complete(10);
        let p = greedy_low_depth_packing(&g, 0, 8, 2);
        assert!(p.load(&g) <= 4);
        assert!(p.max_height() <= 3);
    }

    #[test]
    #[should_panic]
    fn greedy_packing_rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        greedy_low_depth_packing(&g, 0, 2, 1);
    }

    #[test]
    fn random_coloring_packing_load_bounded_by_one_per_direction() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_regular(&mut rng, 40, 10);
        let k = 4;
        let p = random_coloring_packing(&g, 0, k, &mut rng);
        assert_eq!(p.len(), k);
        // Every edge belongs to exactly one colour class, so the load is ≤ 1.
        assert!(p.load(&g) <= 1);
    }

    #[test]
    fn random_coloring_packing_mostly_spans_dense_expander() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::random_regular(&mut rng, 60, 20);
        let k = 3; // few colours on a dense graph: every class is still dense.
        let p = random_coloring_packing(&g, 0, k, &mut rng);
        let good = p.count_good(&g, 0, 12);
        assert!(
            good >= 2,
            "expected most colour classes to span, got {good}"
        );
    }

    #[test]
    fn trees_using_edge_is_consistent_with_load() {
        let g = generators::complete(6);
        let p = star_packing(&g, 0);
        for e in 0..g.edge_count() {
            assert!(p.trees_using_edge(e).len() <= p.load(&g));
        }
    }
}
