//! Property tests for the counterexample shrinker: against synthetic failure
//! oracles (fast — no simulator runs), the shrink fixpoint is (1) still
//! failing, (2) 1-minimal — no single round removal, edge removal or graph
//! parameter step preserves the failure — and (3) deterministic and
//! idempotent, so the same found failure always shrinks to the byte-identical
//! minimal spec.

use congest_sim::adversary::CorruptionMode;
use mobile_congest_redteam::{shrink, SynthesizedAdversary};
use netgraph::GraphDef;
use proptest::prelude::*;

/// A deterministic synthetic failure oracle: fails iff the schedule covers
/// every edge of `required` (in any round) and the graph still has at least
/// `min_n` nodes.  Monotone in the schedule, so a minimal failing attack
/// under it is exactly one round per required edge — or fewer, packed.
#[derive(Clone)]
struct RequiredEdges {
    required: Vec<usize>,
    min_n: usize,
}

impl RequiredEdges {
    fn check(&self, graph: &GraphDef, adv: &SynthesizedAdversary) -> bool {
        graph.n >= self.min_n
            && self
                .required
                .iter()
                .all(|e| adv.schedule().iter().flatten().any(|x| x == e))
    }
}

/// Build a failing input: the required edges scattered over the schedule
/// plus arbitrary noise edges.
fn failing_input(
    required: &[usize],
    noise: &[(usize, usize)],
    rounds: usize,
) -> SynthesizedAdversary {
    let rounds = rounds.max(1);
    let mut schedule = vec![Vec::new(); rounds];
    for (i, &e) in required.iter().enumerate() {
        schedule[i % rounds].push(e);
    }
    for &(round, edge) in noise {
        schedule[round % rounds].push(edge);
    }
    SynthesizedAdversary::new(schedule, CorruptionMode::FlipLowBit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shrunk_output_is_minimal_and_still_fails(
        required in prop::collection::vec(0usize..12, 1..4),
        noise in prop::collection::vec((0usize..6, 0usize..12), 0..8),
        rounds in 1usize..6,
        min_n in 4usize..10,
    ) {
        // Dedupe the required set — duplicate entries would make "remove one
        // edge" recoverable and the minimality check meaningless.
        let mut required = required;
        required.sort_unstable();
        required.dedup();
        let graph = GraphDef::circulant(16, 4); // 32 edges; ids 0..12 all valid
        let oracle = RequiredEdges { required: required.clone(), min_n };
        let adv = failing_input(&required, &noise, rounds);
        prop_assert!(oracle.check(&graph, &adv), "input must fail to start");

        let out = shrink(&graph, &adv, |g, a| oracle.check(g, a));

        // Still failing.
        prop_assert!(oracle.check(&out.graph, &out.adversary));
        // Exactly the required edges survive — the oracle is monotone, so
        // anything beyond them was removable noise.
        let mut left: Vec<usize> = out.adversary.schedule().iter().flatten().copied().collect();
        left.sort_unstable();
        prop_assert_eq!(left, required);
        // 1-minimal along the shrinker's own move set: no single round
        // removal, no single edge removal, no single graph step.
        if out.adversary.rounds() > 1 {
            for i in 0..out.adversary.rounds() {
                prop_assert!(
                    !oracle.check(&out.graph, &out.adversary.remove_round(i)),
                    "round {} still removable", i
                );
            }
        }
        for row in 0..out.adversary.rounds() {
            for slot in 0..out.adversary.schedule()[row].len() {
                prop_assert!(
                    !oracle.check(&out.graph, &out.adversary.remove_edge(row, slot)),
                    "edge ({},{}) still removable", row, slot
                );
            }
        }
        for smaller in out.graph.shrink_candidates() {
            let Ok(built) = smaller.build() else { continue };
            if built.edge_count() == 0 {
                continue;
            }
            let remapped = out.adversary.remap_edges(built.edge_count());
            prop_assert!(
                !oracle.check(&smaller, &remapped),
                "graph still shrinkable to {}", smaller.display_name()
            );
        }
    }

    #[test]
    fn shrinking_is_deterministic_and_idempotent(
        required in prop::collection::vec(0usize..12, 1..4),
        noise in prop::collection::vec((0usize..6, 0usize..12), 0..8),
        rounds in 1usize..6,
    ) {
        let mut required = required;
        required.sort_unstable();
        required.dedup();
        let graph = GraphDef::grid(4, 5); // 31 edges
        let oracle = RequiredEdges { required: required.clone(), min_n: 2 };
        let adv = failing_input(&required, &noise, rounds);
        prop_assert!(oracle.check(&graph, &adv));

        let a = shrink(&graph, &adv, |g, x| oracle.check(g, x));
        let b = shrink(&graph, &adv, |g, x| oracle.check(g, x));
        // Same seed (here: same input — shrinking draws no randomness at
        // all) ⇒ byte-identical minimal result, eval count included.
        prop_assert_eq!(&a.adversary, &b.adversary);
        prop_assert_eq!(&a.graph, &b.graph);
        prop_assert_eq!(a.evals, b.evals);
        // And a fixpoint: shrinking the minimum changes nothing.
        let again = shrink(&a.graph, &a.adversary, |g, x| oracle.check(g, x));
        prop_assert_eq!(&again.adversary, &a.adversary);
        prop_assert_eq!(&again.graph, &a.graph);
    }
}
