//! Deterministic local search over corruption schedules: independent chains
//! of greedy hill-climbing or (1+1)-evolution, stopping at the first
//! candidate that breaks the target.

use crate::fitness::{Fitness, ResolvedTarget};
use crate::schedule::{ScheduleMove, SynthesizedAdversary};
use mobile_congest_harness::campaign::cell_seed;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The chain's acceptance rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Accept strictly better candidates only (pure hill-climbing).
    Greedy,
    /// (1+1)-evolution: accept ties too, so the chain drifts across fitness
    /// plateaus instead of stalling on them.
    Evolve,
}

impl SearchStrategy {
    /// The stable lowercase label serialized specs use.
    pub fn label(&self) -> &'static str {
        match self {
            SearchStrategy::Greedy => "greedy",
            SearchStrategy::Evolve => "evolve",
        }
    }

    /// Parse the label form.
    pub fn parse(label: &str) -> Option<SearchStrategy> {
        match label {
            "greedy" => Some(SearchStrategy::Greedy),
            "evolve" => Some(SearchStrategy::Evolve),
            _ => None,
        }
    }
}

/// What one search chain did.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// Candidate evaluations spent (including the initial candidate).
    pub evals: usize,
    /// The step index at which the first failure was found, if any (0 means
    /// the random initial candidate already failed).
    pub found_at: Option<usize>,
    /// The best candidate seen (the failing one when `found_at` is set).
    pub best: SynthesizedAdversary,
    /// Its fitness.
    pub best_fitness: Fitness,
}

/// Run one search chain against a resolved target.
///
/// Chain `chain` derives its seed as `cell_seed(search_seed, chain)`, and
/// step `s` draws all of its randomness from a fresh
/// `ChaCha8Rng::seed_from_u64(cell_seed(chain_seed, s))` — the chain is a
/// pure function of `(search_seed, chain)`, independent of every other
/// chain, which is what lets the engine fan chains across threads without
/// changing any result.
///
/// The chain stops at the first candidate whose fitness
/// [`is_failure`](Fitness::is_failure) — minimization is the shrinker's job,
/// not the search's.
pub fn run_chain(
    target: &ResolvedTarget,
    f: usize,
    rounds: usize,
    strategy: SearchStrategy,
    search_seed: u64,
    chain: usize,
    steps: usize,
) -> ChainReport {
    let chain_seed = cell_seed(search_seed, chain);
    let graph = target.graph();
    let mut rng = ChaCha8Rng::seed_from_u64(cell_seed(chain_seed, 0));
    let mut current =
        SynthesizedAdversary::random(&mut rng, graph.edge_count(), rounds, f, target.mode);
    let mut best_fitness = target.evaluate(&current);
    let mut evals = 1;
    if best_fitness.is_failure() {
        return ChainReport {
            evals,
            found_at: Some(0),
            best: current,
            best_fitness,
        };
    }
    let mut found_at = None;
    for step in 1..=steps {
        let mut rng = ChaCha8Rng::seed_from_u64(cell_seed(chain_seed, step));
        let mv = ScheduleMove::sample(&mut rng, &current, graph);
        let candidate = current.apply(&mv, graph, f);
        if candidate == current {
            continue; // structural no-op; don't spend an evaluation on it
        }
        let fitness = target.evaluate(&candidate);
        evals += 1;
        let accept = match strategy {
            SearchStrategy::Greedy => fitness > best_fitness,
            SearchStrategy::Evolve => fitness >= best_fitness,
        };
        if accept {
            current = candidate;
            best_fitness = fitness;
        }
        if best_fitness.is_failure() {
            found_at = Some(step);
            break;
        }
    }
    ChainReport {
        evals,
        found_at,
        best: current,
        best_fitness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_round_trip() {
        for s in [SearchStrategy::Greedy, SearchStrategy::Evolve] {
            assert_eq!(SearchStrategy::parse(s.label()), Some(s));
        }
        assert_eq!(SearchStrategy::parse("annealing"), None);
    }
}
