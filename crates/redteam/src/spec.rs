//! The plain-data form of a red-team campaign ([`RedTeamSpec`]) and the
//! export of a minimized failure as a standard one-cell campaign spec
//! ([`counterexample_spec`]).

use crate::schedule::SynthesizedAdversary;
use crate::search::SearchStrategy;
use congest_sim::adversary::CorruptionMode;
use mobile_congest_core::adapters::CompilerDef;
use mobile_congest_harness::json::{self, JsonValue};
use mobile_congest_harness::spec::{
    compiler_from_json, compiler_to_json, graph_from_json, graph_to_json, mode_from_json,
    mode_to_json, payload_from_json, payload_to_json, CampaignSpec, GridSpec, PayloadDef,
    SpecError,
};
use netgraph::GraphDef;

fn missing(field: impl Into<String>) -> SpecError {
    SpecError::Missing {
        field: field.into(),
    }
}

/// The budget envelope candidates must stay inside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Maximum corrupted edges per round (the mobile `f`).
    pub f: usize,
    /// Schedule cycle length candidates are synthesized with.
    pub rounds: usize,
}

/// The search configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpec {
    /// Base seed; chain `c` derives `cell_seed(seed, c)`.
    pub seed: u64,
    /// Independent search chains per target.
    pub chains: usize,
    /// Mutation steps per chain.
    pub steps: usize,
    /// Acceptance rule.
    pub strategy: SearchStrategy,
}

/// One compiler-under-attack: the fixed cell coordinates the search varies
/// the adversary against.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// The graph the target runs on.
    pub graph: GraphDef,
    /// The compiler under attack.
    pub compiler: CompilerDef,
    /// The payload every evaluation runs.
    pub payload: PayloadDef,
    /// The campaign base seed evaluations replay under (`cell_seed(seed, 0)`
    /// is the evaluation seed, matching cell 0 of the exported one-cell
    /// counterexample campaign).
    pub seed: u64,
    /// How synthesized adversaries rewrite controlled messages.
    pub mode: CorruptionMode,
}

/// A whole red-team campaign as data: what to attack, with what budget, and
/// how hard to search.
#[derive(Debug, Clone, PartialEq)]
pub struct RedTeamSpec {
    /// Search configuration.
    pub search: SearchSpec,
    /// Candidate budget envelope.
    pub budget: BudgetSpec,
    /// The compilers under attack.
    pub targets: Vec<TargetSpec>,
}

impl RedTeamSpec {
    /// Encode as multi-line JSON — stable, diffable, and the canonical input
    /// to [`RedTeamSpec::fingerprint`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"kind\": \"redteam-spec\",\n");
        out.push_str(&format!(
            "  \"search\": {{\"seed\": {}, \"chains\": {}, \"steps\": {}, \"strategy\": \"{}\"}},\n",
            self.search.seed,
            self.search.chains,
            self.search.steps,
            self.search.strategy.label()
        ));
        out.push_str(&format!(
            "  \"budget\": {{\"f\": {}, \"rounds\": {}}},\n",
            self.budget.f, self.budget.rounds
        ));
        out.push_str("  \"targets\": [\n");
        for (i, t) in self.targets.iter().enumerate() {
            let sep = if i + 1 < self.targets.len() { "," } else { "" };
            out.push_str("    {\n");
            out.push_str(&format!("      \"graph\": {},\n", graph_to_json(&t.graph)));
            out.push_str(&format!(
                "      \"compiler\": {},\n",
                compiler_to_json(&t.compiler)
            ));
            out.push_str(&format!(
                "      \"payload\": {},\n",
                payload_to_json(&t.payload)
            ));
            out.push_str(&format!("      \"seed\": {},\n", t.seed));
            out.push_str(&format!("      \"mode\": {}\n", mode_to_json(t.mode)));
            out.push_str(&format!("    }}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a spec from JSON (whitespace and field order free; omitted
    /// `strategy` defaults to `evolve`, omitted target `mode` to
    /// `flip-low-bit`).
    pub fn from_json(input: &str) -> Result<RedTeamSpec, SpecError> {
        let doc = json::parse(input)?;
        if let Some(kind) = doc.get("kind").and_then(JsonValue::as_str) {
            if kind != "redteam-spec" {
                return Err(SpecError::Invalid {
                    reason: format!("document kind is `{kind}`, expected `redteam-spec`"),
                });
            }
        }
        let search = doc.get("search").ok_or_else(|| missing("search"))?;
        let req = |obj: &JsonValue, path: &str, name: &str| -> Result<u64, SpecError> {
            obj.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing(format!("{path}.{name}")))
        };
        let strategy = match search.get("strategy") {
            None => SearchStrategy::Evolve,
            Some(v) => {
                let label = v.as_str().ok_or_else(|| missing("search.strategy"))?;
                SearchStrategy::parse(label).ok_or_else(|| SpecError::UnknownLabel {
                    registry: "search strategy",
                    label: label.into(),
                })?
            }
        };
        let search = SearchSpec {
            seed: req(search, "search", "seed")?,
            chains: req(search, "search", "chains")? as usize,
            steps: req(search, "search", "steps")? as usize,
            strategy,
        };
        let budget = doc.get("budget").ok_or_else(|| missing("budget"))?;
        let budget = BudgetSpec {
            f: req(budget, "budget", "f")? as usize,
            rounds: req(budget, "budget", "rounds")? as usize,
        };
        let targets = doc
            .get("targets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| missing("targets"))?
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let graph = graph_from_json(
                    t.get("graph")
                        .ok_or_else(|| missing(format!("targets[{i}].graph")))?,
                )?;
                let compiler = compiler_from_json(
                    t.get("compiler")
                        .ok_or_else(|| missing(format!("targets[{i}].compiler")))?,
                )?;
                let payload = payload_from_json(
                    t.get("payload")
                        .ok_or_else(|| missing(format!("targets[{i}].payload")))?,
                )?;
                let seed = t
                    .get("seed")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| missing(format!("targets[{i}].seed")))?;
                let mode = match t.get("mode") {
                    None => CorruptionMode::FlipLowBit,
                    Some(m) => mode_from_json(m)?,
                };
                Ok(TargetSpec {
                    graph,
                    compiler,
                    payload,
                    seed,
                    mode,
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        let spec = RedTeamSpec {
            search,
            budget,
            targets,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation: non-empty targets, positive budget and search
    /// knobs, every target graph buildable and payload-compatible.
    pub fn validate(&self) -> Result<(), SpecError> {
        for (name, v) in [
            ("search.chains", self.search.chains),
            ("search.steps", self.search.steps),
            ("budget.f", self.budget.f),
            ("budget.rounds", self.budget.rounds),
        ] {
            if v == 0 {
                return Err(SpecError::Invalid {
                    reason: format!("{name} must be at least 1"),
                });
            }
        }
        if self.targets.is_empty() {
            return Err(SpecError::Invalid {
                reason: "targets is empty".into(),
            });
        }
        for target in &self.targets {
            let graph = target.graph.build()?;
            target
                .payload
                .validate(&target.graph.display_name(), &graph)?;
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint (FNV-1a over the canonical
    /// [`RedTeamSpec::to_json`] form), rendered as 16 hex digits — the same
    /// construction campaign specs use, and the key trajectory files carry
    /// so `--resume` never mixes campaigns.
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// Export a minimized failure as a standard **one-cell campaign spec**: base
/// seed `target.seed`, one repetition, the shrunk graph and the synthesized
/// schedule as the only grid entries.  Cell 0 of this campaign runs with
/// `cell_seed(target.seed, 0)` — exactly the seed every search evaluation
/// used — so replaying the spec through the ordinary campaign pipeline
/// reproduces the failure bit-for-bit.
pub fn counterexample_spec(
    target: &TargetSpec,
    graph: &GraphDef,
    adversary: &SynthesizedAdversary,
) -> CampaignSpec {
    CampaignSpec {
        seed: target.seed,
        repetitions: 1,
        grid: GridSpec {
            graphs: vec![graph.clone()],
            adversaries: vec![adversary.def()],
            compilers: vec![target.compiler.clone()],
            payload: target.payload.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RedTeamSpec {
        RedTeamSpec {
            search: SearchSpec {
                seed: 2024,
                chains: 4,
                steps: 32,
                strategy: SearchStrategy::Evolve,
            },
            budget: BudgetSpec { f: 2, rounds: 4 },
            targets: vec![TargetSpec {
                graph: GraphDef::watts_strogatz(24, 6, 0.2, 23062),
                compiler: CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: netgraph::PackingVersion::V1Greedy,
                },
                payload: PayloadDef::FloodBroadcast {
                    source: 0,
                    value: 4242,
                },
                seed: 2024,
                mode: CorruptionMode::FlipLowBit,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let spec = sample();
        let parsed = RedTeamSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn omitted_strategy_and_mode_default() {
        let text = r#"{
            "kind": "redteam-spec",
            "search": {"seed": 1, "chains": 1, "steps": 1},
            "budget": {"f": 1, "rounds": 1},
            "targets": [{
                "graph": {"family": "complete", "n": 5},
                "compiler": {"id": "uncompiled"},
                "payload": {"kind": "leader-election"},
                "seed": 7
            }]
        }"#;
        let spec = RedTeamSpec::from_json(text).unwrap();
        assert_eq!(spec.search.strategy, SearchStrategy::Evolve);
        assert_eq!(spec.targets[0].mode, CorruptionMode::FlipLowBit);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample();
        let mut b = sample();
        b.search.steps += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn zero_knobs_rejected() {
        let mut spec = sample();
        spec.budget.f = 0;
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.targets.clear();
        assert!(spec.validate().is_err());
    }
}
