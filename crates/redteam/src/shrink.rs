//! Deterministic counterexample shrinking: given a failing attack, find a
//! locally minimal one — fewer rounds, fewer edges, smaller graph — by
//! re-executing candidates and keeping the failure invariant.

use crate::schedule::SynthesizedAdversary;
use netgraph::GraphDef;

/// A shrink fixpoint: the minimized graph/attack pair and how many oracle
/// evaluations minimization spent.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The (possibly smaller) graph the minimal attack runs on.
    pub graph: GraphDef,
    /// The minimal failing attack.
    pub adversary: SynthesizedAdversary,
    /// Oracle evaluations spent shrinking.
    pub evals: usize,
}

/// Shrink a failing `(graph, adversary)` pair to a local minimum of
/// `still_fails` — the caller's failure oracle (typically "re-run the cell
/// and check the failure class didn't soften"; the proptests drive it with
/// synthetic oracles instead).
///
/// The descent is a fixpoint loop over four passes, largest strides first:
///
/// 1. **Halve rounds** — keep the first half of the cycle while that still
///    fails (binary descent reaches a k-round core in O(log) evals).
/// 2. **Drop single rounds** — remove each remaining row in turn.
/// 3. **Drop single edges** — remove each scheduled edge in turn.
/// 4. **Descend the graph** — try each [`GraphDef::shrink_candidates`]
///    parameter step, remapping edge ids into the smaller graph
///    (`e % new_edge_count`); the first candidate that still fails is taken
///    and the whole loop restarts.
///
/// The loop ends when a full sweep changes nothing, so the result is
/// **1-minimal by construction**: no single round removal, no single edge
/// removal and no single graph-parameter step preserves the failure.  Every
/// accepted step strictly shrinks `(graph size, rounds, edges)`, so the loop
/// terminates; the pass order is fixed and the oracle is pure, so the same
/// input always shrinks to the same output.
///
/// `still_fails(graph, adversary)` is assumed true on entry (the search only
/// hands over failing candidates); the input is returned unchanged if it
/// cannot be shrunk.
pub fn shrink<F>(
    graph: &GraphDef,
    adversary: &SynthesizedAdversary,
    mut still_fails: F,
) -> ShrinkOutcome
where
    F: FnMut(&GraphDef, &SynthesizedAdversary) -> bool,
{
    let mut graph = graph.clone();
    let mut adv = adversary.clone();
    let mut evals = 0usize;
    loop {
        let mut changed = false;

        // Pass 1: halve the cycle while the first half still fails.
        while adv.rounds() > 1 {
            let candidate = adv.truncate_rounds(adv.rounds().div_ceil(2));
            evals += 1;
            if still_fails(&graph, &candidate) {
                adv = candidate;
                changed = true;
            } else {
                break;
            }
        }

        // Pass 2: drop single rounds.  On success re-test the same index —
        // the next row shifted into it.
        let mut i = 0;
        while adv.rounds() > 1 && i < adv.rounds() {
            let candidate = adv.remove_round(i);
            evals += 1;
            if still_fails(&graph, &candidate) {
                adv = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }

        // Pass 3: drop single edges, row by row.
        let mut row = 0;
        while row < adv.rounds() {
            let mut slot = 0;
            while slot < adv.schedule()[row].len() {
                let candidate = adv.remove_edge(row, slot);
                evals += 1;
                if still_fails(&graph, &candidate) {
                    adv = candidate;
                    changed = true;
                } else {
                    slot += 1;
                }
            }
            row += 1;
        }

        // Pass 4: one graph-parameter step down, edge ids remapped.
        for smaller in graph.shrink_candidates() {
            let Ok(built) = smaller.build() else { continue };
            if built.edge_count() == 0 {
                continue;
            }
            let candidate = adv.remap_edges(built.edge_count());
            evals += 1;
            if still_fails(&smaller, &candidate) {
                graph = smaller;
                adv = candidate;
                changed = true;
                break;
            }
        }

        if !changed {
            break;
        }
    }
    ShrinkOutcome {
        graph,
        adversary: adv,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::CorruptionMode;

    /// Synthetic oracle: fails iff edge 2 is scheduled in some round.
    fn needs_edge_2(_g: &GraphDef, adv: &SynthesizedAdversary) -> bool {
        adv.schedule().iter().flatten().any(|&e| e == 2)
    }

    #[test]
    fn shrinks_to_single_edge_core() {
        let graph = GraphDef::grid(3, 3);
        let adv = SynthesizedAdversary::new(
            vec![vec![0, 2], vec![5, 7], vec![2, 9], vec![1]],
            CorruptionMode::FlipLowBit,
        );
        let out = shrink(&graph, &adv, needs_edge_2);
        assert_eq!(out.adversary.rounds(), 1);
        assert_eq!(out.adversary.total_edges(), 1);
        assert_eq!(out.adversary.schedule()[0], vec![2]);
        // The graph descended too: grid(3,3) keeps shrinking while edge 2
        // exists, down to the smallest grid that still has 3 edges.
        assert!(out.graph.n < 3 || out.graph != GraphDef::grid(3, 3));
    }

    #[test]
    fn shrink_is_deterministic_and_idempotent() {
        let graph = GraphDef::circulant(12, 4);
        let adv =
            SynthesizedAdversary::new(vec![vec![2, 3], vec![4, 2], vec![8]], CorruptionMode::Drop);
        let a = shrink(&graph, &adv, needs_edge_2);
        let b = shrink(&graph, &adv, needs_edge_2);
        assert_eq!(a.adversary, b.adversary);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.evals, b.evals);
        let again = shrink(&a.graph, &a.adversary, needs_edge_2);
        assert_eq!(again.adversary, a.adversary);
        assert_eq!(again.graph, a.graph);
    }
}
