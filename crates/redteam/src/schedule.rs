//! The search's candidate representation: a concrete per-round
//! edge-corruption schedule ([`SynthesizedAdversary`]) and the mutation
//! vocabulary the search walks it with ([`ScheduleMove`]).

use congest_sim::adversary::CorruptionMode;
use congest_sim::scenario::matrix::AdversaryDef;
use netgraph::{EdgeId, Graph, NodeId};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A synthesized mobile adversary as pure data: round `r` of the execution
/// corrupts the edges of entry `r % rounds()` (the schedule is applied
/// cyclically, mirroring
/// [`SynthesizedSchedule`](congest_sim::adversary::SynthesizedSchedule)).
///
/// The representation is kept **canonical** — every per-round edge list
/// sorted and deduplicated, rows truncated to the budget — so structurally
/// equal attacks compare equal, serialize identically, and fingerprint
/// identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesizedAdversary {
    schedule: Vec<Vec<EdgeId>>,
    mode: CorruptionMode,
}

impl SynthesizedAdversary {
    /// A canonicalized candidate from raw rows (rows are sorted, deduped and
    /// kept as given otherwise; an empty row is a quiet round).
    pub fn new(schedule: Vec<Vec<EdgeId>>, mode: CorruptionMode) -> Self {
        let mut adv = SynthesizedAdversary { schedule, mode };
        adv.canonicalize(usize::MAX);
        adv
    }

    /// A random candidate: `rounds` rows of up to `f` distinct edges drawn
    /// uniformly from `0..edge_count`.  Deterministic in the RNG state.
    pub fn random(
        rng: &mut ChaCha8Rng,
        edge_count: usize,
        rounds: usize,
        f: usize,
        mode: CorruptionMode,
    ) -> Self {
        let rounds = rounds.max(1);
        let f = f.max(1);
        let mut schedule = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut row: Vec<EdgeId> = Vec::with_capacity(f);
            // Bounded rejection keeps the draw deterministic even when the
            // budget approaches the edge count.
            let mut attempts = 0;
            while row.len() < f && attempts < 4 * f && edge_count > 0 {
                attempts += 1;
                let e = rng.gen_range(0..edge_count);
                if !row.contains(&e) {
                    row.push(e);
                }
            }
            schedule.push(row);
        }
        SynthesizedAdversary::new(schedule, mode)
    }

    /// The cyclic schedule (each row sorted, deduped).
    pub fn schedule(&self) -> &[Vec<EdgeId>] {
        &self.schedule
    }

    /// How controlled messages are rewritten.
    pub fn mode(&self) -> CorruptionMode {
        self.mode
    }

    /// Number of schedule rows (the attack's cycle length).
    pub fn rounds(&self) -> usize {
        self.schedule.len()
    }

    /// The per-round budget the candidate actually uses: its longest row.
    pub fn max_edges_per_round(&self) -> usize {
        self.schedule.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total corrupted edge-rounds across one cycle.
    pub fn total_edges(&self) -> usize {
        self.schedule.iter().map(Vec::len).sum()
    }

    /// The serializable data form — the whole attack as a campaign-grid
    /// adversary def, which is what makes counterexamples replayable.
    pub fn def(&self) -> AdversaryDef {
        AdversaryDef::Synthesized {
            schedule: self.schedule.clone(),
            mode: self.mode,
        }
    }

    /// Apply one mutation within the `f`-edges-per-round budget, returning
    /// the canonicalized successor (which may equal `self` when the move is
    /// a structural no-op, e.g. concentrating into a full row).
    pub fn apply(&self, mv: &ScheduleMove, graph: &Graph, f: usize) -> SynthesizedAdversary {
        let mut next = self.clone();
        let r = next.schedule.len();
        if r == 0 {
            return next;
        }
        match *mv {
            ScheduleMove::ShiftRound { from, to } => {
                next.schedule.swap(from % r, to % r);
            }
            ScheduleMove::SwapTargetEdge { round, slot, edge } => {
                let row = &mut next.schedule[round % r];
                if row.is_empty() {
                    row.push(edge);
                } else {
                    let i = slot % row.len();
                    row[i] = edge;
                }
            }
            ScheduleMove::ConcentrateBudget { from, to } => {
                let (from, to) = (from % r, to % r);
                if from != to && next.schedule[to].len() < f {
                    if let Some(e) = next.schedule[from].pop() {
                        next.schedule[to].push(e);
                    }
                }
            }
            ScheduleMove::SplitBudget { round } => {
                let from = round % r;
                let to = (from + 1) % r;
                if from != to && next.schedule[from].len() > 1 && next.schedule[to].len() < f {
                    if let Some(e) = next.schedule[from].pop() {
                        next.schedule[to].push(e);
                    }
                }
            }
            ScheduleMove::RetargetNode { round, node } => {
                let node = node % graph.node_count().max(1);
                let mut incident = graph.incident_edges(node);
                incident.truncate(f.max(1));
                next.schedule[round % r] = incident;
            }
        }
        next.canonicalize(f.max(1));
        next
    }

    // -- shrinker steps -----------------------------------------------------

    /// Keep only the first `k` rows (`k` clamped to `1..=rounds`).
    pub fn truncate_rounds(&self, k: usize) -> SynthesizedAdversary {
        let k = k.clamp(1, self.schedule.len().max(1));
        SynthesizedAdversary {
            schedule: self.schedule[..k].to_vec(),
            mode: self.mode,
        }
    }

    /// Remove row `i` (no-op when only one row remains).
    pub fn remove_round(&self, i: usize) -> SynthesizedAdversary {
        let mut schedule = self.schedule.clone();
        if schedule.len() > 1 && i < schedule.len() {
            schedule.remove(i);
        }
        SynthesizedAdversary {
            schedule,
            mode: self.mode,
        }
    }

    /// Remove the edge at `(row, slot)`.
    pub fn remove_edge(&self, row: usize, slot: usize) -> SynthesizedAdversary {
        let mut schedule = self.schedule.clone();
        if row < schedule.len() && slot < schedule[row].len() {
            schedule[row].remove(slot);
        }
        SynthesizedAdversary {
            schedule,
            mode: self.mode,
        }
    }

    /// Re-anchor every edge id into a graph with `new_edge_count` edges
    /// (`e % new_edge_count`, then re-canonicalize) — the edge-id remap the
    /// graph-descent shrink step uses.
    pub fn remap_edges(&self, new_edge_count: usize) -> SynthesizedAdversary {
        let m = new_edge_count.max(1);
        let schedule = self
            .schedule
            .iter()
            .map(|row| row.iter().map(|&e| e % m).collect())
            .collect();
        SynthesizedAdversary::new(schedule, self.mode)
    }

    /// Sort and dedupe every row, truncating to the budget.
    fn canonicalize(&mut self, f: usize) {
        for row in &mut self.schedule {
            row.sort_unstable();
            row.dedup();
            row.truncate(f.max(1));
        }
    }
}

/// One mutation of a [`SynthesizedAdversary`] — the neighbourhood structure
/// of the search space.  Every variant is applicable to every candidate
/// (indices wrap, full rows reject transfers), so sampling never needs to
/// retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMove {
    /// Swap two rows of the cycle — move an attack earlier or later.
    ShiftRound {
        /// Row moved.
        from: usize,
        /// Row it trades places with.
        to: usize,
    },
    /// Replace one scheduled edge with another (or seed an empty round).
    SwapTargetEdge {
        /// Row mutated.
        round: usize,
        /// Slot within the row (wraps).
        slot: usize,
        /// Replacement edge.
        edge: EdgeId,
    },
    /// Move one edge from row `from` into row `to` — pile budget onto one
    /// round (rejected when `to` is already at the budget).
    ConcentrateBudget {
        /// Donor row.
        from: usize,
        /// Receiving row.
        to: usize,
    },
    /// Move one edge from a multi-edge row into the next round — spread the
    /// budget across the cycle.
    SplitBudget {
        /// Donor row.
        round: usize,
    },
    /// Replace one row with up to `f` edges incident to `node` — an
    /// eclipse-style refocus of that round.
    RetargetNode {
        /// Row mutated.
        round: usize,
        /// The node whose incident edges become the row.
        node: NodeId,
    },
}

impl ScheduleMove {
    /// Draw one move uniformly over the five families, with parameters drawn
    /// from the candidate's and graph's index ranges.  Deterministic in the
    /// RNG state.
    pub fn sample(rng: &mut ChaCha8Rng, adv: &SynthesizedAdversary, graph: &Graph) -> ScheduleMove {
        let r = adv.rounds().max(1);
        let m = graph.edge_count().max(1);
        let n = graph.node_count().max(1);
        match rng.gen_range(0..5u32) {
            0 => ScheduleMove::ShiftRound {
                from: rng.gen_range(0..r),
                to: rng.gen_range(0..r),
            },
            1 => ScheduleMove::SwapTargetEdge {
                round: rng.gen_range(0..r),
                slot: rng.gen_range(0..16),
                edge: rng.gen_range(0..m),
            },
            2 => ScheduleMove::ConcentrateBudget {
                from: rng.gen_range(0..r),
                to: rng.gen_range(0..r),
            },
            3 => ScheduleMove::SplitBudget {
                round: rng.gen_range(0..r),
            },
            _ => ScheduleMove::RetargetNode {
                round: rng.gen_range(0..r),
                node: rng.gen_range(0..n),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn grid() -> Graph {
        netgraph::GraphDef::grid(3, 3).build().unwrap()
    }

    #[test]
    fn canonical_rows_sorted_deduped() {
        let adv =
            SynthesizedAdversary::new(vec![vec![5, 1, 5, 3], vec![]], CorruptionMode::FlipLowBit);
        assert_eq!(adv.schedule(), &[vec![1, 3, 5], vec![]]);
        assert_eq!(adv.max_edges_per_round(), 3);
        assert_eq!(adv.total_edges(), 3);
    }

    #[test]
    fn moves_respect_budget() {
        let g = grid();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut adv = SynthesizedAdversary::random(
            &mut rng,
            g.edge_count(),
            4,
            2,
            CorruptionMode::FlipLowBit,
        );
        for step in 0..200 {
            let mut rng = ChaCha8Rng::seed_from_u64(step);
            let mv = ScheduleMove::sample(&mut rng, &adv, &g);
            adv = adv.apply(&mv, &g, 2);
            assert!(adv.max_edges_per_round() <= 2, "budget violated by {mv:?}");
            assert_eq!(adv.rounds(), 4, "round count changed by {mv:?}");
            for row in adv.schedule() {
                for &e in row {
                    assert!(e < g.edge_count());
                }
            }
        }
    }

    #[test]
    fn shrink_steps_shrink() {
        let adv = SynthesizedAdversary::new(
            vec![vec![0, 1], vec![2], vec![3, 4]],
            CorruptionMode::FlipLowBit,
        );
        assert_eq!(adv.truncate_rounds(2).rounds(), 2);
        assert_eq!(adv.remove_round(1).rounds(), 2);
        assert_eq!(adv.remove_edge(0, 0).schedule()[0], vec![1]);
        let remapped = adv.remap_edges(3);
        assert!(remapped.schedule().iter().flatten().all(|&e| e < 3));
    }
}
