//! The search's objective: a lexicographic damage lattice over run reports,
//! and the resolved execution target candidates are scored against.

use crate::schedule::SynthesizedAdversary;
use crate::spec::TargetSpec;
use congest_sim::adversary::CorruptionMode;
use congest_sim::scenario::matrix::{run_cell, run_cell_traced, CompilerSpec, GraphSpec};
use congest_sim::scenario::{RunReport, ScenarioError};
use mobile_congest_core::adapters::CompilerDef;
use mobile_congest_harness::campaign::cell_seed;
use mobile_congest_harness::spec::{PayloadDef, SpecError};
use netgraph::{Graph, GraphDef};

/// How much damage a candidate attack did, as a lexicographic lattice: the
/// derived `Ord` compares fields top to bottom, so a failed decode dominates
/// any number of residual mismatches, which dominate rewinds, and so on.
/// The trailing tiers give hill-climbing a gradient even while the compiler
/// still corrects everything — on the v1 greedy packing, `attack_pressure`
/// (failed trees + pre-correction mismatches) distinguishes edges the
/// packing reuses heavily from edges it covers well.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fitness {
    /// The compiled run's outputs disagree with the fault-free reference —
    /// the compiler's guarantee is broken.
    pub failed_decode: bool,
    /// Mismatched node outputs left *after* correction
    /// (`mismatches_after`).
    pub residual_mismatches: u64,
    /// Rewinds the compiler was forced into (rate-resilient compilers).
    pub rewinds: u64,
    /// Failed trees plus pre-correction mismatches — how hard the correction
    /// machinery had to work even when it succeeded.
    pub attack_pressure: u64,
    /// Peak per-edge congestion of the compiled run (tie-breaker).
    pub max_congestion: u64,
}

impl Fitness {
    /// Score one run report.
    pub fn from_report(report: &RunReport) -> Fitness {
        let facet = |name: &str| -> u64 {
            report
                .notes
                .metrics()
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v as u64)
                .unwrap_or(0)
        };
        Fitness {
            failed_decode: report.agrees_with_fault_free() == Some(false),
            residual_mismatches: facet("mismatches_after"),
            rewinds: report.notes.rewinds().unwrap_or(0) as u64,
            attack_pressure: facet("failed_trees") + facet("mismatches_before"),
            max_congestion: report.metrics.max_edge_congestion() as u64,
        }
    }

    /// Whether the attack broke the compiler's output guarantee at all.
    pub fn is_failure(&self) -> bool {
        self.failed_decode || self.residual_mismatches > 0
    }

    /// The failure severity class the shrinker keeps invariant: 2 for a
    /// failed decode, 1 for residual mismatches only, 0 for a corrected run.
    pub fn failure_class(&self) -> u8 {
        if self.failed_decode {
            2
        } else if self.residual_mismatches > 0 {
            1
        } else {
            0
        }
    }

    /// Compact one-line JSON form (stable field order; trajectory lines and
    /// tests embed this).
    pub fn json(&self) -> String {
        format!(
            "{{\"failed_decode\":{},\"residual\":{},\"rewinds\":{},\"pressure\":{},\"congestion\":{}}}",
            self.failed_decode,
            self.residual_mismatches,
            self.rewinds,
            self.attack_pressure,
            self.max_congestion
        )
    }
}

/// A [`TargetSpec`] resolved into runnable form: built graph, compiler
/// factory, payload def and the evaluation seed.  Everything inside is
/// `Send + Sync`, so the engine shares one resolved target across worker
/// threads.
pub struct ResolvedTarget {
    /// The graph def the target runs on (the shrinker descends this).
    pub graph_def: GraphDef,
    /// The built, named graph.
    pub gspec: GraphSpec,
    /// The compiler under attack, as data.
    pub compiler: CompilerDef,
    /// The compiler factory cells run through.
    pub cspec: CompilerSpec,
    /// The payload every evaluation runs.
    pub payload: PayloadDef,
    /// How the synthesized adversary rewrites controlled messages.
    pub mode: CorruptionMode,
    /// The per-evaluation seed: `cell_seed(target.seed, 0)`, i.e. exactly
    /// the seed cell 0 of a single-cell campaign with base seed
    /// `target.seed` gets — which is why an exported counterexample spec
    /// replays the search's evaluation bit-for-bit.
    pub eval_seed: u64,
}

impl ResolvedTarget {
    /// Resolve a target spec (builds the graph, validates the payload
    /// against it).
    pub fn resolve(target: &TargetSpec) -> Result<ResolvedTarget, SpecError> {
        let gspec = GraphSpec::from_def(&target.graph)?;
        target.payload.validate(&gspec.name, &gspec.graph)?;
        Ok(ResolvedTarget {
            graph_def: target.graph.clone(),
            gspec,
            compiler: target.compiler.clone(),
            cspec: target.compiler.to_spec(),
            payload: target.payload.clone(),
            mode: target.mode,
            eval_seed: cell_seed(target.seed, 0),
        })
    }

    /// The same target on a different graph — the shrinker's graph-descent
    /// step.  Fails when the smaller graph no longer fits the payload (e.g.
    /// the flood source fell off the node range), which simply rejects that
    /// shrink candidate.
    pub fn with_graph(&self, def: &GraphDef) -> Result<ResolvedTarget, SpecError> {
        let gspec = GraphSpec::from_def(def)?;
        self.payload.validate(&gspec.name, &gspec.graph)?;
        Ok(ResolvedTarget {
            graph_def: def.clone(),
            gspec,
            compiler: self.compiler.clone(),
            cspec: self.compiler.to_spec(),
            payload: self.payload.clone(),
            mode: self.mode,
            eval_seed: self.eval_seed,
        })
    }

    /// The graph the target runs on.
    pub fn graph(&self) -> &Graph {
        &self.gspec.graph
    }

    /// Score one candidate: run the cell (pure function of specs + seed) and
    /// fold the report into the [`Fitness`] lattice.  A run that errors at
    /// scenario level scores [`Fitness::default`] — no damage, never a
    /// failure.
    pub fn evaluate(&self, adv: &SynthesizedAdversary) -> Fitness {
        let aspec = adv.def().to_spec();
        let payload = self.payload.clone();
        match run_cell(
            &self.gspec,
            &aspec,
            &self.cspec,
            &move |g: &Graph| payload.build(g),
            self.eval_seed,
        ) {
            Ok(report) => Fitness::from_report(&report),
            Err(_) => Fitness::default(),
        }
    }

    /// Re-run one candidate with event tracing on (ring buffer) — used to
    /// export the replay trace of a minimized counterexample.
    pub fn run_traced(&self, adv: &SynthesizedAdversary) -> Result<RunReport, ScenarioError> {
        let aspec = adv.def().to_spec();
        let payload = self.payload.clone();
        run_cell_traced(
            &self.gspec,
            &aspec,
            &self.cspec,
            &move |g: &Graph| payload.build(g),
            self.eval_seed,
            obs::TraceSpec::ring(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitness_lattice_orders_lexicographically() {
        let corrected = Fitness {
            attack_pressure: 900,
            max_congestion: 900,
            ..Fitness::default()
        };
        let residual = Fitness {
            residual_mismatches: 1,
            ..Fitness::default()
        };
        let decode = Fitness {
            failed_decode: true,
            ..Fitness::default()
        };
        assert!(decode > residual && residual > corrected);
        assert!(!corrected.is_failure() && residual.is_failure() && decode.is_failure());
        assert_eq!(decode.failure_class(), 2);
        assert_eq!(residual.failure_class(), 1);
        assert_eq!(corrected.failure_class(), 0);
    }
}
