//! Red-team adversary synthesis: search for corruption schedules that break a
//! compiler, then shrink the break to a minimal replayable counterexample.
//!
//! The Fischer–Parter compilers come with worst-case guarantees, but the
//! implementations in this workspace have concrete, finite weaknesses (the v1
//! greedy tree packing shares edges between trees, so a single well-placed
//! mobile edge can out-vote the majority argument).  This crate turns finding
//! such weaknesses into a reproducible pipeline:
//!
//! 1. **Search** ([`search`]): deterministic greedy / (1+1)-evolutionary
//!    chains over [`SynthesizedAdversary`] candidates — concrete per-round
//!    edge-corruption schedules within an `f`-edges-per-round budget — scored
//!    by the [`Fitness`] lattice (failed decode ≻ residual mismatches ≻
//!    rewinds ≻ attack pressure ≻ congestion) via the same
//!    `matrix::run_cell` entry point campaigns use.
//! 2. **Shrink** ([`mod@shrink`]): once a chain finds a failure, minimize it —
//!    fewer rounds, fewer edges per round, then a smaller graph via
//!    [`netgraph::GraphDef::shrink_candidates`] — re-executing every
//!    candidate and keeping the failure class invariant.
//! 3. **Replay** ([`spec::counterexample_spec`]): the minimal attack is pure
//!    data (`AdversaryDef::Synthesized`), so it exports as a one-cell
//!    `CampaignSpec` that reproduces the failure bit-for-bit through the
//!    standard campaign pipeline.
//!
//! Everything is deterministic: chain `c` step `s` draws its randomness from
//! `cell_seed(cell_seed(search_seed, c), s)`, candidate evaluation is a pure
//! function of specs and seed, and the [`run::RedTeam`] engine fans chains
//! across worker threads with slot-ordered collection — so a campaign's
//! trajectory is byte-identical at any thread count, and shards accumulate
//! byte-identically to a one-shot run.

#![warn(missing_docs)]

pub mod fitness;
pub mod run;
pub mod schedule;
pub mod search;
pub mod shrink;
pub mod spec;

pub use fitness::{Fitness, ResolvedTarget};
pub use run::{
    header_line, parse_trajectory, trajectory, unit_line, Counterexample, RedTeam, UnitOutcome,
};
pub use schedule::{ScheduleMove, SynthesizedAdversary};
pub use search::{run_chain, ChainReport, SearchStrategy};
pub use shrink::{shrink, ShrinkOutcome};
pub use spec::{counterexample_spec, BudgetSpec, RedTeamSpec, SearchSpec, TargetSpec};
