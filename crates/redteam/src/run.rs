//! The red-team engine: fan independent search chains across worker threads,
//! shrink what they find, and serialize the whole run as a resumable
//! trajectory (JSONL) plus replayable counterexample specs.

use crate::fitness::{Fitness, ResolvedTarget};
use crate::schedule::SynthesizedAdversary;
use crate::search::run_chain;
use crate::shrink::shrink;
use crate::spec::{counterexample_spec, RedTeamSpec};
use mobile_congest_harness::engine;
use mobile_congest_harness::json::{self, json_str, JsonValue};
use mobile_congest_harness::spec::SpecError;
use netgraph::GraphDef;

/// A minimized, replayable failure.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shrunk graph the failure reproduces on.
    pub graph: GraphDef,
    /// The minimal failing schedule.
    pub adversary: SynthesizedAdversary,
    /// Fitness of the minimal candidate (still a failure by construction).
    pub fitness: Fitness,
    /// Oracle evaluations the shrinker spent.
    pub shrink_evals: usize,
}

/// What one unit (one target × one search chain) produced.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Global unit index (`target * chains + chain`).
    pub unit: usize,
    /// Target index within the spec.
    pub target: usize,
    /// Chain index within the target.
    pub chain: usize,
    /// Candidate evaluations the search spent.
    pub search_evals: usize,
    /// Step at which the chain first failed the target, if it did.
    pub found_at: Option<usize>,
    /// Best fitness the chain reached (the failing one when `found_at` is
    /// set).
    pub best_fitness: Fitness,
    /// The shrunk failure, when the chain found one.
    pub counterexample: Option<Counterexample>,
}

/// The runnable form of a [`RedTeamSpec`]: resolved targets plus execution
/// knobs (threads, shard) that are deliberately **not** part of the spec —
/// they never change any result, only how fast it arrives.
pub struct RedTeam {
    spec: RedTeamSpec,
    resolved: Vec<ResolvedTarget>,
    threads: usize,
    shard: Option<(usize, usize)>,
}

impl RedTeam {
    /// Resolve a spec (validates it, builds every target graph).
    pub fn from_spec(spec: &RedTeamSpec) -> Result<RedTeam, SpecError> {
        spec.validate()?;
        let resolved = spec
            .targets
            .iter()
            .map(ResolvedTarget::resolve)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RedTeam {
            spec: spec.clone(),
            resolved,
            threads: 0,
            shard: None,
        })
    }

    /// Worker threads (0 = all cores).  Never changes results.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Restrict the run to units with `unit % of == index` (multi-machine
    /// fan-out; shard outputs merge cleanly because every unit line depends
    /// only on the unit's global index).
    pub fn shard(mut self, index: usize, of: usize) -> Self {
        self.shard = Some((index, of.max(1)));
        self
    }

    /// The spec being run.
    pub fn spec(&self) -> &RedTeamSpec {
        &self.spec
    }

    /// The resolved form of target `index` (panics when out of range, like
    /// indexing).
    pub fn resolved_target(&self, index: usize) -> &ResolvedTarget {
        &self.resolved[index]
    }

    /// Total units of the full campaign (targets × chains), ignoring the
    /// shard filter.
    pub fn unit_count(&self) -> usize {
        self.spec.targets.len() * self.spec.search.chains
    }

    /// The unit indices this instance will run (shard filter applied).
    pub fn unit_indices(&self) -> Vec<usize> {
        (0..self.unit_count())
            .filter(|unit| match self.shard {
                Some((index, of)) => unit % of == index,
                None => true,
            })
            .collect()
    }

    /// Run one unit: search chain, then shrink on failure.  Pure function of
    /// the spec and the unit index.
    pub fn run_unit(&self, unit: usize) -> UnitOutcome {
        let chains = self.spec.search.chains;
        let target_index = unit / chains;
        let chain = unit % chains;
        let target = &self.resolved[target_index];
        let report = run_chain(
            target,
            self.spec.budget.f,
            self.spec.budget.rounds,
            self.spec.search.strategy,
            self.spec.search.seed,
            chain,
            self.spec.search.steps,
        );
        let mut counterexample = None;
        if report.found_at.is_some() {
            let original_class = report.best_fitness.failure_class();
            let mut last_fitness = report.best_fitness;
            let outcome = shrink(&target.graph_def, &report.best, |g, a| {
                let fitness = if *g == target.graph_def {
                    target.evaluate(a)
                } else {
                    match target.with_graph(g) {
                        Ok(variant) => variant.evaluate(a),
                        Err(_) => return false,
                    }
                };
                let keeps = fitness.failure_class() >= original_class;
                if keeps {
                    last_fitness = fitness;
                }
                keeps
            });
            counterexample = Some(Counterexample {
                graph: outcome.graph,
                adversary: outcome.adversary,
                fitness: last_fitness,
                shrink_evals: outcome.evals,
            });
        }
        UnitOutcome {
            unit,
            target: target_index,
            chain,
            search_evals: report.evals,
            found_at: report.found_at,
            best_fitness: report.best_fitness,
            counterexample,
        }
    }

    /// Run the given units on the deterministic engine, results in argument
    /// order.  Each unit is independent and seeded by its global index, so
    /// the outcome is byte-identical at any thread count.
    pub fn run_units(&self, units: &[usize]) -> Vec<UnitOutcome> {
        engine::run_indexed(
            if self.threads == 0 {
                engine::default_threads()
            } else {
                self.threads
            },
            units.len(),
            |i| self.run_unit(units[i]),
        )
    }

    /// Run every unit of this instance's shard.
    pub fn run(&self) -> Vec<UnitOutcome> {
        self.run_units(&self.unit_indices())
    }
}

// ---------------------------------------------------------------------------
// Trajectory serialization: header + one line per unit, resumable/shardable.
// ---------------------------------------------------------------------------

/// The trajectory header line: `kind:"redteam"` plus the spec fingerprint
/// that keys `--resume` (a trajectory written for a different spec is
/// refused, never silently mixed).
pub fn header_line(spec: &RedTeamSpec) -> String {
    format!(
        "{{\"kind\":\"redteam\",\"fingerprint\":{},\"targets\":{},\"chains\":{},\"units\":{}}}",
        json_str(&spec.fingerprint()),
        spec.targets.len(),
        spec.search.chains,
        spec.targets.len() * spec.search.chains
    )
}

/// One unit's trajectory line.  Depends only on the unit's outcome (itself a
/// pure function of spec + unit index), which is what makes shard and resume
/// accumulation byte-identical to a one-shot run.
pub fn unit_line(spec: &RedTeamSpec, outcome: &UnitOutcome) -> String {
    let mut line = format!(
        "{{\"kind\":\"unit\",\"index\":{},\"target\":{},\"chain\":{},\"evals\":{},\"found_at\":{},\"fitness\":{}",
        outcome.unit,
        outcome.target,
        outcome.chain,
        outcome.search_evals,
        match outcome.found_at {
            Some(step) => step.to_string(),
            None => "null".into(),
        },
        outcome.best_fitness.json()
    );
    match &outcome.counterexample {
        None => line.push_str(",\"ce\":null}"),
        Some(ce) => {
            let ce_spec =
                counterexample_spec(&spec.targets[outcome.target], &ce.graph, &ce.adversary);
            let schedule: Vec<String> = ce
                .adversary
                .schedule()
                .iter()
                .map(|row| {
                    let edges: Vec<String> = row.iter().map(usize::to_string).collect();
                    format!("[{}]", edges.join(","))
                })
                .collect();
            line.push_str(&format!(
                ",\"ce\":{{\"spec_fingerprint\":{},\"graph\":{},\"rounds\":{},\"schedule\":[{}],\"fitness\":{},\"shrink_evals\":{}}}}}",
                json_str(&ce_spec.fingerprint()),
                json_str(&ce.graph.display_name()),
                ce.adversary.rounds(),
                schedule.join(","),
                ce.fitness.json(),
                ce.shrink_evals
            ));
        }
    }
    line
}

/// Parse a trajectory file back into `(unit index, line)` pairs, verifying
/// the header's fingerprint against `fingerprint`.  A torn trailing line
/// (interrupted write) is tolerated and dropped; a fingerprint mismatch is
/// an error — resuming must never mix campaigns.
pub fn parse_trajectory(content: &str, fingerprint: &str) -> Result<Vec<(usize, String)>, String> {
    let mut lines = content.lines();
    let header = lines.next().ok_or("trajectory file is empty")?;
    let doc = json::parse(header).map_err(|e| format!("trajectory header: {e}"))?;
    if doc.get("kind").and_then(JsonValue::as_str) != Some("redteam") {
        return Err("trajectory header is not kind:\"redteam\"".into());
    }
    match doc.get("fingerprint").and_then(JsonValue::as_str) {
        Some(found) if found == fingerprint => {}
        Some(found) => {
            return Err(format!(
                "trajectory was written for spec {found}, this spec is {fingerprint}"
            ))
        }
        None => return Err("trajectory header has no fingerprint".into()),
    }
    let mut kept = Vec::new();
    for line in lines {
        let Ok(doc) = json::parse(line) else {
            continue; // torn trailing line from an interrupted write
        };
        if doc.get("kind").and_then(JsonValue::as_str) != Some("unit") {
            continue;
        }
        if let Some(index) = doc.get("index").and_then(JsonValue::as_usize) {
            kept.push((index, line.to_string()));
        }
    }
    Ok(kept)
}

/// Assemble the full trajectory file: header plus unit lines sorted by index
/// (later duplicates win, so re-run units supersede kept ones).
pub fn trajectory(spec: &RedTeamSpec, lines: &[(usize, String)]) -> String {
    let mut merged: Vec<(usize, String)> = Vec::new();
    for (index, line) in lines {
        match merged.binary_search_by_key(index, |(i, _)| *i) {
            Ok(at) => merged[at] = (*index, line.clone()),
            Err(at) => merged.insert(at, (*index, line.clone())),
        }
    }
    let mut out = header_line(spec);
    out.push('\n');
    for (_, line) in &merged {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchStrategy;
    use crate::spec::{BudgetSpec, SearchSpec, TargetSpec};
    use congest_sim::adversary::CorruptionMode;
    use mobile_congest_core::adapters::CompilerDef;
    use mobile_congest_harness::spec::PayloadDef;

    fn tiny_spec() -> RedTeamSpec {
        RedTeamSpec {
            search: SearchSpec {
                seed: 11,
                chains: 3,
                steps: 2,
                strategy: SearchStrategy::Evolve,
            },
            budget: BudgetSpec { f: 1, rounds: 2 },
            targets: vec![TargetSpec {
                graph: GraphDef::complete(6),
                compiler: CompilerDef::Uncompiled,
                payload: PayloadDef::FloodBroadcast {
                    source: 0,
                    value: 99,
                },
                seed: 3,
                mode: CorruptionMode::FlipLowBit,
            }],
        }
    }

    #[test]
    fn shard_indices_partition_units() {
        let spec = tiny_spec();
        let all = RedTeam::from_spec(&spec).unwrap().unit_indices();
        let mut sharded: Vec<usize> = Vec::new();
        for index in 0..2 {
            sharded.extend(
                RedTeam::from_spec(&spec)
                    .unwrap()
                    .shard(index, 2)
                    .unit_indices(),
            );
        }
        sharded.sort_unstable();
        assert_eq!(all, sharded);
    }

    #[test]
    fn trajectory_round_trips_and_merges() {
        let spec = tiny_spec();
        let team = RedTeam::from_spec(&spec).unwrap().threads(1);
        let outcomes = team.run();
        let lines: Vec<(usize, String)> = outcomes
            .iter()
            .map(|o| (o.unit, unit_line(&spec, o)))
            .collect();
        let full = trajectory(&spec, &lines);
        let parsed = parse_trajectory(&full, &spec.fingerprint()).unwrap();
        assert_eq!(parsed, lines);
        // Reassembling from an unordered, duplicated line set is identical.
        let mut shuffled = lines.clone();
        shuffled.reverse();
        shuffled.push(lines[0].clone());
        assert_eq!(trajectory(&spec, &shuffled), full);
        // A foreign fingerprint is refused.
        assert!(parse_trajectory(&full, "0000000000000000").is_err());
    }

    #[test]
    fn uncompiled_target_fails_immediately_and_shrinks_small() {
        // The uncompiled baseline has no defence: the very first random
        // candidate that actually corrupts something breaks it, and the
        // shrinker should reduce that to very few corrupted edges.
        let spec = tiny_spec();
        let team = RedTeam::from_spec(&spec).unwrap().threads(1);
        let outcomes = team.run();
        let found = outcomes.iter().find(|o| o.counterexample.is_some());
        let Some(outcome) = found else {
            panic!("no chain broke the uncompiled baseline");
        };
        let ce = outcome.counterexample.as_ref().unwrap();
        assert!(ce.fitness.is_failure());
        assert!(ce.adversary.total_edges() <= 2);
    }
}
