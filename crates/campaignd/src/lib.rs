//! `campaignd` — a campaign *server*: durable job queue, fsync'd store and
//! std-only HTTP/1.1 API over the deterministic campaign engine.
//!
//! The one-shot `campaign` CLI runs a [`harness::CampaignSpec`] to
//! completion in a single process; this crate turns the same specs into
//! durable jobs that survive crashes and restarts:
//!
//! - [`store`] — an append-only, fsync'd filesystem store keyed by spec
//!   fingerprint, with atomic-rename writes and a replay-on-startup
//!   recovery protocol.
//! - [`server`] — the job queue and in-process worker pool.  Cells are
//!   batched with the same `index % of` partition as the CLI's `--shard`,
//!   executed through [`harness::Campaign::run_cells`] and persisted before
//!   they become visible, so a server-run campaign's merged report is
//!   byte-identical (same [`harness::ReportRecord::fingerprint`]) to the
//!   one-shot CLI run, and a SIGKILLed server resumes without re-executing
//!   any completed cell.
//! - [`http`] — the minimal hand-rolled HTTP/1.1 subset (the workspace is
//!   offline; no hyper) shared by server and client.
//! - [`api_types`] — typed request/response documents with JSON codecs
//!   built on `harness::json`.
//! - [`client`] — a typed client used by the `campaignctl` binary, the
//!   integration tests and CI.
//!
//! Everything is `std`-only; the only dependency is the harness itself.

#![warn(missing_docs)]

pub mod api_types;
pub mod client;
pub mod http;
pub mod server;
pub mod store;

pub use api_types::{ApiError, JobList, JobState, JobStatus, QueryParams, QueryResponse, QueryRow};
pub use client::Client;
pub use server::{start, Config, Handle};
pub use store::{FsStore, Store, StoreError, StoredJob};

/// The campaign harness this server drives, re-exported for callers that
/// need spec/report types alongside the client.
pub use mobile_congest_harness as harness;
