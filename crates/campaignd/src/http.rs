//! Minimal hand-rolled HTTP/1.1 plumbing over `std::net` (the workspace is
//! offline — no hyper), shared by the server and the client.
//!
//! Scope is deliberately small: one request per connection
//! (`Connection: close`), request line + headers + optional
//! `Content-Length` body, hard size limits, percent-decoded query strings.
//! That subset is enough for `curl`, the [`crate::client::Client`] and CI.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body (campaign specs are a few KB).
const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path without the query string (`/jobs/abc`).
    pub path: String,
    /// Percent-decoded query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The raw body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path split on `/` with empty segments dropped
    /// (`/jobs/abc/summary` → `["jobs", "abc", "summary"]`).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// One HTTP response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text (JSONL) response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Read and parse one request off a connection.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line + headers, line by line, bounded.
    let request_line = read_line(&mut reader, &mut head)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| "request line has no target".to_string())?
        .to_string();
    let mut content_length = 0usize;
    loop {
        let line = read_line(&mut reader, &mut head)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "malformed Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds the limit"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("truncated body: {e}"))?;

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        body,
    })
}

fn read_line(reader: &mut BufReader<&mut TcpStream>, head: &mut String) -> Result<String, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read request: {e}"))?;
    head.push_str(&line);
    if head.len() > MAX_HEAD {
        return Err("request head exceeds the limit".to_string());
    }
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

/// Serialize and send a response, closing the connection after.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Decode `%XX` escapes and `+`-for-space (query-string convention).
pub fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    core::str::from_utf8(pair)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode everything outside the URL-safe set.
pub fn percent_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for &b in text.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_coding_round_trips() {
        for original in ["plain", "a b+c", "K8/torus", "100%", "fp1,fp2", "café"] {
            assert_eq!(percent_decode(&percent_encode(original)), original);
        }
        assert_eq!(percent_decode("a%2Cb"), "a,b");
        assert_eq!(percent_decode("a+b"), "a b");
        // A stray % decodes as itself rather than erroring.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn requests_parse_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            write_response(&mut stream, &Response::json(200, "{}")).unwrap();
            request
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(
                b"POST /jobs?facet=overhead&graph=K8%20big HTTP/1.1\r\n\
                  Host: x\r\nContent-Length: 4\r\n\r\nbody",
            )
            .unwrap();
        let mut reply = String::new();
        client.read_to_string(&mut reply).unwrap();
        let request = join.join().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/jobs");
        assert_eq!(request.segments(), vec!["jobs"]);
        assert_eq!(request.query_param("facet"), Some("overhead"));
        assert_eq!(request.query_param("graph"), Some("K8 big"));
        assert_eq!(request.body, b"body");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "got: {reply}");
        assert!(reply.contains("Connection: close"));
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).map(|_| ())
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        assert!(join.join().unwrap().is_err());
    }
}
