//! A typed client for the campaign server, speaking the same hand-rolled
//! HTTP/1.1 subset as [`crate::http`] over a plain [`TcpStream`].
//!
//! Every method returns `Err(message)` on transport failures and on
//! non-2xx responses; for the latter the message is the server's
//! [`ApiError`] text when the body parses as one.

use crate::api_types::{ApiError, JobList, JobStatus, QueryParams, QueryResponse};
use mobile_congest_harness as harness;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A client bound to one server address.
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One raw request/response exchange.  Returns the status code and the
    /// body text.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reply = String::new();
        stream
            .read_to_string(&mut reply)
            .map_err(|e| format!("cannot read response: {e}"))?;
        let (head, body) = reply
            .split_once("\r\n\r\n")
            .ok_or_else(|| "malformed response: no header terminator".to_string())?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| format!("malformed status line: {head}"))?;
        Ok((status, body.to_string()))
    }

    /// Exchange plus 2xx check: non-2xx turns into `Err` with the server's
    /// error message.
    fn expect_ok(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
        let (status, body) = self.request(method, path, body)?;
        if (200..300).contains(&status) {
            return Ok(body);
        }
        let message = ApiError::from_json(&body)
            .map(|e| e.error)
            .unwrap_or_else(|_| body.clone());
        Err(format!("server returned {status}: {message}"))
    }

    /// Submit a spec (`POST /jobs`); the body is the raw spec JSON text.
    pub fn submit(&self, spec_json: &str) -> Result<JobStatus, String> {
        let body = self.expect_ok("POST", "/jobs", Some(spec_json))?;
        JobStatus::from_json(&body).map_err(|e| format!("malformed job status: {e}"))
    }

    /// Fetch one job's status (`GET /jobs/{fp}`).
    pub fn status(&self, fingerprint: &str) -> Result<JobStatus, String> {
        let body = self.expect_ok("GET", &format!("/jobs/{fingerprint}"), None)?;
        JobStatus::from_json(&body).map_err(|e| format!("malformed job status: {e}"))
    }

    /// List every job (`GET /jobs`).
    pub fn jobs(&self) -> Result<JobList, String> {
        let body = self.expect_ok("GET", "/jobs", None)?;
        JobList::from_json(&body).map_err(|e| format!("malformed job list: {e}"))
    }

    /// Fetch a job's summary JSONL (`GET /jobs/{fp}/summary`).
    pub fn summary(&self, fingerprint: &str) -> Result<String, String> {
        self.expect_ok("GET", &format!("/jobs/{fingerprint}/summary"), None)
    }

    /// Fetch a job's trajectory JSONL (`GET /jobs/{fp}/trajectory`).
    pub fn trajectory(&self, fingerprint: &str) -> Result<String, String> {
        self.expect_ok("GET", &format!("/jobs/{fingerprint}/trajectory"), None)
    }

    /// Cancel a job (`DELETE /jobs/{fp}`); returns the post-cancel status.
    pub fn cancel(&self, fingerprint: &str) -> Result<JobStatus, String> {
        let body = self.expect_ok("DELETE", &format!("/jobs/{fingerprint}"), None)?;
        JobStatus::from_json(&body).map_err(|e| format!("malformed job status: {e}"))
    }

    /// Compare a facet statistic across jobs (`GET /query`).
    pub fn query(&self, params: &QueryParams) -> Result<QueryResponse, String> {
        let body = self.expect_ok("GET", &format!("/query?{}", params.to_query_string()), None)?;
        QueryResponse::from_json(&body).map_err(|e| format!("malformed query response: {e}"))
    }

    /// Watch a job until it reaches a terminal state, invoking `on_progress`
    /// with every observed status (including the terminal one).
    ///
    /// Each round long-polls (`?wait_ms=poll_ms`): the server holds the
    /// response until the job is terminal or `poll_ms` elapses, so
    /// completion is observed immediately instead of half a poll interval
    /// late, and a watcher costs one blocked connection rather than a
    /// request storm.
    pub fn watch(
        &self,
        fingerprint: &str,
        poll_ms: u64,
        mut on_progress: impl FnMut(&JobStatus),
    ) -> Result<JobStatus, String> {
        let path = format!("/jobs/{fingerprint}?wait_ms={}", poll_ms.max(1));
        loop {
            let body = self.expect_ok("GET", &path, None)?;
            let status =
                JobStatus::from_json(&body).map_err(|e| format!("malformed job status: {e}"))?;
            on_progress(&status);
            if status.state.is_terminal() {
                return Ok(status);
            }
        }
    }

    /// Submit a spec from a file and return the status; a convenience for
    /// the `campaignctl` binary and tests.
    pub fn submit_file(&self, path: &std::path::Path) -> Result<JobStatus, String> {
        let spec_json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        // Parse locally first for a friendlier error than a server 400.
        harness::CampaignSpec::from_json(&spec_json)
            .map_err(|e| format!("invalid spec {}: {e}", path.display()))?;
        self.submit(&spec_json)
    }
}
