//! The durable job store: append-only, fsync'd, atomic-rename segments
//! under a data directory.
//!
//! Layout (everything keyed by the job's spec fingerprint):
//!
//! ```text
//! <data_dir>/jobs/<fingerprint>/
//!     spec.json       canonical CampaignSpec::to_json   (atomic rename)
//!     state.json      {"kind":"job-state","state":...}  (atomic rename)
//!     cells.log       one CellRecord JSON line per cell (append + fsync)
//!     summary.jsonl   kind:"summary" lines              (atomic rename, on completion)
//! ```
//!
//! Recovery protocol ([`Store::load_jobs`]): enumerate the job directories,
//! re-parse `spec.json` and `state.json`, replay `cells.log` line by line.
//! Only lines that parse as full [`CellRecord`]s count as done — a torn
//! trailing line from a crash mid-append is counted in
//! [`StoredJob::torn_lines`] and its cell simply re-runs (the cell's seed
//! depends only on its global index, so the re-run is byte-identical).
//! `cells.log` is append-only and fsync'd per batch; the other three files
//! are written whole to a temp file, fsync'd and renamed into place, so a
//! crash at any instant leaves either the old version or the new one.

use harness::report::CellRecord;
use harness::CampaignSpec;
use mobile_congest_harness as harness;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::api_types::JobState;

/// A store failure: which path, what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// The path the operation touched.
    pub path: PathBuf,
    /// What went wrong.
    pub reason: String,
}

impl StoreError {
    fn new(path: impl Into<PathBuf>, reason: impl core::fmt::Display) -> StoreError {
        StoreError {
            path: path.into(),
            reason: reason.to_string(),
        }
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "store error at {}: {}", self.path.display(), self.reason)
    }
}

impl std::error::Error for StoreError {}

/// One job as recovered from disk.
#[derive(Debug, Clone)]
pub struct StoredJob {
    /// The spec fingerprint (directory name, re-verified against the spec).
    pub fingerprint: String,
    /// The parsed spec.
    pub spec: CampaignSpec,
    /// Last durably recorded state.
    pub state: JobState,
    /// Every fully persisted cell record, in log order.
    pub cells: Vec<CellRecord>,
    /// Unparseable `cells.log` lines (torn writes) that were skipped.
    pub torn_lines: usize,
}

/// The persistence contract of the campaign server.  One method per
/// durability point; [`Store::load_jobs`] is the crash-recovery replay.
pub trait Store: Send + Sync {
    /// Persist a job's canonical spec JSON (atomic; creates the job).
    fn put_spec(&self, fingerprint: &str, spec_json: &str) -> Result<(), StoreError>;
    /// Persist a job's lifecycle state (atomic).
    fn set_state(&self, fingerprint: &str, state: JobState) -> Result<(), StoreError>;
    /// Append finished cells to the job's log, one pre-encoded
    /// [`CellRecord::to_json`] line per cell (fsync'd before returning —
    /// once this returns, the cells survive any crash).  Callers encode
    /// once and keep the lines; the server reuses them to fingerprint the
    /// finished report without re-serializing every record.
    fn append_cells(&self, fingerprint: &str, lines: &[String]) -> Result<(), StoreError>;
    /// Persist the finalized summary JSONL (atomic).
    fn put_summary(&self, fingerprint: &str, summary_jsonl: &str) -> Result<(), StoreError>;
    /// Read a job's finalized summary, if present.
    fn summary(&self, fingerprint: &str) -> Result<Option<String>, StoreError>;
    /// Replay the whole store (see the module docs for the protocol).
    fn load_jobs(&self) -> Result<Vec<StoredJob>, StoreError>;
}

/// The filesystem store (see the module docs for layout and protocol).
pub struct FsStore {
    root: PathBuf,
}

impl FsStore {
    /// Open (creating if needed) a store under `data_dir`.
    pub fn open(data_dir: &Path) -> Result<FsStore, StoreError> {
        let root = data_dir.join("jobs");
        fs::create_dir_all(&root).map_err(|e| StoreError::new(&root, e))?;
        Ok(FsStore { root })
    }

    fn job_dir(&self, fingerprint: &str) -> PathBuf {
        self.root.join(fingerprint)
    }

    /// Write `text` to `path` crash-safely: temp file in the same directory,
    /// fsync, rename into place.
    fn write_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| StoreError::new(&tmp, e))?;
            file.write_all(text.as_bytes())
                .map_err(|e| StoreError::new(&tmp, e))?;
            file.sync_all().map_err(|e| StoreError::new(&tmp, e))?;
        }
        fs::rename(&tmp, path).map_err(|e| StoreError::new(path, e))
    }
}

impl Store for FsStore {
    fn put_spec(&self, fingerprint: &str, spec_json: &str) -> Result<(), StoreError> {
        let dir = self.job_dir(fingerprint);
        fs::create_dir_all(&dir).map_err(|e| StoreError::new(&dir, e))?;
        Self::write_atomic(&dir.join("spec.json"), spec_json)
    }

    fn set_state(&self, fingerprint: &str, state: JobState) -> Result<(), StoreError> {
        let path = self.job_dir(fingerprint).join("state.json");
        Self::write_atomic(
            &path,
            &format!(
                "{{\"kind\":\"job-state\",\"state\":\"{}\"}}\n",
                state.label()
            ),
        )
    }

    fn append_cells(&self, fingerprint: &str, lines: &[String]) -> Result<(), StoreError> {
        if lines.is_empty() {
            return Ok(());
        }
        let path = self.job_dir(fingerprint).join("cells.log");
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::new(&path, e))?;
        let mut text = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            text.push_str(line);
            text.push('\n');
        }
        file.write_all(text.as_bytes())
            .map_err(|e| StoreError::new(&path, e))?;
        // The durability point: the batch is either fully on disk after this
        // returns, or (on a crash before it) at worst a torn trailing line,
        // which recovery skips and re-runs.
        file.sync_data().map_err(|e| StoreError::new(&path, e))
    }

    fn put_summary(&self, fingerprint: &str, summary_jsonl: &str) -> Result<(), StoreError> {
        Self::write_atomic(
            &self.job_dir(fingerprint).join("summary.jsonl"),
            summary_jsonl,
        )
    }

    fn summary(&self, fingerprint: &str) -> Result<Option<String>, StoreError> {
        let path = self.job_dir(fingerprint).join("summary.jsonl");
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::new(&path, e)),
        }
    }

    fn load_jobs(&self) -> Result<Vec<StoredJob>, StoreError> {
        let mut jobs = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| StoreError::new(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::new(&self.root, e))?;
            let dir = entry.path();
            if !dir.is_dir() {
                continue;
            }
            let fingerprint = entry.file_name().to_string_lossy().into_owned();
            let spec_path = dir.join("spec.json");
            let spec_text = match fs::read_to_string(&spec_path) {
                Ok(text) => text,
                // A crash between create_dir_all and the spec rename leaves
                // an empty job directory: nothing durable was promised yet,
                // so skip it.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(StoreError::new(&spec_path, e)),
            };
            let spec =
                CampaignSpec::from_json(&spec_text).map_err(|e| StoreError::new(&spec_path, e))?;
            if spec.fingerprint() != fingerprint {
                return Err(StoreError::new(
                    &spec_path,
                    format!(
                        "spec fingerprint {} does not match its directory",
                        spec.fingerprint()
                    ),
                ));
            }
            let state_path = dir.join("state.json");
            let state = match fs::read_to_string(&state_path) {
                Ok(text) => parse_state(&text)
                    .ok_or_else(|| StoreError::new(&state_path, "malformed job-state document"))?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => JobState::Queued,
                Err(e) => return Err(StoreError::new(&state_path, e)),
            };
            let log_path = dir.join("cells.log");
            let (cells, torn_lines) = match fs::read_to_string(&log_path) {
                Ok(text) => {
                    let mut cells = Vec::new();
                    let mut torn = 0usize;
                    for line in text.lines() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match CellRecord::from_json(line) {
                            Ok(record) => cells.push(record),
                            Err(_) => torn += 1,
                        }
                    }
                    (cells, torn)
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), 0),
                Err(e) => return Err(StoreError::new(&log_path, e)),
            };
            jobs.push(StoredJob {
                fingerprint,
                spec,
                state,
                cells,
                torn_lines,
            });
        }
        jobs.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        Ok(jobs)
    }
}

/// Parse the `state.json` document.
fn parse_state(text: &str) -> Option<JobState> {
    let v = harness::json::parse(text.trim()).ok()?;
    if v.get("kind").and_then(harness::json::JsonValue::as_str) != Some("job-state") {
        return None;
    }
    JobState::from_label(v.get("state").and_then(harness::json::JsonValue::as_str)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::report::RecordOutcome;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaignd-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{"kind":"campaign-spec","seed":7,"repetitions":2,"grid":{
                "graphs":[{"family":"complete","n":6}],
                "adversaries":[{"kind":"random-mobile","f":1}],
                "compilers":[{"id":"uncompiled"}],
                "payload":{"kind":"exchange-ids"}}}"#,
        )
        .unwrap()
    }

    fn record(index: usize) -> CellRecord {
        CellRecord {
            index,
            graph: "K6".into(),
            adversary: "random-mobile".into(),
            compiler: "uncompiled".into(),
            repetition: index % 2,
            seed: 42,
            outcome: RecordOutcome::Ok {
                payload_rounds: 1,
                network_rounds: 1,
                corrupted_edge_rounds: 0,
                cong_p99: 1.0,
                cong_topk: 1.0,
                agrees: Some(true),
                notes_type: "uncompiled".into(),
                notes: vec![],
            },
        }
    }

    #[test]
    fn a_job_survives_the_full_persistence_cycle() {
        let dir = temp_dir("cycle");
        let store = FsStore::open(&dir).unwrap();
        let spec = sample_spec();
        let fp = spec.fingerprint();
        store.put_spec(&fp, &spec.to_json()).unwrap();
        store.set_state(&fp, JobState::Running).unwrap();
        store
            .append_cells(&fp, &[record(0).to_json(), record(1).to_json()])
            .unwrap();
        store.append_cells(&fp, &[record(2).to_json()]).unwrap();
        store.put_summary(&fp, "summary-line\n").unwrap();
        store.set_state(&fp, JobState::Done).unwrap();

        let jobs = FsStore::open(&dir).unwrap().load_jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        let job = &jobs[0];
        assert_eq!(job.fingerprint, fp);
        assert_eq!(job.spec, spec);
        assert_eq!(job.state, JobState::Done);
        assert_eq!(job.cells.len(), 3);
        assert_eq!(job.torn_lines, 0);
        assert_eq!(
            store.summary(&fp).unwrap().as_deref(),
            Some("summary-line\n")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_lines_are_skipped_and_counted() {
        let dir = temp_dir("torn");
        let store = FsStore::open(&dir).unwrap();
        let spec = sample_spec();
        let fp = spec.fingerprint();
        store.put_spec(&fp, &spec.to_json()).unwrap();
        store.append_cells(&fp, &[record(0).to_json()]).unwrap();
        // Simulate a crash mid-append: a truncated JSON line at the tail.
        let log = dir.join("jobs").join(&fp).join("cells.log");
        let mut file = fs::OpenOptions::new().append(true).open(&log).unwrap();
        file.write_all(b"{\"kind\":\"cell-record\",\"index\":1,\"gra")
            .unwrap();
        drop(file);

        let jobs = store.load_jobs().unwrap();
        assert_eq!(jobs[0].cells.len(), 1, "only the intact record counts");
        assert_eq!(jobs[0].torn_lines, 1);
        assert_eq!(jobs[0].state, JobState::Queued, "no state file yet");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_job_directories_are_skipped_and_mismatched_specs_refused() {
        let dir = temp_dir("mismatch");
        let store = FsStore::open(&dir).unwrap();
        // Crash between mkdir and the spec rename: an empty directory.
        fs::create_dir_all(dir.join("jobs").join("0000000000000000")).unwrap();
        assert!(store.load_jobs().unwrap().is_empty());
        // A spec filed under the wrong fingerprint is corruption, not data.
        let spec = sample_spec();
        store.put_spec("ffffffffffffffff", &spec.to_json()).unwrap();
        assert!(store.load_jobs().is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
