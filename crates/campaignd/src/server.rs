//! The campaign server: a durable job queue and in-process worker pool over
//! the deterministic campaign engine, fronted by the std-only HTTP API.
//!
//! # Execution model
//!
//! A submitted [`CampaignSpec`] becomes a durable job keyed by its
//! fingerprint.  The job's pending cells are split into batches using the
//! [`Campaign::shard`] partition (`global index % batch_count`), pushed on
//! an in-memory queue, and drained by a pool of worker threads.  Each worker
//! executes its batch through [`Campaign::run_cells`] — the same entry point
//! the CLI's `--shard`/`--resume` paths use — flattens the cells to
//! [`CellRecord`]s and appends them to the fsync'd store before marking them
//! done in memory.
//!
//! # Determinism contract
//!
//! A cell's seed (and therefore its entire execution) depends only on its
//! global index, so the merged record report of a server-run job is
//! **byte-identical** — same [`ReportRecord::fingerprint`] — to the one-shot
//! CLI run of the same spec, regardless of batch size, worker count,
//! restarts, or the order batches happened to complete in.
//!
//! # Crash recovery
//!
//! On startup the store is replayed ([`crate::store`] documents the
//! protocol): fully persisted cells count as done and are **never
//! re-executed**; a torn trailing line re-runs its cell; non-terminal jobs
//! are requeued with exactly their missing cells.

use crate::api_types::{ApiError, JobList, JobState, JobStatus, QueryResponse, QueryRow};
use crate::http::{self, Request, Response};
use crate::store::{FsStore, Store};
use harness::report::{CellRecord, ReportRecord};
use harness::{Campaign, CampaignSpec, StatSummary};
use mobile_congest_harness as harness;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration.
pub struct Config {
    /// Listen address (`127.0.0.1:0` picks a free port; see
    /// [`Handle::addr`] for the resolved one).
    pub addr: String,
    /// Store root (the `jobs/` tree is created under it).
    pub data_dir: PathBuf,
    /// Worker threads draining the batch queue.  `0` starts none — jobs
    /// queue durably but nothing executes (a testing knob; the binaries
    /// always pass at least 1).
    pub workers: usize,
    /// Threads serving HTTP connections.
    pub http_threads: usize,
    /// Cells per batch (the durability granularity: a batch is fsync'd as
    /// one append).
    pub batch_size: usize,
    /// Suppress stderr diagnostics.
    pub quiet: bool,
}

impl Config {
    /// Defaults: any free loopback port, one worker per core, 2 HTTP
    /// threads, 8-cell batches.
    pub fn new(data_dir: impl Into<PathBuf>) -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.into(),
            workers: harness::default_threads(),
            http_threads: 2,
            batch_size: 8,
            quiet: false,
        }
    }
}

/// A completed cell: the typed record plus its canonical
/// [`CellRecord::to_json`] line, cached from the append so finalizing
/// (fingerprinting) a job never re-encodes every record.
struct DoneCell {
    record: CellRecord,
    line: String,
}

/// One live job.
struct Job {
    spec: CampaignSpec,
    campaign: Arc<Campaign>,
    state: JobState,
    done: BTreeMap<usize, DoneCell>,
    /// Running executed/skipped/failed/disagreement tallies, updated as
    /// records land so status polls never rescan the cell map.
    counts: (usize, usize, usize, usize),
    /// Cached once the job finalizes (recomputing is O(cells)).
    report_fingerprint: Option<String>,
    error: Option<String>,
}

/// Fold one record into a job's outcome tallies (the same classification as
/// [`ReportRecord::outcome_counts`]).
fn tally(counts: &mut (usize, usize, usize, usize), record: &CellRecord) {
    match &record.outcome {
        harness::RecordOutcome::Ok { agrees, .. } => {
            counts.0 += 1;
            if *agrees == Some(false) {
                counts.3 += 1;
            }
        }
        harness::RecordOutcome::Skipped { .. } => counts.1 += 1,
        harness::RecordOutcome::Failed { .. } => counts.2 += 1,
    }
}

/// One unit of queued work: a slice of a job's pending cells.
struct Batch {
    fingerprint: String,
    indices: Vec<usize>,
}

struct Inner {
    store: Box<dyn Store>,
    jobs: Mutex<BTreeMap<String, Job>>,
    /// Signalled on every job state change; long-polling status requests
    /// (`GET /jobs/{fp}?wait_ms=N`) block on it instead of busy-polling.
    jobs_cv: Condvar,
    queue: Mutex<VecDeque<Batch>>,
    queue_cv: Condvar,
    /// Cells executed by the engine in this server process — the
    /// zero-re-execution recovery contract is asserted against this.
    executed: AtomicUsize,
    batch_size: usize,
    /// Upper bound on batches per enqueue: each batch pays a lock round
    /// trip and an fsync'd append, so huge jobs get proportionally bigger
    /// batches rather than proportionally more of them.
    max_batches: usize,
    quiet: bool,
    /// One compile-artifact cache for the whole daemon: every job's
    /// campaign shares it, so resubmitted or overlapping specs reuse each
    /// `(graph, compiler)` preparation across batches and across jobs.
    artifact_cache: Arc<harness::ArtifactCache>,
}

impl Inner {
    fn log(&self, msg: impl core::fmt::Display) {
        if !self.quiet {
            eprintln!("campaignd: {msg}");
        }
    }
}

/// A handle on a started server: the resolved address plus the process-level
/// execution counter.  Dropping the handle does **not** stop the server;
/// the accept loop and workers run until process exit (the server is a
/// daemon, not a scoped task).
pub struct Handle {
    addr: SocketAddr,
    inner: Arc<Inner>,
}

impl Handle {
    /// The resolved listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cells executed by the engine in this server process (across all
    /// jobs).  After recovering a half-done job, `executed()` at completion
    /// equals exactly the number of cells that were missing — zero
    /// re-execution.
    pub fn executed(&self) -> usize {
        self.inner.executed.load(Ordering::SeqCst)
    }
}

/// The `Campaign::shard` partition of a pending-index set: batch `b` holds
/// the indices with `index % of == b`.  Batching this way (rather than
/// chunking contiguously) keeps the server's unit of work identical to the
/// CLI's `--shard I/OF`, so every durability and determinism argument about
/// shards carries over verbatim.
pub fn shard_batches(pending: &[usize], of: usize) -> Vec<Vec<usize>> {
    let of = of.max(1);
    let mut batches: Vec<Vec<usize>> = vec![Vec::new(); of];
    for &index in pending {
        batches[index % of].push(index);
    }
    batches.retain(|b| !b.is_empty());
    batches
}

/// Start a server: open (and replay) the store, bind the listener, spawn
/// the worker pool and the HTTP threads.
pub fn start(config: Config) -> Result<Handle, String> {
    let store = FsStore::open(&config.data_dir).map_err(|e| e.to_string())?;
    let inner = Arc::new(Inner {
        store: Box::new(store),
        jobs: Mutex::new(BTreeMap::new()),
        jobs_cv: Condvar::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        executed: AtomicUsize::new(0),
        batch_size: config.batch_size.max(1),
        max_batches: (config.workers.max(1) * 4).max(8),
        quiet: config.quiet,
        artifact_cache: Arc::new(harness::ArtifactCache::new()),
    });

    recover(&inner).map_err(|e| format!("recovery failed: {e}"))?;

    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    for worker in 0..config.workers {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name(format!("campaignd-worker-{worker}"))
            .spawn(move || worker_loop(&inner))
            .map_err(|e| format!("cannot spawn worker: {e}"))?;
    }

    // Bounded connection hand-off: the accept loop blocks once every HTTP
    // thread is busy and the channel is full, instead of queueing unboundedly.
    let (tx, rx) = mpsc::sync_channel::<std::net::TcpStream>(64);
    let rx = Arc::new(Mutex::new(rx));
    for worker in 0..config.http_threads.max(1) {
        let inner = Arc::clone(&inner);
        let rx = Arc::clone(&rx);
        std::thread::Builder::new()
            .name(format!("campaignd-http-{worker}"))
            .spawn(move || loop {
                let stream = match rx.lock().expect("http rx lock").recv() {
                    Ok(stream) => stream,
                    Err(_) => return,
                };
                serve_connection(&inner, stream);
            })
            .map_err(|e| format!("cannot spawn http thread: {e}"))?;
    }
    std::thread::Builder::new()
        .name("campaignd-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming().flatten() {
                if tx.send(stream).is_err() {
                    return;
                }
            }
        })
        .map_err(|e| format!("cannot spawn accept loop: {e}"))?;

    let handle = Handle {
        addr,
        inner: Arc::clone(&inner),
    };
    inner.log(format!("listening on {addr}"));
    Ok(handle)
}

/// Replay the store into the in-memory job map and requeue unfinished work.
fn recover(inner: &Arc<Inner>) -> Result<(), String> {
    let stored = inner.store.load_jobs().map_err(|e| e.to_string())?;
    let mut jobs = inner.jobs.lock().expect("jobs lock");
    for job in stored {
        let campaign = Arc::new(
            Campaign::from_spec(&job.spec)
                .map_err(|e| format!("job {}: {e}", job.fingerprint))?
                .threads(1)
                .artifact_cache(Arc::clone(&inner.artifact_cache)),
        );
        let total = campaign.cell_count();
        let mut done = BTreeMap::new();
        let mut counts = (0, 0, 0, 0);
        for record in job.cells {
            if record.index < total {
                if let std::collections::btree_map::Entry::Vacant(slot) = done.entry(record.index) {
                    tally(&mut counts, &record);
                    let line = record.to_json();
                    slot.insert(DoneCell { record, line });
                }
            }
        }
        if job.torn_lines > 0 {
            inner.log(format!(
                "job {}: skipped {} torn log line(s); their cells will re-run",
                job.fingerprint, job.torn_lines
            ));
        }
        let mut entry = Job {
            spec: job.spec,
            campaign,
            state: job.state,
            done,
            counts,
            report_fingerprint: None,
            error: None,
        };
        if entry.state == JobState::Done {
            entry.report_fingerprint = Some(fingerprint_of(&entry));
        }
        if !entry.state.is_terminal() {
            let pending = pending_indices(&entry);
            if pending.is_empty() {
                finalize(inner, &job.fingerprint, &mut entry);
                inner.log(format!(
                    "recovered job {}: {} cells done, already complete — finalized",
                    job.fingerprint,
                    entry.done.len()
                ));
            } else {
                entry.state = JobState::Queued;
                let batches = enqueue_pending(inner, &job.fingerprint, &pending);
                inner.log(format!(
                    "recovered job {}: {} cells done, requeued {} cell(s) in {} batch(es)",
                    job.fingerprint,
                    entry.done.len(),
                    pending.len(),
                    batches
                ));
            }
        }
        jobs.insert(job.fingerprint, entry);
    }
    Ok(())
}

/// The cells of the full grid not yet in the done map, in index order.
fn pending_indices(job: &Job) -> Vec<usize> {
    job.campaign
        .cell_indices()
        .into_iter()
        .filter(|i| !job.done.contains_key(i))
        .collect()
}

/// Queue the pending cells as shard batches; returns the batch count.
/// Callers must hold no queue lock and should notify after mutating jobs.
fn enqueue_pending(inner: &Inner, fingerprint: &str, pending: &[usize]) -> usize {
    let of = pending
        .len()
        .div_ceil(inner.batch_size)
        .clamp(1, inner.max_batches);
    let batches = shard_batches(pending, of);
    let count = batches.len();
    let mut queue = inner.queue.lock().expect("queue lock");
    for indices in batches {
        queue.push_back(Batch {
            fingerprint: fingerprint.to_string(),
            indices,
        });
    }
    drop(queue);
    inner.queue_cv.notify_all();
    count
}

/// The job's current records as a merged [`ReportRecord`].
fn record_of(job: &Job) -> ReportRecord {
    ReportRecord {
        cells: job.done.values().map(|d| d.record.clone()).collect(),
    }
}

/// The report fingerprint of a job's done cells, streamed over the cached
/// encoded lines — byte-for-byte the same FNV-1a input as
/// [`ReportRecord::fingerprint`] (one `to_json` line per cell, in index
/// order), without re-serializing any record.
fn fingerprint_of(job: &Job) -> String {
    harness::json::fnv1a_hex(
        job.done
            .values()
            .flat_map(|d| d.line.bytes().chain(std::iter::once(b'\n'))),
    )
}

/// Complete a job: persist the summary, flip the state to done, cache the
/// report fingerprint.  Caller holds the jobs lock.
fn finalize(inner: &Inner, fingerprint: &str, job: &mut Job) {
    if let Err(e) = inner
        .store
        .put_summary(fingerprint, &record_of(job).summary_jsonl())
        .and_then(|()| inner.store.set_state(fingerprint, JobState::Done))
    {
        fail_job(inner, fingerprint, job, e.to_string());
        return;
    }
    job.report_fingerprint = Some(fingerprint_of(job));
    job.state = JobState::Done;
    inner.jobs_cv.notify_all();
    inner.log(format!(
        "job {fingerprint} done: {} cells, report fingerprint {}",
        job.done.len(),
        job.report_fingerprint.as_deref().unwrap_or(""),
    ));
}

/// Mark a job failed (a store error — execution itself cannot fail the
/// job; cell-level failures are recorded outcomes).  Caller holds the lock.
fn fail_job(inner: &Inner, fingerprint: &str, job: &mut Job, error: String) {
    inner.log(format!("job {fingerprint} failed: {error}"));
    job.state = JobState::Failed;
    job.error = Some(error);
    inner.jobs_cv.notify_all();
    // Best-effort: if the store is broken this may fail too; the in-memory
    // state still reports the failure.
    let _ = inner.store.set_state(fingerprint, JobState::Failed);
}

/// Worker thread: drain batches forever.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let batch = {
            let mut queue = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(batch) = queue.pop_front() {
                    break batch;
                }
                queue = inner.queue_cv.wait(queue).expect("queue wait");
            }
        };
        process_batch(inner, batch);
    }
}

/// Execute one batch: re-check the job, run the still-missing cells through
/// the engine, persist, account.
fn process_batch(inner: &Arc<Inner>, batch: Batch) {
    let (campaign, todo) = {
        let mut jobs = inner.jobs.lock().expect("jobs lock");
        let Some(job) = jobs.get_mut(&batch.fingerprint) else {
            return;
        };
        // Cancelled (or failed) between enqueue and pickup: drop the batch.
        if job.state.is_terminal() {
            return;
        }
        let todo: Vec<usize> = batch
            .indices
            .iter()
            .copied()
            .filter(|i| !job.done.contains_key(i))
            .collect();
        if todo.is_empty() {
            if pending_indices(job).is_empty() {
                finalize(inner, &batch.fingerprint, job);
            }
            return;
        }
        if job.state != JobState::Running {
            job.state = JobState::Running;
            if let Err(e) = inner.store.set_state(&batch.fingerprint, JobState::Running) {
                fail_job(inner, &batch.fingerprint, job, e.to_string());
                return;
            }
        }
        (Arc::clone(&job.campaign), todo)
    };

    // The actual work happens outside every lock — including the record
    // encode, which is done exactly once per cell and reused for both the
    // durable append and the finished-report fingerprint.
    let report = campaign.run_cells(&todo);
    let cells: Vec<DoneCell> = report
        .cells
        .iter()
        .map(|cell| {
            let record = CellRecord::of(cell);
            let line = record.to_json();
            DoneCell { record, line }
        })
        .collect();
    let lines: Vec<String> = cells.iter().map(|d| d.line.clone()).collect();
    inner.executed.fetch_add(cells.len(), Ordering::SeqCst);

    // Durability before visibility: the fsync'd append happens before the
    // cells are marked done in memory.
    let append = inner.store.append_cells(&batch.fingerprint, &lines);
    let mut jobs = inner.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.get_mut(&batch.fingerprint) else {
        return;
    };
    if let Err(e) = append {
        fail_job(inner, &batch.fingerprint, job, e.to_string());
        return;
    }
    for cell in cells {
        if let std::collections::btree_map::Entry::Vacant(slot) = job.done.entry(cell.record.index)
        {
            tally(&mut job.counts, &cell.record);
            slot.insert(cell);
        }
    }
    if !job.state.is_terminal() && pending_indices(job).is_empty() {
        finalize(inner, &batch.fingerprint, job);
    }
}

/// The status document of one job.  Caller holds the jobs lock.  Built
/// from the running tallies — no scan of the cell map, so status polls
/// stay O(1) however large the job is.
fn status_of(fingerprint: &str, job: &Job) -> JobStatus {
    let (executed, skipped, failed, disagreements) = job.counts;
    JobStatus {
        fingerprint: fingerprint.to_string(),
        state: job.state,
        cells_total: job.campaign.cell_count(),
        cells_done: job.done.len(),
        executed,
        skipped,
        failed,
        disagreements,
        report_fingerprint: job.report_fingerprint.clone(),
        error: job.error.clone(),
    }
}

fn serve_connection(inner: &Arc<Inner>, mut stream: std::net::TcpStream) {
    let response = match http::read_request(&mut stream) {
        Ok(request) => route(inner, &request),
        Err(e) => Response::json(400, ApiError { error: e }.to_json()),
    };
    let _ = http::write_response(&mut stream, &response);
}

fn error_response(status: u16, error: impl Into<String>) -> Response {
    Response::json(
        status,
        ApiError {
            error: error.into(),
        }
        .to_json(),
    )
}

fn not_found(fingerprint: &str) -> Response {
    error_response(404, format!("no job with fingerprint `{fingerprint}`"))
}

/// Dispatch one request.
fn route(inner: &Arc<Inner>, request: &Request) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, "{\"kind\":\"health\",\"ok\":true}"),
        ("POST", ["jobs"]) => submit(inner, &request.body),
        ("GET", ["jobs"]) => {
            let jobs = inner.jobs.lock().expect("jobs lock");
            let list = JobList {
                jobs: jobs.iter().map(|(fp, job)| status_of(fp, job)).collect(),
            };
            Response::json(200, list.to_json())
        }
        ("GET", ["jobs", fp]) => {
            // `?wait_ms=N` long-polls: the response is held back (up to a
            // 30s cap) until the job reaches a terminal state, so watchers
            // burn one blocked connection instead of a busy-poll loop.
            let wait_ms: u64 = request
                .query_param("wait_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
                .min(30_000);
            let mut jobs = inner.jobs.lock().expect("jobs lock");
            let deadline = std::time::Instant::now() + Duration::from_millis(wait_ms);
            while wait_ms > 0 && matches!(jobs.get(*fp), Some(job) if !job.state.is_terminal()) {
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                jobs = inner.jobs_cv.wait_timeout(jobs, left).expect("jobs wait").0;
            }
            match jobs.get(*fp) {
                Some(job) => Response::json(200, status_of(fp, job).to_json()),
                None => not_found(fp),
            }
        }
        ("GET", ["jobs", fp, "summary"]) => {
            let jobs = inner.jobs.lock().expect("jobs lock");
            match jobs.get(*fp) {
                Some(job) => Response::text(200, record_of(job).summary_jsonl()),
                None => not_found(fp),
            }
        }
        ("GET", ["jobs", fp, "trajectory"]) => {
            let jobs = inner.jobs.lock().expect("jobs lock");
            match jobs.get(*fp) {
                Some(job) => {
                    let mut text = harness::report::trajectory_header(&job.spec);
                    text.push('\n');
                    text.push_str(&record_of(job).cell_lines());
                    Response::text(200, text)
                }
                None => not_found(fp),
            }
        }
        ("DELETE", ["jobs", fp]) => cancel(inner, fp),
        ("GET", ["query"]) => query(inner, request),
        _ => error_response(
            404,
            format!("no route for {} {}", request.method, request.path),
        ),
    }
}

/// `POST /jobs`: body is the raw spec JSON.  Idempotent on the fingerprint:
/// resubmitting a live or done job returns its current status; resubmitting
/// a cancelled (or failed) job resumes its pending cells.
fn submit(inner: &Arc<Inner>, body: &[u8]) -> Response {
    let Ok(text) = core::str::from_utf8(body) else {
        return error_response(400, "spec body is not UTF-8");
    };
    let spec = match CampaignSpec::from_json(text) {
        Ok(spec) => spec,
        Err(e) => return error_response(400, format!("invalid spec: {e}")),
    };
    let fingerprint = spec.fingerprint();

    let mut jobs = inner.jobs.lock().expect("jobs lock");
    if let Some(job) = jobs.get_mut(&fingerprint) {
        if matches!(job.state, JobState::Cancelled | JobState::Failed) {
            let pending = pending_indices(job);
            if pending.is_empty() {
                finalize(inner, &fingerprint, job);
            } else {
                job.state = JobState::Queued;
                job.error = None;
                if let Err(e) = inner.store.set_state(&fingerprint, JobState::Queued) {
                    fail_job(inner, &fingerprint, job, e.to_string());
                    return Response::json(200, status_of(&fingerprint, job).to_json());
                }
                let batches = enqueue_pending(inner, &fingerprint, &pending);
                inner.log(format!(
                    "job {fingerprint} resumed: requeued {} cell(s) in {batches} batch(es)",
                    pending.len()
                ));
            }
        }
        return Response::json(200, status_of(&fingerprint, job).to_json());
    }

    let campaign = match Campaign::from_spec(&spec) {
        Ok(campaign) => Arc::new(
            campaign
                .threads(1)
                .artifact_cache(Arc::clone(&inner.artifact_cache)),
        ),
        Err(e) => return error_response(400, format!("invalid spec: {e}")),
    };
    if let Err(e) = inner
        .store
        .put_spec(&fingerprint, &spec.to_json())
        .and_then(|()| inner.store.set_state(&fingerprint, JobState::Queued))
    {
        return error_response(500, e.to_string());
    }
    let job = Job {
        spec,
        campaign,
        state: JobState::Queued,
        done: BTreeMap::new(),
        counts: (0, 0, 0, 0),
        report_fingerprint: None,
        error: None,
    };
    let pending = pending_indices(&job);
    let batches = enqueue_pending(inner, &fingerprint, &pending);
    inner.log(format!(
        "job {fingerprint} submitted: {} cells in {batches} batch(es)",
        pending.len()
    ));
    let response = Response::json(201, status_of(&fingerprint, &job).to_json());
    jobs.insert(fingerprint, job);
    response
}

/// `DELETE /jobs/{fp}`: cancel.  Already-stored cells stay durable; queued
/// batches are purged; a later resubmission resumes from what is stored.
fn cancel(inner: &Arc<Inner>, fingerprint: &str) -> Response {
    let mut jobs = inner.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.get_mut(fingerprint) else {
        return not_found(fingerprint);
    };
    if !job.state.is_terminal() {
        job.state = JobState::Cancelled;
        if let Err(e) = inner.store.set_state(fingerprint, JobState::Cancelled) {
            fail_job(inner, fingerprint, job, e.to_string());
            return Response::json(200, status_of(fingerprint, job).to_json());
        }
        let mut queue = inner.queue.lock().expect("queue lock");
        queue.retain(|batch| batch.fingerprint != fingerprint);
        drop(queue);
        inner.jobs_cv.notify_all();
        inner.log(format!("job {fingerprint} cancelled"));
    }
    Response::json(200, status_of(fingerprint, job).to_json())
}

/// Pick one statistic off a facet summary.
fn stat_value(summary: &StatSummary, stat: &str) -> Option<f64> {
    Some(match stat {
        "count" => summary.count as f64,
        "mean" => summary.mean,
        "stddev" => summary.stddev,
        "min" => summary.min,
        "max" => summary.max,
        "p10" => summary.p10,
        "p50" => summary.p50,
        "p90" => summary.p90,
        "p99" => summary.p99,
        _ => return None,
    })
}

/// `GET /query`: compare one facet statistic across jobs and grid cells.
fn query(inner: &Arc<Inner>, request: &Request) -> Response {
    let Some(facet) = request.query_param("facet") else {
        return error_response(400, "query needs a `facet` parameter");
    };
    let stat = request.query_param("stat").unwrap_or("mean");
    if stat_value(&StatSummary::of(&[0.0]).expect("non-empty"), stat).is_none() {
        return error_response(400, format!("unknown stat `{stat}`"));
    }
    let wanted_jobs: Vec<String> = request
        .query_param("jobs")
        .map(|list| list.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let matches = |filter: Option<&str>, value: &str| filter.is_none() || filter == Some(value);

    let jobs = inner.jobs.lock().expect("jobs lock");
    let mut rows = Vec::new();
    for (fingerprint, job) in jobs.iter() {
        if !wanted_jobs.is_empty() && !wanted_jobs.iter().any(|fp| fp == fingerprint) {
            continue;
        }
        for group in record_of(job).summaries() {
            if !matches(request.query_param("graph"), &group.graph)
                || !matches(request.query_param("adversary"), &group.adversary)
                || !matches(request.query_param("compiler"), &group.compiler)
            {
                continue;
            }
            let Some(summary) = group.stat(facet) else {
                continue;
            };
            rows.push(QueryRow {
                job: fingerprint.clone(),
                graph: group.graph.clone(),
                adversary: group.adversary.clone(),
                compiler: group.compiler.clone(),
                value: stat_value(summary, stat).expect("stat validated above"),
            });
        }
    }
    let response = QueryResponse {
        facet: facet.to_string(),
        stat: stat.to_string(),
        rows,
    };
    Response::json(200, response.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_batches_partition_like_campaign_shard() {
        // The full grid, batched: exactly the `index % of` partition.
        let pending: Vec<usize> = (0..10).collect();
        let batches = shard_batches(&pending, 3);
        assert_eq!(batches[0], vec![0, 3, 6, 9]);
        assert_eq!(batches[1], vec![1, 4, 7]);
        assert_eq!(batches[2], vec![2, 5, 8]);
        // A sparse pending set (resume): empty batches drop out, the
        // partition rule is unchanged.
        let sparse = [1usize, 5, 9];
        let batches = shard_batches(&sparse, 4);
        assert_eq!(batches, vec![vec![1, 5, 9]]);
        // Degenerate: of=0 is clamped.
        assert_eq!(shard_batches(&[0], 0), vec![vec![0]]);
    }

    #[test]
    fn stat_selector_covers_the_summary_surface() {
        let s = StatSummary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(stat_value(&s, "count"), Some(3.0));
        assert_eq!(stat_value(&s, "mean"), Some(2.0));
        assert_eq!(stat_value(&s, "min"), Some(1.0));
        assert_eq!(stat_value(&s, "max"), Some(3.0));
        assert_eq!(stat_value(&s, "p50"), Some(2.0));
        assert_eq!(stat_value(&s, "median"), None);
    }
}
